#include "clear/streaming.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/obs.hpp"
#include "tensor/ops.hpp"

namespace clear::core {

namespace {

void check_rate(const char* channel, double hz) {
  CLEAR_CHECK_MSG(std::isfinite(hz) && hz > 0.0,
                  "StreamingConfig." << channel << "_hz must be a positive "
                                     << "finite sample rate (got " << hz
                                     << ")");
}

void check_limits(const char* channel, const ChannelLimits& limits) {
  CLEAR_CHECK_MSG(!(limits.lo > limits.hi),
                  "StreamingConfig." << channel << "_limits inverted: lo ("
                                     << limits.lo << ") > hi (" << limits.hi
                                     << ")");
}

}  // namespace

void StreamingConfig::validate() const {
  CLEAR_CHECK_MSG(std::isfinite(window_seconds) && window_seconds > 0.0,
                  "StreamingConfig.window_seconds must be positive and finite "
                  "(got " << window_seconds << ")");
  CLEAR_CHECK_MSG(map_windows != 0,
                  "StreamingConfig.map_windows must be at least 1");
  check_rate("bvp", bvp_hz);
  check_rate("gsr", gsr_hz);
  check_rate("skt", skt_hz);
  check_limits("bvp", bvp_limits);
  check_limits("gsr", gsr_limits);
  check_limits("skt", skt_limits);
  CLEAR_CHECK_MSG(degraded_threshold >= 0.0 && degraded_threshold <= 1.0,
                  "StreamingConfig.degraded_threshold must lie in [0, 1] "
                  "(got " << degraded_threshold << ")");
}

StreamingDetector::StreamingDetector(nn::Sequential& model,
                                     features::FeatureNormalizer normalizer,
                                     const StreamingConfig& config)
    : model_(model), normalizer_(std::move(normalizer)), config_(config) {
  config.validate();
  CLEAR_CHECK_MSG(config.map_windows >= 4,
                  "need at least 4 windows per map (two 2x2 poolings)");
  CLEAR_CHECK_MSG(normalizer_.fitted(), "normalizer must be fitted");
  bvp_per_window_ =
      static_cast<std::size_t>(config.window_seconds * config.bvp_hz);
  gsr_per_window_ =
      static_cast<std::size_t>(config.window_seconds * config.gsr_hz);
  skt_per_window_ =
      static_cast<std::size_t>(config.window_seconds * config.skt_hz);
  CLEAR_CHECK_MSG(bvp_per_window_ >= 64 && gsr_per_window_ >= 8 &&
                      skt_per_window_ >= 2,
                  "window too short for the configured sample rates");
}

void StreamingDetector::push_channel(Channel& ch, ChannelQuality& health,
                                     const ChannelLimits& limits,
                                     std::span<const double> samples) {
  for (const double v : samples) {
    if (!std::isfinite(v)) {
      if (config_.gap_fill == fault::GapFill::kLinearInterp) {
        // Withhold the gap; it is rendered when the next good sample lands.
        ++ch.pending_gap;
        continue;
      }
      // Hold-last: repair immediately with the last good sample (0 before
      // the first good one), clamped into the channel limits.
      const double fill = std::clamp(ch.has_good ? ch.last_good : 0.0,
                                     limits.lo, limits.hi);
      ch.samples.push_back(fill);
      ch.flags.push_back(1);
      ++health.total;
      ++health.filled;
      continue;
    }
    double x = v;
    std::uint8_t flag = 0;
    if (x < limits.lo) {
      x = limits.lo;
      flag = 2;
    } else if (x > limits.hi) {
      x = limits.hi;
      flag = 2;
    }
    if (ch.pending_gap > 0) {
      // Linear interpolation between the surrounding good samples; a
      // leading gap (no previous good sample) back-fills with this one.
      const double a = ch.has_good ? ch.last_good : x;
      const double span = static_cast<double>(ch.pending_gap + 1);
      for (std::size_t k = 1; k <= ch.pending_gap; ++k) {
        ch.samples.push_back(a + (x - a) * static_cast<double>(k) / span);
        ch.flags.push_back(1);
        ++health.total;
        ++health.filled;
      }
      ch.pending_gap = 0;
    }
    ch.samples.push_back(x);
    ch.flags.push_back(flag);
    ++health.total;
    if (flag == 2) ++health.clamped;
    ch.last_good = x;
    ch.has_good = true;
  }
}

void StreamingDetector::push_bvp(std::span<const double> samples) {
  push_channel(bvp_, health_.bvp, config_.bvp_limits, samples);
}
void StreamingDetector::push_gsr(std::span<const double> samples) {
  push_channel(gsr_, health_.gsr, config_.gsr_limits, samples);
}
void StreamingDetector::push_skt(std::span<const double> samples) {
  push_channel(skt_, health_.skt, config_.skt_limits, samples);
}

bool StreamingDetector::window_ready() const {
  return bvp_.samples.size() >= bvp_per_window_ &&
         gsr_.samples.size() >= gsr_per_window_ &&
         skt_.samples.size() >= skt_per_window_;
}

ChannelQuality StreamingDetector::take_window(Channel& ch, std::size_t n,
                                              std::vector<double>& out) {
  out.assign(ch.samples.begin(),
             ch.samples.begin() + static_cast<std::ptrdiff_t>(n));
  ChannelQuality q;
  q.total = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (ch.flags[i] == 1) ++q.filled;
    else if (ch.flags[i] == 2) ++q.clamped;
  }
  ch.samples.erase(ch.samples.begin(),
                   ch.samples.begin() + static_cast<std::ptrdiff_t>(n));
  ch.flags.erase(ch.flags.begin(),
                 ch.flags.begin() + static_cast<std::ptrdiff_t>(n));
  return q;
}

void StreamingDetector::extract_one_window() {
  features::PhysioWindow window;
  window.bvp_rate = config_.bvp_hz;
  window.gsr_rate = config_.gsr_hz;
  window.skt_rate = config_.skt_hz;
  SignalQuality quality;
  quality.bvp = take_window(bvp_, bvp_per_window_, window.bvp);
  quality.gsr = take_window(gsr_, gsr_per_window_, window.gsr);
  quality.skt = take_window(skt_, skt_per_window_, window.skt);

  CLEAR_OBS_COUNT("streaming.windows", 1);
  CLEAR_OBS_COUNT("streaming.repaired_samples", quality.repaired());
  std::vector<double> column = features::extract_window_features(window);
  normalizer_.apply(column);
  columns_.push_back(std::move(column));
  column_quality_.push_back(quality);
  while (columns_.size() > config_.map_windows) {
    columns_.pop_front();
    column_quality_.pop_front();
  }
  ++windows_seen_;
  pending_detection_ = true;
}

std::optional<Detection> StreamingDetector::poll() {
  while (window_ready()) extract_one_window();
  if (!pending_detection_ || !warmed_up()) return std::nullopt;
  pending_detection_ = false;

  // Assemble the rolling map [F, W] (oldest column first).
  const std::size_t f = columns_.front().size();
  const std::size_t w = config_.map_windows;
  Tensor batch({1, 1, f, w});
  for (std::size_t c = 0; c < w; ++c)
    for (std::size_t r = 0; r < f; ++r)
      batch.at4(0, 0, r, c) = static_cast<float>(columns_[c][r]);

  model_.set_training(false);
  std::optional<Tensor> logits;
  {
    CLEAR_OBS_SPAN("streaming.detect");
    logits = model_.forward(batch);
  }
  const Tensor proba = ops::softmax_rows(logits->reshaped(
      {1, logits->numel()}));
  Detection d;
  d.fear_probability = proba.at2(0, 1);
  d.window_index = windows_seen_ - 1;
  for (const SignalQuality& q : column_quality_) d.quality.merge(q);
  d.degraded = d.quality.ok_fraction() < 1.0 - config_.degraded_threshold;
  CLEAR_OBS_COUNT("streaming.detections", 1);
  if (d.degraded) CLEAR_OBS_COUNT("streaming.degraded_detections", 1);
  return d;
}

}  // namespace clear::core
