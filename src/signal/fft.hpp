// Spectral analysis: iterative radix-2 FFT, periodogram, and Welch power
// spectral density. These feed the frequency-domain members of the
// 123-feature extractor (GSR band energies, BVP/HRV band powers, spectral
// shape descriptors).
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace clear::dsp {

/// In-place iterative radix-2 Cooley-Tukey FFT. data.size() must be a power
/// of two. inverse=true applies the conjugate transform and 1/N scaling.
void fft(std::vector<std::complex<double>>& data, bool inverse = false);

/// Next power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// Magnitude spectrum of a real signal, zero-padded to the next power of two.
/// Returns nfft/2 + 1 bins (DC .. Nyquist).
std::vector<double> magnitude_spectrum(std::span<const double> signal);

/// One-sided periodogram PSD with a Hann window.
/// Returns {psd, freqs} where freqs are in Hz given sample_rate.
struct Psd {
  std::vector<double> power;  ///< PSD estimate per bin.
  std::vector<double> freq;   ///< Bin centre frequencies [Hz].
};
Psd periodogram(std::span<const double> signal, double sample_rate);

/// Welch PSD: averaged Hann-windowed segments with 50 % overlap.
/// segment_len is rounded up to a power of two; the signal is zero-padded if
/// shorter than one segment.
Psd welch(std::span<const double> signal, double sample_rate,
          std::size_t segment_len);

/// Integrate PSD power between [f_lo, f_hi) using trapezoidal summation.
double band_power(const Psd& psd, double f_lo, double f_hi);

/// Power-weighted mean frequency.
double spectral_centroid(const Psd& psd);
/// Power-weighted standard deviation around the centroid.
double spectral_spread(const Psd& psd);
/// Shannon entropy (nats) of the normalized PSD.
double spectral_entropy(const Psd& psd);
/// Frequency below which `fraction` of the total power lies.
double spectral_rolloff(const Psd& psd, double fraction);
/// Frequency of the highest-power bin within [f_lo, f_hi); 0 if band empty.
double peak_frequency(const Psd& psd, double f_lo, double f_hi);
/// n-th power-weighted spectral moment E[f^n].
double spectral_moment(const Psd& psd, int n);

}  // namespace clear::dsp
