#include "wemac/archetype.hpp"

namespace clear::wemac {

const std::array<ArchetypeParams, kNumArchetypes>& default_archetypes() {
  static const std::array<ArchetypeParams, kNumArchetypes> archetypes = [] {
    std::array<ArchetypeParams, kNumArchetypes> a{};

    // Archetype 0: electrodermally reactive. Fear shows up mainly as dense,
    // large SCR bursts; cardiac response moderate.
    a[0].name = "electrodermal-reactive";
    a[0].hr_base = 71.0;
    a[0].hr_fear_delta = 8.0;
    a[0].hr_arousal_delta = 5.0;
    a[0].hrv_sd = 0.045;
    a[0].hrv_fear_scale = 0.80;
    a[0].resp_rate = 0.26;
    a[0].bvp_amp = 1.00;
    a[0].bvp_amp_fear_scale = 0.88;
    a[0].scr_rate_base = 3.5;
    a[0].scr_rate_fear = 10.0;
    a[0].scr_amp = 0.40;
    a[0].scr_amp_fear_scale = 1.9;
    a[0].gsr_tonic = 6.5;
    a[0].gsr_fear_slope = 0.030;
    a[0].skt_base = 33.6;
    a[0].skt_fear_drop = 0.35;

    // Archetype 1: cardiac / sympathetic responder. Strong tachycardia and
    // HRV suppression under fear; electrodermal channel comparatively quiet.
    a[1].name = "cardiac-reactive";
    a[1].hr_base = 78.0;
    a[1].hr_fear_delta = 14.0;
    a[1].hr_arousal_delta = 8.0;
    a[1].hrv_sd = 0.050;
    a[1].hrv_fear_scale = 0.55;
    a[1].resp_rate = 0.30;
    a[1].bvp_amp = 0.90;
    a[1].bvp_amp_fear_scale = 0.72;
    a[1].scr_rate_base = 3.0;
    a[1].scr_rate_fear = 6.0;
    a[1].scr_amp = 0.28;
    a[1].scr_amp_fear_scale = 1.25;
    a[1].gsr_tonic = 8.0;
    a[1].gsr_fear_slope = 0.012;
    a[1].skt_base = 33.2;
    a[1].skt_fear_drop = 0.55;

    // Archetype 2: blunted responder. Every channel moves, but weakly; the
    // noise floor is relatively higher, making these users the hard cases.
    a[2].name = "blunted";
    a[2].hr_base = 67.0;
    a[2].hr_fear_delta = 5.0;
    a[2].hr_arousal_delta = 3.0;
    a[2].hrv_sd = 0.035;
    a[2].hrv_fear_scale = 0.90;
    a[2].resp_rate = 0.22;
    a[2].bvp_amp = 0.80;
    a[2].bvp_amp_fear_scale = 0.95;
    a[2].scr_rate_base = 2.0;
    a[2].scr_rate_fear = 5.0;
    a[2].scr_amp = 0.18;
    a[2].scr_amp_fear_scale = 1.30;
    a[2].gsr_tonic = 4.0;
    a[2].gsr_fear_slope = 0.008;
    a[2].skt_base = 34.0;
    a[2].skt_fear_drop = 0.15;
    a[2].bvp_noise = 0.09;
    a[2].gsr_noise = 0.045;

    // Archetype 3: vagal / freeze responder. Fear produces heart-rate
    // *deceleration* with preserved-to-enhanced HF variability, together
    // with a pronounced skin-temperature drop — the qualitative opposite of
    // archetype 1, which is what breaks population-wide models.
    a[3].name = "vagal-freeze";
    a[3].hr_base = 74.0;
    a[3].hr_fear_delta = -4.5;
    a[3].hr_arousal_delta = 4.0;
    a[3].hrv_sd = 0.060;
    a[3].hrv_fear_scale = 1.20;
    a[3].resp_rate = 0.18;
    a[3].bvp_amp = 1.10;
    a[3].bvp_amp_fear_scale = 0.90;
    a[3].scr_rate_base = 3.0;
    a[3].scr_rate_fear = 8.0;
    a[3].scr_amp = 0.32;
    a[3].scr_amp_fear_scale = 1.5;
    a[3].gsr_tonic = 7.0;
    a[3].gsr_fear_slope = 0.020;
    a[3].skt_base = 33.0;
    a[3].skt_fear_drop = 0.60;

    return a;
  }();
  return archetypes;
}

const std::array<double, kNumArchetypes>& default_archetype_weights() {
  // 17/13/7/7 of 44 ≈ 0.386/0.295/0.159/0.159.
  static const std::array<double, kNumArchetypes> weights = {0.386, 0.295,
                                                             0.159, 0.159};
  return weights;
}

}  // namespace clear::wemac
