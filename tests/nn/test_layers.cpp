#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gradcheck.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"

namespace clear::nn {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed,
                     float lo = -1.0f, float hi = 1.0f) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_uniform(rng, lo, hi);
  return t;
}

// ---- Dense -----------------------------------------------------------------

TEST(Dense, ForwardMatchesManualMatmul) {
  Rng rng(1);
  Dense layer(3, 2, rng);
  const Tensor x = random_tensor({4, 3}, 2);
  const Tensor y = layer.forward(x);
  EXPECT_EQ(y.extent(0), 4u);
  EXPECT_EQ(y.extent(1), 2u);
}

TEST(Dense, GradCheck) {
  Rng rng(3);
  Dense layer(4, 3, rng);
  testing::check_layer_gradients(layer, random_tensor({3, 4}, 4), 5);
}

TEST(Dense, RejectsWrongInputWidth) {
  Rng rng(5);
  Dense layer(3, 2, rng);
  EXPECT_THROW(layer.forward(Tensor({2, 4})), Error);
}

TEST(Dense, BackwardBeforeForwardThrows) {
  Rng rng(6);
  Dense layer(3, 2, rng);
  EXPECT_THROW(layer.backward(Tensor({1, 2})), Error);
}

TEST(Dense, ParametersExposeWeightAndBias) {
  Rng rng(7);
  Dense layer(3, 2, rng);
  const auto params = layer.parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0]->value.numel(), 6u);
  EXPECT_EQ(params[1]->value.numel(), 2u);
}

// ---- ReLU ------------------------------------------------------------------

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  const Tensor x({4}, {-1.0f, 0.0f, 0.5f, 2.0f});
  const Tensor y = relu.forward(x);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 0.5f);
  EXPECT_EQ(y[3], 2.0f);
}

TEST(ReLU, BackwardMasksGradient) {
  ReLU relu;
  const Tensor x({3}, {-1.0f, 1.0f, 2.0f});
  (void)relu.forward(x);
  const Tensor g = relu.backward(Tensor({3}, {5.0f, 5.0f, 5.0f}));
  EXPECT_EQ(g[0], 0.0f);
  EXPECT_EQ(g[1], 5.0f);
  EXPECT_EQ(g[2], 5.0f);
}

TEST(ReLU, GradCheckAwayFromKink) {
  ReLU relu;
  Tensor x = random_tensor({2, 5}, 8);
  // Push values away from zero so finite differences are clean.
  for (float& v : x.flat()) v += (v >= 0 ? 0.5f : -0.5f);
  testing::check_layer_gradients(relu, x, 9);
}

// ---- Dropout ---------------------------------------------------------------

TEST(Dropout, IdentityInEvalMode) {
  Rng rng(10);
  Dropout drop(0.5, rng);
  drop.set_training(false);
  const Tensor x = random_tensor({4, 4}, 11);
  const Tensor y = drop.forward(x);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Dropout, TrainingZerosRoughlyRateFraction) {
  Rng rng(12);
  Dropout drop(0.3, rng);
  drop.set_training(true);
  const Tensor x = Tensor::ones({10000});
  const Tensor y = drop.forward(x);
  std::size_t zeros = 0;
  for (const float v : y.flat())
    if (v == 0.0f) ++zeros;
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.03);
}

TEST(Dropout, SurvivorsScaledToPreserveExpectation) {
  Rng rng(13);
  Dropout drop(0.25, rng);
  drop.set_training(true);
  const Tensor x = Tensor::ones({10000});
  const Tensor y = drop.forward(x);
  double sum = 0.0;
  for (const float v : y.flat()) sum += v;
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.05);
}

TEST(Dropout, BackwardUsesSameMask) {
  Rng rng(14);
  Dropout drop(0.5, rng);
  drop.set_training(true);
  const Tensor x = Tensor::ones({100});
  const Tensor y = drop.forward(x);
  const Tensor g = drop.backward(Tensor::ones({100}));
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(g[i], y[i]);
}

TEST(Dropout, RejectsBadRate) {
  Rng rng(15);
  EXPECT_THROW(Dropout(1.0, rng), Error);
  EXPECT_THROW(Dropout(-0.1, rng), Error);
}

// ---- Flatten / ToSequence -----------------------------------------------------

TEST(Flatten, ShapeRoundTrip) {
  Flatten flat;
  const Tensor x = random_tensor({2, 3, 4}, 16);
  const Tensor y = flat.forward(x);
  EXPECT_EQ(y.extent(0), 2u);
  EXPECT_EQ(y.extent(1), 12u);
  const Tensor g = flat.backward(y);
  EXPECT_TRUE(g.same_shape(x));
}

TEST(ToSequence, LayoutIsTimeMajor) {
  ToSequence seq;
  Tensor x({1, 2, 3, 4});  // [N=1, C=2, H=3, W=4]
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(i);
  const Tensor y = seq.forward(x);
  EXPECT_EQ(y.extent(0), 1u);
  EXPECT_EQ(y.extent(1), 4u);  // T = W.
  EXPECT_EQ(y.extent(2), 6u);  // D = C*H.
  // y[0, t, c*H + h] == x[0, c, h, t].
  for (std::size_t t = 0; t < 4; ++t)
    for (std::size_t c = 0; c < 2; ++c)
      for (std::size_t h = 0; h < 3; ++h)
        EXPECT_EQ(y.at3(0, t, c * 3 + h), x.at4(0, c, h, t));
}

TEST(ToSequence, BackwardInvertsForward) {
  ToSequence seq;
  const Tensor x = random_tensor({2, 3, 5, 4}, 17);
  const Tensor y = seq.forward(x);
  const Tensor back = seq.backward(y);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(back[i], x[i]);
}

// ---- Conv2d ----------------------------------------------------------------

TEST(Conv2d, OutputShapeWithPadding) {
  Rng rng(18);
  Conv2d conv(2, 4, 3, 3, 1, 1, rng);
  const Tensor x = random_tensor({3, 2, 8, 6}, 19);
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.extent(0), 3u);
  EXPECT_EQ(y.extent(1), 4u);
  EXPECT_EQ(y.extent(2), 8u);
  EXPECT_EQ(y.extent(3), 6u);
}

TEST(Conv2d, IdentityKernelReproducesInput) {
  Rng rng(20);
  Conv2d conv(1, 1, 1, 1, 1, 0, rng);
  // Set the 1x1 kernel weight to 1, bias to 0.
  conv.parameters()[0]->value[0] = 1.0f;
  conv.parameters()[1]->value[0] = 0.0f;
  const Tensor x = random_tensor({2, 1, 4, 4}, 21);
  const Tensor y = conv.forward(x);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, BiasShiftsAllOutputs) {
  Rng rng(22);
  Conv2d conv(1, 1, 3, 3, 1, 1, rng);
  const Tensor x = Tensor::zeros({1, 1, 4, 4});
  conv.parameters()[1]->value[0] = 2.5f;
  const Tensor y = conv.forward(x);
  for (const float v : y.flat()) EXPECT_FLOAT_EQ(v, 2.5f);
}

TEST(Conv2d, GradCheck) {
  Rng rng(23);
  Conv2d conv(2, 3, 3, 3, 1, 1, rng);
  testing::check_layer_gradients(conv, random_tensor({2, 2, 5, 4}, 24), 25);
}

TEST(Conv2d, GradCheckStride2NoPad) {
  Rng rng(26);
  Conv2d conv(1, 2, 3, 3, 2, 0, rng);
  testing::check_layer_gradients(conv, random_tensor({1, 1, 7, 7}, 27), 28);
}

TEST(Conv2d, RejectsWrongChannelCount) {
  Rng rng(29);
  Conv2d conv(2, 4, 3, 3, 1, 1, rng);
  EXPECT_THROW(conv.forward(Tensor({1, 3, 5, 5})), Error);
}

// ---- MaxPool2d -------------------------------------------------------------

TEST(MaxPool2d, PicksWindowMaxima) {
  MaxPool2d pool(2, 2);
  Tensor x({1, 1, 2, 4}, {1, 5, 2, 0, 3, 4, 1, 7});
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.extent(2), 1u);
  EXPECT_EQ(y.extent(3), 2u);
  EXPECT_EQ(y.at4(0, 0, 0, 0), 5.0f);
  EXPECT_EQ(y.at4(0, 0, 0, 1), 7.0f);
}

TEST(MaxPool2d, DropsPartialWindows) {
  MaxPool2d pool(2, 2);
  const Tensor x = random_tensor({1, 1, 5, 7}, 30);
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.extent(2), 2u);
  EXPECT_EQ(y.extent(3), 3u);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool(2, 2);
  Tensor x({1, 1, 2, 2}, {1, 4, 2, 3});
  (void)pool.forward(x);
  const Tensor g = pool.backward(Tensor({1, 1, 1, 1}, {10.0f}));
  EXPECT_EQ(g[0], 0.0f);
  EXPECT_EQ(g[1], 10.0f);
  EXPECT_EQ(g[2], 0.0f);
  EXPECT_EQ(g[3], 0.0f);
}

TEST(MaxPool2d, GradCheck) {
  MaxPool2d pool(2, 2);
  // Distinct values avoid argmax ties under perturbation.
  Tensor x({1, 2, 4, 4});
  for (std::size_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(i % 7) + 0.13f * static_cast<float>(i);
  testing::check_layer_gradients(pool, x, 31);
}

TEST(MaxPool2d, PoolLargerThanInputThrows) {
  MaxPool2d pool(4, 4);
  EXPECT_THROW(pool.forward(Tensor({1, 1, 2, 2})), Error);
}

// ---- Sequential ----------------------------------------------------------------

TEST(Sequential, ComposesLayers) {
  Rng rng(32);
  Sequential model;
  model.add(std::make_unique<Dense>(4, 8, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dense>(8, 2, rng));
  const Tensor y = model.forward(random_tensor({3, 4}, 33));
  EXPECT_EQ(y.extent(1), 2u);
  EXPECT_EQ(model.size(), 3u);
  EXPECT_EQ(model.parameters().size(), 4u);
}

TEST(Sequential, GradCheckThroughStack) {
  Rng rng(34);
  Sequential model;
  model.add(std::make_unique<Dense>(3, 5, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dense>(5, 2, rng));
  Tensor x = random_tensor({2, 3}, 35);
  for (float& v : x.flat()) v += (v >= 0 ? 0.5f : -0.5f);
  // Small eps: a large perturbation would flip dead ReLU units, making the
  // finite difference disagree with the (correct) zero analytic gradient.
  testing::check_layer_gradients(model, x, 36, /*eps=*/3e-3f,
                                 /*tolerance=*/5e-2);
}

TEST(Sequential, FreezeBelowMarksPrefix) {
  Rng rng(37);
  Sequential model;
  model.add(std::make_unique<Dense>(2, 2, rng));
  model.add(std::make_unique<Dense>(2, 2, rng));
  model.freeze_below(1);
  const auto params = model.parameters();
  EXPECT_TRUE(params[0]->frozen);
  EXPECT_TRUE(params[1]->frozen);
  EXPECT_FALSE(params[2]->frozen);
  EXPECT_FALSE(params[3]->frozen);
  model.freeze_below(0);
  for (const Param* p : model.parameters()) EXPECT_FALSE(p->frozen);
}

TEST(Sequential, SetTrainingPropagates) {
  Rng rng(38);
  Sequential model;
  model.add(std::make_unique<Dropout>(0.5, rng));
  model.set_training(false);
  EXPECT_FALSE(model.layer(0).training());
}

TEST(Sequential, ParameterCount) {
  Rng rng(39);
  Sequential model;
  model.add(std::make_unique<Dense>(3, 4, rng));
  EXPECT_EQ(model.parameter_count(), 3u * 4u + 4u);
}

TEST(Sequential, EmptyThrows) {
  Sequential model;
  EXPECT_THROW(model.forward(Tensor({1, 1})), Error);
  EXPECT_THROW(model.layer(0), Error);
}

}  // namespace
}  // namespace clear::nn
