#include "edge/cost_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace clear::edge {

const char* device_name(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kGpu: return "GPU";
    case DeviceKind::kCoralTpu: return "Coral TPU";
    case DeviceKind::kPiNcs2: return "Pi + NCS2";
  }
  return "?";
}

DeviceSpec device_spec(DeviceKind kind) {
  DeviceSpec s;
  switch (kind) {
    case DeviceKind::kGpu:
      // Reference workstation; the paper reports no MTC/MPC for it.
      s.name = device_name(kind);
      s.precision = Precision::kFp32;
      s.infer_macs_per_s = 2.0e11;
      s.train_macs_per_s = 1.2e11;
      s.invoke_overhead_s = 1.0e-3;
      s.step_overhead_s = 2.0e-3;
      s.session_overhead_s = 0.2;
      s.idle_power_w = 25.0;
      s.infer_power_w = 90.0;
      s.train_power_w = 160.0;
      break;
    case DeviceKind::kCoralTpu:
      // Edge TPU: int8 only; fast invoke, modest power.
      // Calibrated against Table II: test 47.31 ms, re-train 32.48 s,
      // powers 1.64 / 1.82 W over a 1.28 W idle floor.
      s.name = device_name(kind);
      s.precision = Precision::kInt8;
      s.infer_macs_per_s = 1.1e8;
      s.train_macs_per_s = 4.0e7;
      s.invoke_overhead_s = 0.0430;
      s.step_overhead_s = 1.07;
      s.session_overhead_s = 2.0;
      s.idle_power_w = 1.28;
      s.infer_power_w = 1.64;
      s.train_power_w = 1.82;
      break;
    case DeviceKind::kPiNcs2:
      // Raspberry Pi + Movidius NCS2: fp16; USB transfer dominates invoke.
      // Calibrated against Table II: test 239.70 ms, re-train 78.52 s,
      // powers 3.43 / 3.78 W over a 2.76 W idle floor.
      s.name = device_name(kind);
      s.precision = Precision::kFp16;
      s.infer_macs_per_s = 2.5e7;
      s.train_macs_per_s = 1.1e7;
      s.invoke_overhead_s = 0.2200;
      s.step_overhead_s = 2.44;
      s.session_overhead_s = 4.0;
      s.idle_power_w = 2.76;
      s.infer_power_w = 3.43;
      s.train_power_w = 3.78;
      break;
  }
  return s;
}

double model_inference_macs(const nn::CnnLstmConfig& c) {
  const double f = static_cast<double>(c.feature_dim);
  const double w = static_cast<double>(c.window_count);
  // Conv1: out [c1, F, W], kernel 3x3 over 1 channel.
  const double conv1 = c.conv1_channels * f * w * 9.0;
  // Conv2: out [c2, F/2, W/2], kernel 3x3 over c1 channels.
  const double conv2 = static_cast<double>(c.conv2_channels) *
                       (f / 2.0) * (w / 2.0) * 9.0 *
                       static_cast<double>(c.conv1_channels);
  // LSTM: T steps of 4 gates over (D + H) inputs to H units.
  const double t_steps = static_cast<double>(c.pooled_window_count());
  const double d = static_cast<double>(c.lstm_input_dim());
  const double h = static_cast<double>(c.lstm_hidden);
  const double lstm = t_steps * 4.0 * (d + h) * h;
  // Dense head.
  const double dense = h * static_cast<double>(c.n_classes);
  return conv1 + conv2 + lstm + dense;
}

CostEstimate estimate_inference(const DeviceSpec& spec, double macs) {
  CLEAR_CHECK_MSG(macs > 0, "macs must be positive");
  CostEstimate e;
  e.seconds = spec.invoke_overhead_s + macs / spec.infer_macs_per_s;
  e.power_w = spec.infer_power_w;
  e.energy_j = e.seconds * e.power_w;
  return e;
}

CostEstimate estimate_finetuning(const DeviceSpec& spec, double macs,
                                 std::size_t n_samples, std::size_t epochs,
                                 std::size_t batch_size) {
  CLEAR_CHECK_MSG(macs > 0 && n_samples > 0 && epochs > 0 && batch_size > 0,
                  "bad fine-tuning cost query");
  const double steps_per_epoch = std::ceil(
      static_cast<double>(n_samples) / static_cast<double>(batch_size));
  const double steps = steps_per_epoch * static_cast<double>(epochs);
  // Forward + backward ≈ 3x forward MACs.
  const double compute_s = 3.0 * macs * static_cast<double>(n_samples) *
                           static_cast<double>(epochs) / spec.train_macs_per_s;
  CostEstimate e;
  e.seconds = spec.session_overhead_s + steps * spec.step_overhead_s + compute_s;
  e.power_w = spec.train_power_w;
  e.energy_j = e.seconds * e.power_w;
  return e;
}

}  // namespace clear::edge
