#include "edge/finetune.hpp"

#include "common/error.hpp"

namespace clear::edge {

nn::TrainHistory edge_finetune(EdgeEngine& engine, const nn::MapDataset& data,
                               const EdgeFinetuneConfig& config) {
  CLEAR_CHECK_MSG(data.size() >= 2, "fine-tuning needs at least two samples");
  nn::Sequential& model = engine.model();
  if (config.freeze_feature_extractor)
    model.freeze_below(config.freeze_boundary);

  nn::TrainConfig train = config.train;
  const Precision precision = engine.precision();
  if (precision != Precision::kFp32) {
    train.post_step = [precision](nn::Sequential& m) {
      for (nn::Param* p : m.parameters()) {
        if (p->frozen) continue;
        if (precision == Precision::kFp16) {
          fp16_inplace(p->value);
        } else {
          fake_quantize_inplace(p->value,
                                calibrate_max_abs(p->value.flat()));
        }
      }
    };
  }

  nn::TrainHistory history = nn::train_classifier(model, data, train);
  // Unfreeze so the model object is reusable, then re-apply the weight-side
  // precision transform to whatever parameters best-epoch restoration chose.
  model.freeze_below(0);
  engine.requantize_weights();
  return history;
}

}  // namespace clear::edge
