#include "serve/batcher.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace clear::serve {

std::string BatchKey::str() const {
  std::string base;
  switch (kind) {
    case Kind::kGeneral: base = "general"; break;
    case Kind::kCluster: base = "cluster" + std::to_string(id); break;
    case Kind::kPersonal: base = "user" + std::to_string(id); break;
  }
  return base + "/" + edge::precision_name(precision);
}

MicroBatcher::MicroBatcher(BatchPolicy policy) : policy_(policy) {
  CLEAR_CHECK_MSG(policy_.max_batch >= 1, "max_batch must be >= 1");
  CLEAR_CHECK_MSG(policy_.queue_capacity >= policy_.max_batch,
                  "queue_capacity must be >= max_batch");
  CLEAR_CHECK_MSG(policy_.max_pending >= policy_.queue_capacity,
                  "max_pending must be >= queue_capacity");
}

MicroBatcher::Admit MicroBatcher::admit(const BatchKey& key, std::size_t slot,
                                        std::uint64_t now_us) {
  if (pending_ >= policy_.max_pending) return Admit::kOverloaded;
  std::deque<PendingItem>& q = queues_[key];
  if (q.size() >= policy_.queue_capacity) return Admit::kQueueFull;
  PendingItem item;
  item.slot = slot;
  item.enqueue_us = now_us;
  item.deadline_us = now_us + policy_.max_wait_us;
  q.push_back(item);
  ++pending_;
  return Admit::kQueued;
}

std::vector<Batch> MicroBatcher::pop_due(std::uint64_t now_us) {
  std::vector<Batch> due;
  for (auto it = queues_.begin(); it != queues_.end();) {
    std::deque<PendingItem>& q = it->second;
    const bool full = q.size() >= policy_.max_batch;
    const bool timed_out = !q.empty() && q.front().deadline_us <= now_us;
    if (!full && !timed_out) {
      ++it;
      continue;
    }
    Batch batch;
    batch.key = it->first;
    // A full queue ships as soon as virtual time reaches it; a timed-out
    // one executes exactly at its oldest deadline — both independent of
    // when the driver happened to call pop_due.
    batch.exec_us =
        full ? std::min(now_us, q.front().deadline_us) : q.front().deadline_us;
    const std::size_t n = std::min(q.size(), policy_.max_batch);
    batch.items.assign(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(n));
    q.erase(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(n));
    pending_ -= n;
    due.push_back(std::move(batch));
    if (q.empty()) {
      it = queues_.erase(it);
    } else {
      ++it;
    }
  }
  return due;
}

std::uint64_t MicroBatcher::next_deadline_us() const {
  std::uint64_t next = UINT64_MAX;
  for (const auto& [key, q] : queues_)
    if (!q.empty()) next = std::min(next, q.front().deadline_us);
  return next;
}

std::size_t MicroBatcher::depth(const BatchKey& key) const {
  const auto it = queues_.find(key);
  return it == queues_.end() ? 0 : it->second.size();
}

}  // namespace clear::serve
