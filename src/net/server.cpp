#include "net/server.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/logging.hpp"
#include "common/obs.hpp"
#include "serve/journal.hpp"

namespace clear::net {

namespace {

// epoll user-data ids for the two non-connection fds.
constexpr std::uint64_t kListenId = 0;
constexpr std::uint64_t kWakeId = ~0ull;

constexpr std::size_t kReadChunk = 64 * 1024;

}  // namespace

NetServer::NetServer(serve::Server& server, NetServerConfig config)
    : server_(server), config_(std::move(config)) {
  listen_fd_ = listen_tcp(config_.listen);
  port_ = local_port(listen_fd_);

  epoll_fd_ = ::epoll_create1(0);
  CLEAR_CHECK_MSG(epoll_fd_ >= 0,
                  "epoll_create1 failed: " << std::strerror(errno));
  CLEAR_CHECK_MSG(::pipe(wake_fds_) == 0,
                  "pipe failed: " << std::strerror(errno));
  set_nonblocking(wake_fds_[0], true);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  CLEAR_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0,
                  "epoll_ctl(listen) failed: " << std::strerror(errno));
  ev.data.u64 = kWakeId;
  CLEAR_CHECK_MSG(
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fds_[0], &ev) == 0,
      "epoll_ctl(wake) failed: " << std::strerror(errno));

  if (!config_.port_file.empty()) {
    std::ofstream out(config_.port_file, std::ios::trunc);
    CLEAR_CHECK_MSG(out.good(),
                    "cannot write port file '" << config_.port_file << "'");
    out << port_ << "\n";
  }
  CLEAR_INFO("net: listening on " << config_.listen.host << ":" << port_);
}

NetServer::~NetServer() {
  for (auto& [id, conn] : connections_) conn->stream.close();
  connections_.clear();
  close_fd(listen_fd_);
  close_fd(wake_fds_[0]);
  close_fd(wake_fds_[1]);
  close_fd(epoll_fd_);
}

void NetServer::stop() {
  // Async-signal-safe wake: one byte through the self-pipe.
  const char b = 's';
  [[maybe_unused]] const ssize_t rc = ::write(wake_fds_[1], &b, 1);
}

void NetServer::run() {
  CLEAR_OBS_SPAN("net.run");
  std::vector<epoll_event> events(64);
  while (true) {
    graveyard_.clear();
    // Drain-on-shutdown: once stopping, stay in the loop only to flush
    // write buffers; exit when every connection's outbuf is empty.
    if (stopping_) {
      bool pending = false;
      for (auto& [id, conn] : connections_)
        pending = pending || conn->outpos < conn->outbuf.size();
      if (!pending) break;
    }
    int timeout_ms = -1;
    if (stopping_)
      timeout_ms = 100;
    else if (config_.idle_flush_ms > 0 && server_.in_flight() > 0)
      timeout_ms = static_cast<int>(config_.idle_flush_ms);
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      CLEAR_CHECK_MSG(false, "epoll_wait failed: " << std::strerror(errno));
    }
    if (n == 0) {
      if (stopping_) break;  // Peers never drained us; give up.
      if (server_.in_flight() > 0) {
        // Idle flush: the wire went quiet mid-batch — release the tail.
        CLEAR_OBS_COUNT("net.idle_flushes", 1);
        server_.drain();
        dispatch_results();
      }
      continue;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      const std::uint32_t mask = events[i].events;
      if (id == kWakeId) {
        char buf[64];
        while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
        }
        begin_shutdown();
        continue;
      }
      if (id == kListenId) {
        if (!stopping_) accept_ready();
        continue;
      }
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;  // Closed earlier this wake.
      Connection& conn = *it->second;
      if (mask & (EPOLLHUP | EPOLLERR)) {
        close_connection(id, "peer hung up");
        continue;
      }
      if (mask & EPOLLIN) handle_readable(conn);
      // Re-check: handle_readable may have closed the connection.
      auto again = connections_.find(id);
      if (again == connections_.end()) continue;
      if (mask & EPOLLOUT) handle_writable(*again->second);
    }
  }
}

void NetServer::accept_ready() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      CLEAR_WARN("net: accept failed: " << std::strerror(errno));
      return;
    }
    if (connections_.size() >= config_.max_connections) {
      // Refuse at the door: closing immediately is an unambiguous signal,
      // and cheaper than parsing frames we would shed anyway.
      ++counters_.rejected;
      CLEAR_OBS_COUNT("net.rejected", 1);
      ::close(fd);
      continue;
    }
    set_nonblocking(fd, true);
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>();
    conn->id = id;
    conn->stream = FaultedStream(fd, id);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      CLEAR_WARN("net: epoll_ctl(add conn) failed: " << std::strerror(errno));
      ::close(fd);
      continue;
    }
    connections_.emplace(id, std::move(conn));
    ++counters_.accepted;
    CLEAR_OBS_COUNT("net.accepted", 1);
    CLEAR_OBS_GAUGE("net.connections", static_cast<double>(connections_.size()));
  }
}

void NetServer::handle_readable(Connection& conn) {
  char buf[kReadChunk];
  while (true) {
    const IoResult r = conn.stream.read_some(buf, sizeof(buf));
    if (r.n > 0) {
      counters_.bytes_in += r.n;
      CLEAR_OBS_COUNT("net.bytes_in", static_cast<double>(r.n));
      conn.decoder.feed(buf, r.n);
      if (!pump_frames(conn)) {
        close_connection(conn.id, "framing error");
        return;
      }
      // A frame handler may have started shutdown; stop reading new bytes.
      if (stopping_) return;
      continue;
    }
    if (r.would_block) return;
    // Peer is gone (EOF, reset, or injected drop). Bytes buffered past the
    // last complete frame mean it died mid-request: that request is shed at
    // the wire — count it with the serve layer's sheds so operators see one
    // total, plus the net-level counter that says *why*.
    if (conn.decoder.buffered() > 0) {
      ++counters_.partial_drops;
      CLEAR_OBS_COUNT("net.partial_drops", 1);
      CLEAR_OBS_COUNT("serve.shed", 1);
      CLEAR_WARN("net: connection " << conn.id << " dropped mid-frame ("
                                    << conn.decoder.buffered()
                                    << " bytes past frame "
                                    << conn.decoder.frames_decoded() << ")");
    }
    close_connection(conn.id, "peer closed");
    return;
  }
}

bool NetServer::pump_frames(Connection& conn) {
  Frame frame;
  while (true) {
    const DecodeStatus status = conn.decoder.next(frame);
    if (status == DecodeStatus::kNeedMore) return true;
    if (status != DecodeStatus::kFrame) {
      ++counters_.decode_errors;
      CLEAR_OBS_COUNT("net.decode_errors", 1);
      CLEAR_WARN("net: connection " << conn.id << ": "
                                    << conn.decoder.error());
      return false;
    }
    ++counters_.frames_in;
    CLEAR_OBS_COUNT("net.frames_in", 1);
    switch (frame.type) {
      case FrameType::kRequest:
        if (!on_request(conn, frame)) return false;
        break;
      case FrameType::kDrain:
        server_.drain();
        dispatch_results();
        send_frame(conn, encode_drain_ack(ack_snapshot()));
        break;
      case FrameType::kShutdown:
        begin_shutdown();
        send_frame(conn, encode_drain_ack(ack_snapshot()));
        return true;  // No more reads matter; loop now only flushes.
      case FrameType::kPing: {
        std::uint64_t nonce = 0;
        std::string error;
        if (!parse_ping(frame, nonce, error)) {
          ++counters_.decode_errors;
          CLEAR_OBS_COUNT("net.decode_errors", 1);
          CLEAR_WARN("net: connection " << conn.id << ": bad ping: " << error);
          return false;
        }
        if (fault::shard_drop_heartbeat_fires()) {
          // Injected silence: the coordinator sees a missed beat.
          CLEAR_OBS_COUNT("net.heartbeats.dropped", 1);
          break;
        }
        WirePong pong;
        pong.nonce = nonce;
        pong.sessions = server_.sessions().size();
        send_frame(conn, encode_pong(pong));
        break;
      }
      case FrameType::kExport:
        if (!on_export(conn, frame)) return false;
        break;
      case FrameType::kSessionImage:
        if (!on_import(conn, frame)) return false;
        break;
      case FrameType::kAdopt:
        if (!on_adopt(conn, frame)) return false;
        break;
      case FrameType::kMetricsPull:
        send_frame(conn, encode_metrics_json(obs::metrics_json()));
        break;
      case FrameType::kResponse:
      case FrameType::kDrainAck:
      case FrameType::kPong:
      case FrameType::kImportAck:
      case FrameType::kAdoptAck:
      case FrameType::kMetricsJson:
        ++counters_.decode_errors;
        CLEAR_OBS_COUNT("net.decode_errors", 1);
        CLEAR_WARN("net: connection "
                   << conn.id << ": client sent a server-only frame type "
                   << frame_type_name(frame.type));
        return false;
    }
  }
}

bool NetServer::on_request(Connection& conn, const Frame& frame) {
  WireRequest wire;
  std::string error;
  if (!parse_request(frame, wire, error)) {
    ++counters_.decode_errors;
    CLEAR_OBS_COUNT("net.decode_errors", 1);
    CLEAR_WARN("net: connection " << conn.id << ": bad request payload: "
                                  << error);
    return false;
  }
  // Geometry gate: the serve layer trusts map dimensions (normalization
  // would throw deep inside submit), so a map that doesn't match the
  // deployed model is a protocol violation, not a sheddable request.
  const auto& model = server_.source().config.model;
  if (wire.map.extent(0) != model.feature_dim ||
      wire.map.extent(1) != model.window_count) {
    ++counters_.decode_errors;
    CLEAR_OBS_COUNT("net.decode_errors", 1);
    CLEAR_WARN("net: connection "
               << conn.id << ": request map is " << wire.map.shape_str()
               << ", model expects [" << model.feature_dim << ", "
               << model.window_count << "]");
    return false;
  }
  serve::ServeRequest request;
  request.user_id = wire.user_id;
  request.request_id = wire.request_id;
  request.quality = wire.quality;
  request.label = wire.label;
  request.map = std::move(wire.map);
  // The serve layer's virtual clock must not run backwards. One connection
  // sending in order never trips this; interleaved connections (or a
  // malicious client) get clamped to the high-water mark — the request is
  // still served, just as if it had arrived "now".
  const std::uint64_t floor_us = server_.last_arrival_us();
  if (wire.arrival_us < floor_us) {
    request.arrival_us = floor_us;
    ++counters_.clamped_arrivals;
    CLEAR_OBS_COUNT("net.clamped_arrivals", 1);
  } else {
    request.arrival_us = wire.arrival_us;
  }
  routes_[{request.user_id, request.request_id}] = conn.id;
  ++conn.submitted;
  server_.submit(std::move(request));
  dispatch_results();
  return true;
}

bool NetServer::on_export(Connection& conn, const Frame& frame) {
  std::uint64_t user = 0;
  std::string error;
  if (!parse_export(frame, user, error)) {
    ++counters_.decode_errors;
    CLEAR_OBS_COUNT("net.decode_errors", 1);
    CLEAR_WARN("net: connection " << conn.id << ": bad export: " << error);
    return false;
  }
  // Quiesce first: the user's pending rows must complete (and their
  // responses route) before the session freezes — exporting mid-batch
  // would fork the session's history across shards.
  server_.drain();
  dispatch_results();
  WireSessionImage out;
  out.user_id = user;
  if (std::optional<serve::Server::ExportedSession> exp =
          server_.export_session(user)) {
    out.found = true;
    out.image = serve::encode_session_image(exp->image);
    out.checkpoint = std::move(exp->checkpoint);
  }
  send_frame(conn, encode_session_image(out));
  // Retire only after the image is on (or queued for) the wire: a send
  // failure closes the connection, and the coordinator treats the shard as
  // dead — the session must still be in this shard's journal for adoption.
  if (out.found) server_.retire_session(user);
  return true;
}

bool NetServer::on_import(Connection& conn, const Frame& frame) {
  WireSessionImage wire;
  std::string error;
  if (!parse_session_image(frame, wire, error)) {
    ++counters_.decode_errors;
    CLEAR_OBS_COUNT("net.decode_errors", 1);
    CLEAR_WARN("net: connection " << conn.id << ": bad session image: "
                                  << error);
    return false;
  }
  WireImportAck ack;
  ack.user_id = wire.user_id;
  if (!wire.found) {
    ack.error = "import frame carries no session (found = false)";
  } else {
    try {
      const serve::SessionImage image =
          serve::decode_session_image(wire.image);
      if (image.user_id != wire.user_id) {
        ack.error = "image user does not match the frame header";
      } else {
        ack.ok = server_.import_session(image, wire.checkpoint);
        if (!ack.ok) ack.error = "import failed (see shard log)";
      }
    } catch (const Error& e) {
      ack.error = e.what();
    }
  }
  send_frame(conn, encode_import_ack(ack));
  return true;
}

bool NetServer::on_adopt(Connection& conn, const Frame& frame) {
  std::string dir;
  std::string error;
  if (!parse_adopt(frame, dir, error)) {
    ++counters_.decode_errors;
    CLEAR_OBS_COUNT("net.decode_errors", 1);
    CLEAR_WARN("net: connection " << conn.id << ": bad adopt: " << error);
    return false;
  }
  WireAdoptAck ack;
  // Rebuild the dead shard's sessions in a scratch server — recover() is
  // snapshot restore + journal replay + checkpoint re-attach, the exact
  // machinery a restart of the dead shard would run — then move each one
  // over with the same export/import path a live migration uses.
  try {
    serve::ServeConfig scratch_config = server_.config();
    scratch_config.journal.directory = dir;
    serve::Server scratch(server_.source(), std::move(scratch_config));
    const serve::RecoveryReport report = scratch.recover();
    CLEAR_INFO("net: adopting " << report.sessions << " sessions from '"
                                << dir << "' (" << report.personalized
                                << " personalized)");
    std::vector<std::uint64_t> users;
    for (const serve::Session* s : scratch.sessions().sessions())
      users.push_back(s->user_id());
    for (const std::uint64_t user : users) {
      std::optional<serve::Server::ExportedSession> exp =
          scratch.export_session(user);
      if (!exp) continue;
      const bool personal = exp->image.has_personal;
      if (server_.import_session(exp->image, exp->checkpoint)) {
        ++ack.sessions;
        if (personal) ++ack.personalized;
        // The dead directory no longer claims the session; a second adopt
        // of the same directory must not double-import it.
        scratch.retire_session(user);
      } else {
        ++ack.failed;
      }
    }
  } catch (const Error& e) {
    CLEAR_WARN("net: adoption of '" << dir << "' failed: " << e.what());
    ++ack.failed;
  }
  send_frame(conn, encode_adopt_ack(ack));
  return true;
}

void NetServer::begin_shutdown() {
  if (stopping_) return;
  stopping_ = true;
  server_.drain();
  dispatch_results();
  // Graceful-shutdown durability: with the batcher flushed and every
  // session mutation applied, a final compacting snapshot means the next
  // start replays nothing. No-op when journaling is off.
  server_.snapshot_now();
}

void NetServer::dispatch_results() {
  for (serve::ServeResult& result : server_.take_results()) {
    const auto key = std::make_pair(result.user_id, result.request_id);
    const auto route = routes_.find(key);
    std::uint64_t conn_id = 0;
    if (route != routes_.end()) {
      conn_id = route->second;
      routes_.erase(route);
    }
    const auto it = connections_.find(conn_id);
    if (it == connections_.end()) {
      // The requester hung up before its result completed. The session
      // state is already updated inside the serve layer (that's the
      // point — a dead wire must not corrupt the session); only the
      // reply is lost.
      ++counters_.dropped_responses;
      CLEAR_OBS_COUNT("net.dropped_responses", 1);
      continue;
    }
    WireResponse wire;
    wire.request_id = result.request_id;
    wire.user_id = result.user_id;
    wire.shed = result.status == serve::ServeResult::Status::kShed;
    wire.predicted = result.predicted;
    wire.fear_probability = result.fear_probability;
    wire.session_state = static_cast<std::uint32_t>(result.session_state);
    wire.degraded = result.degraded;
    wire.route_kind = static_cast<std::uint32_t>(result.route.kind);
    wire.route_id = result.route.id;
    wire.batch_rows = static_cast<std::uint32_t>(result.batch_rows);
    wire.arrival_us = result.arrival_us;
    wire.exec_us = result.exec_us;
    wire.error = result.error;
    send_frame(*it->second, encode_response(wire));
  }
}

void NetServer::send_frame(Connection& conn, const std::string& frame) {
  if (!conn.stream.open()) return;
  conn.outbuf.append(frame);
  ++counters_.frames_out;
  CLEAR_OBS_COUNT("net.frames_out", 1);
  flush(conn);
}

void NetServer::flush(Connection& conn) {
  while (conn.outpos < conn.outbuf.size()) {
    const IoResult r = conn.stream.write_some(conn.outbuf.data() + conn.outpos,
                                              conn.outbuf.size() - conn.outpos);
    if (r.n > 0) {
      conn.outpos += r.n;
      counters_.bytes_out += r.n;
      CLEAR_OBS_COUNT("net.bytes_out", static_cast<double>(r.n));
      continue;
    }
    if (r.would_block) break;
    if (r.closed) {
      close_connection(conn.id, "peer closed during write");
      return;
    }
  }
  if (conn.outpos >= conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.outpos = 0;
  } else if (conn.outpos > conn.outbuf.size() / 2) {
    conn.outbuf.erase(0, conn.outpos);
    conn.outpos = 0;
  }
  update_write_interest(conn);
}

void NetServer::handle_writable(Connection& conn) { flush(conn); }

void NetServer::update_write_interest(Connection& conn) {
  if (!conn.stream.open()) return;
  const bool want = conn.outpos < conn.outbuf.size();
  if (want == conn.writable_armed) return;
  epoll_event ev{};
  ev.events = want ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.u64 = conn.id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.stream.fd(), &ev) == 0)
    conn.writable_armed = want;
}

void NetServer::close_connection(std::uint64_t id, const char* why) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  if (conn.stream.open()) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.stream.fd(), nullptr);
    conn.stream.close();
  }
  CLEAR_DEBUG("net: closing connection " << id << " (" << why << ")");
  graveyard_.push_back(std::move(it->second));
  connections_.erase(it);
  ++counters_.closed;
  CLEAR_OBS_COUNT("net.closed", 1);
  CLEAR_OBS_GAUGE("net.connections", static_cast<double>(connections_.size()));
}

WireDrainAck NetServer::ack_snapshot() const {
  const serve::ServeCounters& c = server_.counters();
  WireDrainAck ack;
  ack.requests = c.requests;
  ack.ok = c.ok;
  ack.shed = c.shed;
  return ack;
}

}  // namespace clear::net
