#!/usr/bin/env bash
# Build and run the sensitive test binaries under the configured sanitizers.
# Supersedes run_tsan_tests.sh (kept as a thin TSAN-only wrapper): this
# script also covers the fault-injection / integrity suites under
# UndefinedBehaviorSanitizer, where bit-twiddling CRC code, byte-flip
# corruption paths, and NaN-heavy sanitization are most likely to trip UB.
#
#   tools/run_sanitizer_tests.sh [thread|undefined|address|obsoff|all] \
#       [build-dir-prefix]
#
# `address` replays the wire-protocol fuzz/property suites (tests/net) and
# the artifact-container / delta-codec fuzz suites (tests/artifact) plus
# the fault suites under ASan+UBSAN — the frame decoder and the artifact
# codecs chew adversarial byte streams, exactly where an out-of-bounds
# read would hide. `obsoff`
# builds clear-cli with -DCLEAR_OBS=OFF and runs the serve smoke's golden
# comparison against it (instrumentation compiled out must not change a
# byte of output).
#
# Each sanitizer gets its own build directory (<prefix>-<sanitizer>) so the
# instrumented objects never mix. Exits non-zero on the first report
# (halt_on_error=1) or test failure.
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-all}"
PREFIX="${2:-build}"

run_tsan() {
  local dir="${PREFIX}-tsan"
  cmake -B "$dir" -S . -DCLEAR_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$dir" -j --target test_parallel test_cluster test_fault
  export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
  # Force the pool onto multiple threads even on small machines so the
  # scheduler actually interleaves workers.
  export CLEAR_NUM_THREADS=4
  echo "== test_parallel (TSAN) =="
  "$dir/tests/test_parallel"
  echo "== test_cluster (TSAN) =="
  "$dir/tests/test_cluster"
  echo "== test_fault (TSAN) =="
  "$dir/tests/test_fault"
}

run_ubsan() {
  local dir="${PREFIX}-ubsan"
  cmake -B "$dir" -S . -DCLEAR_SANITIZE=undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$dir" -j --target test_fault test_common test_nn test_features \
    test_kernel_equivalence test_net test_serve test_delta
  export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
  echo "== test_fault (UBSAN) =="
  "$dir/tests/test_fault"
  echo "== test_serve (UBSAN, journal framing + crash-recovery replay) =="
  "$dir/tests/test_serve" --gtest_filter='JournalTest*:RecoveryTest*'
  echo "== test_kernel_equivalence (UBSAN, SIMD + fp16/int8 bit paths) =="
  "$dir/tests/test_kernel_equivalence"
  echo "== test_net (UBSAN, wire-codec fuzz/property suites) =="
  "$dir/tests/test_net" --gtest_filter='Protocol*'
  echo "== test_delta (UBSAN, artifact container + delta codec fuzz) =="
  "$dir/tests/test_delta"
  echo "== test_common (UBSAN) =="
  "$dir/tests/test_common"
  echo "== test_nn (UBSAN, checkpoint corruption paths) =="
  "$dir/tests/test_nn" --gtest_filter='Checkpoint*'
  echo "== test_features (UBSAN, NaN audit paths) =="
  "$dir/tests/test_features" --gtest_filter='*Audit*:Nonlinear*'
}

run_asan() {
  local dir="${PREFIX}-asan"
  cmake -B "$dir" -S . -DCLEAR_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$dir" -j --target test_net test_fault test_serve test_delta
  export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}"
  export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
  echo "== test_net (ASAN, full wire suite: fuzzed decode, loopback, faults) =="
  "$dir/tests/test_net"
  echo "== test_fault (ASAN) =="
  "$dir/tests/test_fault"
  echo "== test_serve (ASAN, torn/corrupt journal tails + recovery) =="
  "$dir/tests/test_serve" --gtest_filter='JournalTest*:RecoveryTest*'
  echo "== test_delta (ASAN, fuzzed containers + corrupt delta payloads) =="
  "$dir/tests/test_delta" \
    --gtest_filter='ArtifactStore.Fuzz*:ArtifactStore.Rejects*:DeltaCodec.Rejects*:DeltaCodec.RoundTrips*'
}

run_obsoff() {
  local dir="${PREFIX}-obsoff"
  cmake -B "$dir" -S . -DCLEAR_OBS=OFF -DCMAKE_BUILD_TYPE=Release
  cmake --build "$dir" -j --target clear-cli
  # The default-build CLI drives the metrics legs; the obs-off CLI must hit
  # the same prediction golden (run_serve_smoke.sh step 8). Absolute paths:
  # the smoke script runs from a scratch directory.
  local on_dir="${PREFIX}"
  if [ ! -x "$on_dir/tools/clear-cli" ]; then
    cmake -B "$on_dir" -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build "$on_dir" -j --target clear-cli
  fi
  local root
  root="$(pwd)"
  sh tools/run_serve_smoke.sh "$root/$on_dir/tools/clear-cli" \
    "$root/tools/metrics_schema.json" "$root/tools/serve_golden.txt" \
    "$root/$dir/tools/clear-cli"
}

case "$MODE" in
  thread)    run_tsan ;;
  undefined) run_ubsan ;;
  address)   run_asan ;;
  obsoff)    run_obsoff ;;
  all)       run_tsan; run_ubsan; run_asan; run_obsoff ;;
  *) echo "usage: $0 [thread|undefined|address|obsoff|all] [build-dir-prefix]" >&2
     exit 2 ;;
esac
echo "Sanitizer run clean."
