#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/error.hpp"

namespace clear::csv {
namespace {

TEST(Csv, ParseSimpleLine) {
  const Row r = parse_line("a,b,c");
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], "a");
  EXPECT_EQ(r[2], "c");
}

TEST(Csv, ParseEmptyFields) {
  const Row r = parse_line("a,,c,");
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r[1], "");
  EXPECT_EQ(r[3], "");
}

TEST(Csv, ParseQuotedComma) {
  const Row r = parse_line("a,\"b,c\",d");
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[1], "b,c");
}

TEST(Csv, ParseEscapedQuote) {
  const Row r = parse_line("\"he said \"\"hi\"\"\",x");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], "he said \"hi\"");
}

TEST(Csv, ParseToleratesCrlf) {
  const Row r = parse_line("a,b\r");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[1], "b");
}

TEST(Csv, FormatQuotesWhenNeeded) {
  EXPECT_EQ(format_line({"a", "b,c", "d\"e"}), "a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(format_line({"plain"}), "plain");
}

TEST(Csv, RoundTripThroughFormatAndParse) {
  const Row original = {"x", "with,comma", "with\"quote", ""};
  const Row parsed = parse_line(format_line(original));
  EXPECT_EQ(parsed, original);
}

TEST(Csv, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "clear_csv_test.csv").string();
  const std::vector<Row> rows = {{"h1", "h2"}, {"1", "a,b"}, {"2", "z"}};
  write_file(path, rows);
  const std::vector<Row> read = read_file(path);
  EXPECT_EQ(read, rows);
  std::remove(path.c_str());
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/path/x.csv"), Error);
}

TEST(Csv, FormatDoubleRoundTrips) {
  const double v = 0.1234567890123456789;
  EXPECT_DOUBLE_EQ(std::stod(format_double(v)), v);
}

}  // namespace
}  // namespace clear::csv
