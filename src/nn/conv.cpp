#include "nn/conv.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/ops.hpp"

namespace clear::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kh, std::size_t kw, std::size_t stride,
               std::size_t pad, Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kh_(kh),
      kw_(kw),
      stride_(stride),
      pad_(pad),
      weight_("conv.weight", Tensor({out_channels, in_channels * kh * kw})),
      bias_("conv.bias", Tensor({out_channels})) {
  CLEAR_CHECK_MSG(kh_ >= 1 && kw_ >= 1 && stride_ >= 1, "bad conv geometry");
  const float fan_in = static_cast<float>(in_ch_ * kh_ * kw_);
  const float bound = std::sqrt(6.0f / fan_in);
  weight_.value.fill_uniform(rng, -bound, bound);
  bias_.value.zero();
}

Tensor Conv2d::forward(const Tensor& input) {
  CLEAR_CHECK_MSG(input.rank() == 4 && input.extent(1) == in_ch_,
                  "Conv2d expects [N, " << in_ch_ << ", H, W], got "
                                        << input.shape_str());
  const std::size_t n = input.extent(0);
  const std::size_t h = input.extent(2);
  const std::size_t w = input.extent(3);
  const std::size_t oh = ops::conv_out_extent(h, kh_, stride_, pad_);
  const std::size_t ow = ops::conv_out_extent(w, kw_, stride_, pad_);
  Tensor out({n, out_ch_, oh, ow});
  if (!training_) {
    // Inference: no backward pass will follow, so skip the per-sample column
    // caches and run im2col + GEMM into reusable workspace tensors.
    cached_cols_.clear();
    cached_in_shape_.clear();
    ws_image_.resize({in_ch_, h, w});
    // bias[oc] broadcasts over each output row of the [out_ch, oh*ow]
    // product — a per-row GEMM epilogue, fused into the kernel pass.
    const kernels::Epilogue ep{kernels::BiasMode::kPerRow, bias_.value.data(),
                               kernels::Activation::kNone};
    for (std::size_t b = 0; b < n; ++b) {
      const float* src = input.data() + b * in_ch_ * h * w;
      std::copy(src, src + in_ch_ * h * w, ws_image_.data());
      ops::im2col_into(ws_image_, kh_, kw_, stride_, pad_, ws_cols_);
      ops::matmul_fused_into(weight_.value, ws_cols_, ws_prod_, ep);
      float* dst = out.data() + b * out_ch_ * oh * ow;
      const float* ps = ws_prod_.data();
      std::copy(ps, ps + out_ch_ * oh * ow, dst);
    }
    return out;
  }

  cached_in_shape_ = input.shape();
  cached_cols_.clear();
  cached_cols_.reserve(n);

  const kernels::Epilogue ep{kernels::BiasMode::kPerRow, bias_.value.data(),
                             kernels::Activation::kNone};
  for (std::size_t b = 0; b < n; ++b) {
    // View of sample b as [C, H, W] (contiguous slice).
    Tensor image({in_ch_, h, w});
    const float* src = input.data() + b * in_ch_ * h * w;
    std::copy(src, src + in_ch_ * h * w, image.data());
    Tensor cols = ops::im2col(image, kh_, kw_, stride_, pad_);
    Tensor prod;  // [out_ch, oh*ow], bias fused per output row.
    ops::matmul_fused_into(weight_.value, cols, prod, ep);
    float* dst = out.data() + b * out_ch_ * oh * ow;
    const float* ps = prod.data();
    std::copy(ps, ps + out_ch_ * oh * ow, dst);
    cached_cols_.push_back(std::move(cols));
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  CLEAR_CHECK_MSG(!cached_in_shape_.empty(), "backward before forward");
  const std::size_t n = cached_in_shape_[0];
  const std::size_t h = cached_in_shape_[2];
  const std::size_t w = cached_in_shape_[3];
  const std::size_t oh = ops::conv_out_extent(h, kh_, stride_, pad_);
  const std::size_t ow = ops::conv_out_extent(w, kw_, stride_, pad_);
  CLEAR_CHECK_MSG(grad_output.rank() == 4 && grad_output.extent(0) == n &&
                      grad_output.extent(1) == out_ch_ &&
                      grad_output.extent(2) == oh &&
                      grad_output.extent(3) == ow,
                  "Conv2d backward shape mismatch");

  Tensor grad_input(cached_in_shape_);
  const Tensor wt = ops::transpose2d(weight_.value);  // [ic*kh*kw, oc]
  for (std::size_t b = 0; b < n; ++b) {
    Tensor g({out_ch_, oh * ow});
    const float* src = grad_output.data() + b * out_ch_ * oh * ow;
    std::copy(src, src + out_ch_ * oh * ow, g.data());
    // dW += g * cols^T.
    const Tensor colsT = ops::transpose2d(cached_cols_[b]);
    ops::matmul_accum(g, colsT, weight_.grad);
    // db += row sums of g.
    for (std::size_t oc = 0; oc < out_ch_; ++oc)
      for (std::size_t i = 0; i < oh * ow; ++i)
        bias_.grad[oc] += g.at2(oc, i);
    // dx = col2im(W^T g).
    const Tensor dcols = ops::matmul(wt, g);
    const Tensor dimage =
        ops::col2im(dcols, in_ch_, h, w, kh_, kw_, stride_, pad_);
    float* dst = grad_input.data() + b * in_ch_ * h * w;
    const float* ds = dimage.data();
    for (std::size_t i = 0; i < in_ch_ * h * w; ++i) dst[i] += ds[i];
  }
  return grad_input;
}

std::vector<Param*> Conv2d::parameters() { return {&weight_, &bias_}; }

}  // namespace clear::nn
