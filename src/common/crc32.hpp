// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// check stamped on every checkpoint and artifact blob.
//
// The incremental `Crc32` accumulator lets writers checksum a payload while
// streaming it out; the one-shot helpers cover in-memory buffers. The
// implementation is slice-by-8 (eight 256-entry tables, eight bytes folded
// per iteration): several times the throughput of the classic byte-wise
// table on the multi-megabyte checkpoints the serving layer digests on
// every cold load, still tiny enough for the edge targets, and bit-
// identical to the byte-wise loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace clear {

class Crc32 {
 public:
  /// Feed `n` bytes into the running checksum.
  void update(const void* data, std::size_t n);
  void update(const std::string& s) { update(s.data(), s.size()); }

  /// Finalized checksum of everything fed so far (does not reset).
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

  void reset() { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a buffer.
std::uint32_t crc32(const void* data, std::size_t n);
inline std::uint32_t crc32(const std::string& s) {
  return crc32(s.data(), s.size());
}

}  // namespace clear
