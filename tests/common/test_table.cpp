#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace clear {
namespace {

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(AsciiTable, RejectsArityMismatch) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), Error);
}

TEST(AsciiTable, RejectsEmptyHeader) {
  EXPECT_THROW(AsciiTable({}), Error);
}

TEST(AsciiTable, SectionsAppearInOutput) {
  AsciiTable t({"x"});
  t.add_section("My Section");
  t.add_row({"1"});
  EXPECT_NE(t.str().find("My Section"), std::string::npos);
}

TEST(AsciiTable, TitleAppearsFirst) {
  AsciiTable t({"x"});
  t.set_title("The Title");
  EXPECT_EQ(t.str().rfind("The Title", 0), 0u);
}

TEST(AsciiTable, ColumnsAlign) {
  AsciiTable t({"a", "b"});
  t.add_row({"short", "x"});
  t.add_row({"much-longer-cell", "y"});
  const std::string s = t.str();
  // Every rendered line has the same width.
  std::size_t first_len = std::string::npos;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t eol = s.find('\n', pos);
    const std::size_t len = eol - pos;
    if (first_len == std::string::npos) first_len = len;
    // Title absent; all lines should match the rule width.
    EXPECT_EQ(len, first_len);
    pos = eol + 1;
  }
}

TEST(AsciiTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::num(2.0, 0), "2");
}

}  // namespace
}  // namespace clear
