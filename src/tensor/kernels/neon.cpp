// ARM NEON kernels (AArch64 / ARMv7-with-NEON targets, e.g. Raspberry Pi).
//
// Compiled only when the toolchain targets ARM; on x86 builds this TU
// collapses to a null provider. The same bit-exactness rules as the AVX2
// path apply: vectorize across independent output elements, keep each
// element's k accumulation in ascending order, separate vmulq/vaddq
// roundings (no vmlaq/vfmaq — those fuse on AArch64), and the tree builds
// with -ffp-contract=off so the compiler cannot re-fuse them.
#include "tensor/kernels/table_internal.hpp"

#if defined(__ARM_NEON) || defined(__ARM_NEON__)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>
#include <cstring>

namespace clear::kernels::detail {

namespace {

constexpr std::size_t kMr = 4;  ///< Register-blocked C rows per microkernel.

inline void epilogue_tail(float* crow, std::size_t row, std::size_t j0,
                          std::size_t n, const Epilogue* ep) {
  if (!ep) return;
  for (std::size_t j = j0; j < n; ++j) {
    float v = crow[j];
    if (ep->bias)
      v += ep->bias_mode == BiasMode::kPerCol ? ep->bias[j] : ep->bias[row];
    if (ep->act == Activation::kRelu && !(v > 0.0f)) v = 0.0f;
    crow[j] = v;
  }
}

/// One MR x 8 column strip (2 q-registers per row).
inline void strip_f32(const float* a, const float* b, float* c,
                      std::size_t rows, std::size_t k, std::size_t n,
                      std::size_t j, std::size_t row0, const Epilogue* ep) {
  float32x4_t acc0[kMr], acc1[kMr];
  for (std::size_t r = 0; r < rows; ++r) {
    acc0[r] = vld1q_f32(c + r * n + j);
    acc1[r] = vld1q_f32(c + r * n + j + 4);
  }
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float32x4_t b0 = vld1q_f32(b + kk * n + j);
    const float32x4_t b1 = vld1q_f32(b + kk * n + j + 4);
    for (std::size_t r = 0; r < rows; ++r) {
      const float32x4_t av = vdupq_n_f32(a[r * k + kk]);
      acc0[r] = vaddq_f32(acc0[r], vmulq_f32(av, b0));
      acc1[r] = vaddq_f32(acc1[r], vmulq_f32(av, b1));
    }
  }
  if (ep) {
    if (ep->bias) {
      if (ep->bias_mode == BiasMode::kPerCol) {
        const float32x4_t bc0 = vld1q_f32(ep->bias + j);
        const float32x4_t bc1 = vld1q_f32(ep->bias + j + 4);
        for (std::size_t r = 0; r < rows; ++r) {
          acc0[r] = vaddq_f32(acc0[r], bc0);
          acc1[r] = vaddq_f32(acc1[r], bc1);
        }
      } else {
        for (std::size_t r = 0; r < rows; ++r) {
          const float32x4_t br = vdupq_n_f32(ep->bias[row0 + r]);
          acc0[r] = vaddq_f32(acc0[r], br);
          acc1[r] = vaddq_f32(acc1[r], br);
        }
      }
    }
    if (ep->act == Activation::kRelu) {
      const float32x4_t zero = vdupq_n_f32(0.0f);
      for (std::size_t r = 0; r < rows; ++r) {
        acc0[r] = vmaxq_f32(acc0[r], zero);
        acc1[r] = vmaxq_f32(acc1[r], zero);
      }
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    vst1q_f32(c + r * n + j, acc0[r]);
    vst1q_f32(c + r * n + j + 4, acc1[r]);
  }
}

void gemm_f32(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, const Epilogue* ep) {
  for (std::size_t i = 0; i < m; i += kMr) {
    const std::size_t rows = m - i < kMr ? m - i : kMr;
    const float* ablk = a + i * k;
    float* cblk = c + i * n;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) strip_f32(ablk, b, cblk, rows, k, n, j, i, ep);
    if (j < n) {
      for (std::size_t r = 0; r < rows; ++r) {
        const float* arow = ablk + r * k;
        float* crow = cblk + r * n;
        for (std::size_t kk = 0; kk < k; ++kk) {
          const float av = arow[kk];
          const float* brow = b + kk * n;
          for (std::size_t jj = j; jj < n; ++jj) crow[jj] += av * brow[jj];
        }
        epilogue_tail(crow, i + r, j, n, ep);
      }
    }
  }
}

void gemm_i8(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
             std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const std::int8_t* arow = a + i * k;
    std::int32_t* crow = c + i * n;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      int32x4_t acc0 = vdupq_n_s32(0);
      int32x4_t acc1 = vdupq_n_s32(0);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const std::int8_t av = arow[kk];
        if (av == 0) continue;
        const int8x8_t b8 = vld1_s8(b + kk * n + j);
        const int16x8_t prod = vmull_s8(vdup_n_s8(av), b8);
        acc0 = vaddw_s16(acc0, vget_low_s16(prod));
        acc1 = vaddw_s16(acc1, vget_high_s16(prod));
      }
      vst1q_s32(crow + j, acc0);
      vst1q_s32(crow + j + 4, acc1);
    }
    for (; j < n; ++j) {
      std::int32_t s = 0;
      for (std::size_t kk = 0; kk < k; ++kk)
        s += static_cast<std::int32_t>(arow[kk]) *
             static_cast<std::int32_t>(b[kk * n + j]);
      crow[j] = s;
    }
  }
}

void add_f32(float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    vst1q_f32(a + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  for (; i < n; ++i) a[i] += b[i];
}

void sub_f32(float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    vst1q_f32(a + i, vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  for (; i < n; ++i) a[i] -= b[i];
}

void mul_f32(float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    vst1q_f32(a + i, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  for (; i < n; ++i) a[i] *= b[i];
}

void axpy_f32(float* a, float alpha, const float* b, std::size_t n) {
  const float32x4_t va = vdupq_n_f32(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    vst1q_f32(a + i, vaddq_f32(vld1q_f32(a + i),
                               vmulq_f32(va, vld1q_f32(b + i))));
  for (; i < n; ++i) a[i] += alpha * b[i];
}

void scale_f32(float* a, float s, std::size_t n) {
  const float32x4_t vs = vdupq_n_f32(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    vst1q_f32(a + i, vmulq_f32(vld1q_f32(a + i), vs));
  for (; i < n; ++i) a[i] *= s;
}

void add_scalar_f32(float* a, float s, std::size_t n) {
  const float32x4_t vs = vdupq_n_f32(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    vst1q_f32(a + i, vaddq_f32(vld1q_f32(a + i), vs));
  for (; i < n; ++i) a[i] += s;
}

void bias_rows_f32(float* a, const float* bias, std::size_t m, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    float* row = a + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4)
      vst1q_f32(row + j, vaddq_f32(vld1q_f32(row + j), vld1q_f32(bias + j)));
    for (; j < n; ++j) row[j] += bias[j];
  }
}

void relu_f32(const float* x, float* y, float* mask, std::size_t n) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  const float32x4_t one = vdupq_n_f32(1.0f);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t v = vld1q_f32(x + i);
    vst1q_f32(y + i, vmaxq_f32(v, zero));
    if (mask) {
      const uint32x4_t on = vcgtq_f32(v, zero);
      vst1q_f32(mask + i,
                vbslq_f32(on, one, zero));
    }
  }
  for (; i < n; ++i) {
    const bool on = x[i] > 0.0f;
    y[i] = on ? x[i] : 0.0f;
    if (mask) mask[i] = on ? 1.0f : 0.0f;
  }
}

#if defined(__aarch64__)
/// round(x / scale) clamped to [-127, 127] as packed floats (vrndnq = RNE,
/// matching std::nearbyint in the default FP environment).
inline float32x4_t quant_steps(float32x4_t x, float32x4_t vscale) {
  float32x4_t r = vrndnq_f32(vdivq_f32(x, vscale));
  r = vmaxq_f32(r, vdupq_n_f32(-127.0f));
  return vminq_f32(r, vdupq_n_f32(127.0f));
}
#endif

void quantize_i8(const float* x, float scale, std::int8_t* q, std::size_t n) {
  std::size_t i = 0;
#if defined(__aarch64__)
  const float32x4_t vscale = vdupq_n_f32(scale);
  for (; i + 8 <= n; i += 8) {
    const int32x4_t i0 = vcvtq_s32_f32(quant_steps(vld1q_f32(x + i), vscale));
    const int32x4_t i1 =
        vcvtq_s32_f32(quant_steps(vld1q_f32(x + i + 4), vscale));
    const int16x8_t p16 = vcombine_s16(vqmovn_s32(i0), vqmovn_s32(i1));
    vst1_s8(q + i, vqmovn_s16(p16));
  }
#endif
  for (; i < n; ++i) {
    const float r = std::nearbyint(x[i] / scale);
    q[i] = static_cast<std::int8_t>(std::clamp(r, -127.0f, 127.0f));
  }
}

void dequantize_i32(const std::int32_t* acc, float scale, float* out,
                    std::size_t n) {
  const float32x4_t vscale = vdupq_n_f32(scale);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    vst1q_f32(out + i, vmulq_f32(vcvtq_f32_s32(vld1q_s32(acc + i)), vscale));
  for (; i < n; ++i) out[i] = static_cast<float>(acc[i]) * scale;
}

void fake_quant_f32(float* x, float scale, std::size_t n) {
  std::size_t i = 0;
#if defined(__aarch64__)
  const float32x4_t vscale = vdupq_n_f32(scale);
  for (; i + 4 <= n; i += 4) {
    const float32x4_t r = quant_steps(vld1q_f32(x + i), vscale);
    vst1q_f32(x + i, vmulq_f32(r, vscale));
  }
#endif
  for (; i < n; ++i) {
    const float r = std::nearbyint(x[i] / scale);
    x[i] = std::clamp(r, -127.0f, 127.0f) * scale;
  }
}

const KernelTable kNeonTable = {
    Isa::kNeon,   "neon",  gemm_f32,       gemm_i8,        add_f32,
    sub_f32,      mul_f32, axpy_f32,       scale_f32,      add_scalar_f32,
    bias_rows_f32, relu_f32, quantize_i8,  dequantize_i32, fake_quant_f32,
    nullptr,  // fp16_round_f32: filled from the scalar table by the provider.
};

}  // namespace

const KernelTable* neon_table() {
  // The software fp16 round trip is already RNE-exact and branch-light;
  // reuse the scalar implementation instead of hand-rolling vcvt paths that
  // differ between ARMv7 and AArch64.
  static const KernelTable table = [] {
    KernelTable t = kNeonTable;
    t.fp16_round_f32 = scalar_table()->fp16_round_f32;
    return t;
  }();
  return &table;
}

}  // namespace clear::kernels::detail

#else  // !__ARM_NEON

namespace clear::kernels::detail {
const KernelTable* neon_table() { return nullptr; }
}  // namespace clear::kernels::detail

#endif
