#!/usr/bin/env python3
"""Benchmark-regression gate for the SIMD kernel library.

Runs `bench_kernels --json` (or reads a pre-recorded run) and compares it
against the committed baseline BENCH_kernels.json. The gate compares
*speedups relative to the scalar oracle* — a same-host, same-run ratio —
rather than absolute throughput, so the committed baseline stays meaningful
on machines of different absolute speed and under CI noise. A vector kernel
whose advantage over scalar shrinks by more than --tolerance (default 15%)
fails the gate; that is exactly the "someone quietly broke the AVX2 GEMM"
signal the perf trajectory exists to catch.

ISAs present in the baseline but not runnable on this host (e.g. an avx2
baseline checked on an ARM box) are skipped with a note, never failed: the
baseline records the union of platforms, the gate checks the intersection.
The sweep's built-in cross-ISA bit-identity check (the `bit_identical` JSON
field) is enforced unconditionally.

Usage:
  bench_regress.py --bench PATH/bench_kernels --baseline BENCH_kernels.json
  bench_regress.py --current run.json --baseline BENCH_kernels.json
Options:
  --tolerance FRAC   allowed fractional speedup loss (default 0.15)
  --update           rewrite the baseline from the current run and exit 0

Exit codes: 0 pass, 1 regression or malformed input, 2 usage error.
"""

import argparse
import json
import subprocess
import sys
import tempfile


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if data.get("schema") != "clear-bench-kernels-v1":
        sys.exit(f"error: {path}: not a clear-bench-kernels-v1 file")
    return data


def run_bench(bench):
    with tempfile.NamedTemporaryFile(mode="r", suffix=".json") as tmp:
        proc = subprocess.run([bench, f"--json={tmp.name}"],
                              stdout=subprocess.DEVNULL)
        if proc.returncode != 0:
            sys.exit(f"error: {bench} --json exited {proc.returncode}")
        return load(tmp.name)


def main():
    ap = argparse.ArgumentParser(allow_abbrev=False)
    ap.add_argument("--bench", help="bench_kernels binary to run")
    ap.add_argument("--current", help="pre-recorded current-run JSON")
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--tolerance", type=float, default=0.15)
    ap.add_argument("--update", action="store_true")
    args = ap.parse_args()
    if bool(args.bench) == bool(args.current):
        ap.error("exactly one of --bench / --current is required")

    current = run_bench(args.bench) if args.bench else load(args.current)

    if not current.get("bit_identical", False):
        print("FAIL: kernel outputs are not bit-identical across ISAs")
        return 1

    if args.update:
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(current, f, indent=2)
            f.write("\n")
        print(f"baseline {args.baseline} updated")
        return 0

    baseline = load(args.baseline)
    host_isas = set(current.get("isas", []))
    cur_speedups = current.get("speedups", {})

    failures, checked, skipped = [], 0, []
    for bench_name, by_isa in sorted(baseline.get("speedups", {}).items()):
        for isa, base in sorted(by_isa.items()):
            if isa not in host_isas:
                skipped.append(f"{bench_name}/{isa}")
                continue
            cur = cur_speedups.get(bench_name, {}).get(isa)
            if cur is None:
                failures.append(
                    f"{bench_name}/{isa}: missing from current run "
                    f"(baseline {base:.2f}x)")
                continue
            checked += 1
            floor = base * (1.0 - args.tolerance)
            verdict = "ok" if cur >= floor else "REGRESSION"
            print(f"{bench_name:24s} {isa:6s} baseline {base:6.2f}x  "
                  f"current {cur:6.2f}x  floor {floor:6.2f}x  {verdict}")
            if cur < floor:
                failures.append(
                    f"{bench_name}/{isa}: {cur:.2f}x < floor {floor:.2f}x "
                    f"(baseline {base:.2f}x, tolerance "
                    f"{args.tolerance:.0%})")

    if skipped:
        print(f"skipped (ISA not runnable here): {', '.join(skipped)}")
    if checked == 0:
        # A gate that silently checks nothing is worse than no gate.
        print("FAIL: no baseline entry was checkable on this host")
        return 1
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nPASS: {checked} speedup(s) within {args.tolerance:.0%} "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
