// Concurrency tests for the deterministic parallel runtime. These exercise
// the thread pool under contention and are the primary target of the TSAN
// build (tools/run_tsan_tests.sh); they intentionally mutate the process-wide
// thread count, which is why they live in their own binary.
#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace clear {
namespace {

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  constexpr std::size_t kChunks = 10000;
  std::vector<std::atomic<int>> hits(kChunks);
  pool.run(kChunks, [&](std::size_t chunk, std::size_t worker) {
    EXPECT_LT(chunk, kChunks);
    EXPECT_LE(worker, 3u);  // Workers 0..2 plus the caller (index 3).
    hits[chunk].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t c = 0; c < kChunks; ++c)
    ASSERT_EQ(hits[c].load(), 1) << "chunk " << c;
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  std::size_t count = 0;
  pool.run(100, [&](std::size_t, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    ++count;  // Safe: single-threaded by construction.
  });
  EXPECT_EQ(count, 100u);
}

TEST(ThreadPool, BackToBackJobsReuseWorkers) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.run(37, [&](std::size_t, std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 37);
  }
}

TEST(ParallelFor, TinyTasksAllComplete) {
  const NumThreadsGuard guard(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(0, kN, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, ChunkLayoutIndependentOfThreadCount) {
  const auto layout_at = [](std::size_t threads) {
    const NumThreadsGuard guard(threads);
    std::vector<std::pair<std::size_t, std::size_t>> chunks(8);
    parallel_for_chunks(3, 50, 7,
                        [&](std::size_t c, std::size_t lo, std::size_t hi) {
                          chunks[c] = {lo, hi};
                        });
    return chunks;
  };
  const auto serial = layout_at(1);
  EXPECT_EQ(serial[0], (std::pair<std::size_t, std::size_t>{3, 10}));
  EXPECT_EQ(serial[6], (std::pair<std::size_t, std::size_t>{45, 50}));
  EXPECT_EQ(layout_at(4), serial);
  EXPECT_EQ(layout_at(16), serial);
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  const NumThreadsGuard guard(4);
  EXPECT_THROW(
      parallel_for(0, 1000, 1,
                   [&](std::size_t lo, std::size_t) {
                     if (lo == 500) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must stay usable after a throwing region.
  std::atomic<int> count{0};
  parallel_for(0, 100, 1, [&](std::size_t lo, std::size_t hi) {
    count.fetch_add(static_cast<int>(hi - lo), std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelFor, ExceptionPropagatesInline) {
  const NumThreadsGuard guard(1);
  EXPECT_THROW(parallel_for(0, 10, 1,
                            [](std::size_t, std::size_t) {
                              throw std::runtime_error("serial boom");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, NestedCallsRunInline) {
  const NumThreadsGuard guard(4);
  std::atomic<int> inner_total{0};
  std::atomic<bool> saw_region_flag{false};
  parallel_for(0, 8, 1, [&](std::size_t, std::size_t) {
    if (in_parallel_region()) saw_region_flag.store(true);
    // Nested region: must execute inline on this thread without deadlock.
    int local = 0;
    parallel_for(0, 100, 10, [&](std::size_t lo, std::size_t hi) {
      local += static_cast<int>(hi - lo);  // Inline => no race on local.
    });
    inner_total.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(inner_total.load(), 8 * 100);
  EXPECT_TRUE(saw_region_flag.load());
  EXPECT_FALSE(in_parallel_region());
}

TEST(ParallelFor, SingleThreadMatchesPlainLoop) {
  const NumThreadsGuard guard(1);
  EXPECT_EQ(num_threads(), 1u);
  std::vector<std::size_t> order;
  parallel_for(0, 64, 5, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) order.push_back(i);
  });
  std::vector<std::size_t> expected(64);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);  // Inline execution is strictly ordered.
}

TEST(ParallelForWorkers, WorkerIndicesAreDenseAndScratchIsPrivate) {
  const NumThreadsGuard guard(4);
  ASSERT_EQ(parallel_workers(), 4u);
  std::vector<std::size_t> per_worker(parallel_workers(), 0);
  parallel_for_workers(0, 1000, 1,
                       [&](std::size_t worker, std::size_t lo, std::size_t hi) {
                         ASSERT_LT(worker, 4u);
                         per_worker[worker] += hi - lo;  // Disjoint slots.
                       });
  EXPECT_EQ(std::accumulate(per_worker.begin(), per_worker.end(),
                            std::size_t{0}),
            1000u);
}

TEST(ParallelReduce, ContendedStressIsBitIdenticalToSerial) {
  // An FP sum whose result depends on association: catches both data races
  // (under TSAN) and ordering bugs (value mismatch vs 1 thread).
  const auto noisy_sum = [] {
    return parallel_reduce(
        0, 100000, 64, 0.0,
        [](std::size_t lo, std::size_t hi) {
          double s = 0.0;
          for (std::size_t i = lo; i < hi; ++i)
            s += std::sin(static_cast<double>(i)) * 1e-3 + 1.0 / 3.0;
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  double serial = 0.0;
  {
    const NumThreadsGuard guard(1);
    serial = noisy_sum();
  }
  const NumThreadsGuard guard(8);
  for (int round = 0; round < 20; ++round) {
    const double parallel = noisy_sum();
    ASSERT_EQ(parallel, serial) << "round " << round;  // Bitwise equal.
  }
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  const NumThreadsGuard guard(4);
  const int r = parallel_reduce(
      5, 5, 1, 42, [](std::size_t, std::size_t) { return 0; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(r, 42);
}

TEST(NumThreads, SetAndGuardRestore) {
  const std::size_t before = num_threads();
  {
    const NumThreadsGuard guard(3);
    EXPECT_EQ(num_threads(), 3u);
    set_num_threads(0);  // 0 = all hardware threads.
    EXPECT_EQ(num_threads(), hardware_threads());
    set_num_threads(3);  // Restore what the guard saved against.
  }
  EXPECT_EQ(num_threads(), before);
  EXPECT_GE(hardware_threads(), 1u);
}

TEST(NumThreads, PoolSwapUnderUseIsSafe) {
  // Alternate thread counts between regions; each region must still run
  // every index exactly once.
  for (const std::size_t n : {1u, 4u, 2u, 8u, 1u, 3u}) {
    const NumThreadsGuard guard(n);
    std::vector<std::atomic<int>> hits(512);
    parallel_for(0, 512, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i)
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < 512; ++i) ASSERT_EQ(hits[i].load(), 1);
  }
}

}  // namespace
}  // namespace clear
