#include "common/obs.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace clear::obs {
namespace {

/// The registry is process-global; every test starts from a clean, enabled
/// registry and leaves it disabled and empty for the next one.
class Obs : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

TEST_F(Obs, CounterAccumulatesAndResets) {
  Counter& c = counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same object.
  EXPECT_EQ(&counter("test.counter"), &c);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(Obs, GaugeStoresLastWrite) {
  Gauge& g = gauge("test.gauge");
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST_F(Obs, HistogramBucketLayoutIsAPureFunctionOfTheValue) {
  // Bucket 0 = [0, 1); bucket b = [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(0.5), 0u);
  EXPECT_EQ(Histogram::bucket_index(1.0), 1u);
  EXPECT_EQ(Histogram::bucket_index(1.99), 1u);
  EXPECT_EQ(Histogram::bucket_index(2.0), 2u);
  EXPECT_EQ(Histogram::bucket_index(3.0), 2u);
  EXPECT_EQ(Histogram::bucket_index(4.0), 3u);
  EXPECT_DOUBLE_EQ(Histogram::bucket_limit(0), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_limit(3), 8.0);
  // Every value lands in exactly the bucket whose bounds contain it.
  for (double v : {0.0, 0.9, 1.0, 7.0, 100.0, 1e9}) {
    const std::size_t b = Histogram::bucket_index(v);
    EXPECT_LT(v, Histogram::bucket_limit(b)) << v;
    if (b > 0) {
      EXPECT_GE(v, Histogram::bucket_limit(b - 1)) << v;
    }
  }
}

TEST_F(Obs, HistogramBucketIndexPinsDegenerateValues) {
  // The mapping for zero/negative/non-finite inputs is part of the contract:
  // bucket 0 for anything below [1, inf) including NaN, the top bucket for
  // +inf. Before it was pinned, negatives and NaN fed std::ilogb garbage
  // (platform-dependent FP_ILOGBNAN / huge negative exponents) and the
  // clamp's result depended on the libm at hand.
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(Histogram::bucket_index(-0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-1.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-1e300), 0u);
  EXPECT_EQ(Histogram::bucket_index(-inf), 0u);
  EXPECT_EQ(Histogram::bucket_index(nan), 0u);
  EXPECT_EQ(Histogram::bucket_index(inf), Histogram::kBuckets - 1);
  // Values past the top bucket's limit saturate there too.
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kBuckets - 1);
}

TEST_F(Obs, HistogramRecordExcludesNonFiniteFromSummaryStats) {
  // Degenerate recordings (a 0/0 latency ratio, an infinite score) must be
  // *visible* — counted, bucketed — without destroying sum/min/max for every
  // later reader: one NaN would otherwise poison the mean forever.
  Histogram& h = histogram("test.hist.degenerate");
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  h.record(2.0);
  h.record(nan);
  h.record(inf);
  h.record(-inf);
  h.record(-3.0);
  EXPECT_EQ(h.count(), 5u);  // Every record counts.
  // NaN, -inf, and the negative land in bucket 0; +inf in the top bucket.
  EXPECT_EQ(h.bucket(0), 3u);
  EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.bucket(Histogram::bucket_index(2.0)), 1u);
  // Summary stats fold finite values only.
  EXPECT_DOUBLE_EQ(h.sum(), -1.0);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
  EXPECT_TRUE(std::isfinite(h.mean()));
}

TEST_F(Obs, HistogramSummaryStats) {
  Histogram& h = histogram("test.hist");
  h.record(1.0);
  h.record(3.0);
  h.record(8.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 12.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_EQ(h.bucket(Histogram::bucket_index(1.0)), 1u);
  EXPECT_EQ(h.bucket(Histogram::bucket_index(3.0)), 1u);
  EXPECT_EQ(h.bucket(Histogram::bucket_index(8.0)), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST_F(Obs, ScopedSpanAppendsTraceEventAndDurationHistogram) {
#ifdef CLEAR_OBS_DISABLED
  GTEST_SKIP() << "instrumentation compiled out (CLEAR_OBS=OFF)";
#else
  {
    CLEAR_OBS_SPAN("unit-span");
    counter("test.inside").add();  // Any work; duration may round to 0us.
  }
  const std::vector<TraceEvent> events = trace_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit-span");
  EXPECT_GE(events[0].dur_us, 0u);
  EXPECT_EQ(histogram("span.unit-span_us").count(), 1u);
#endif
}

TEST_F(Obs, DisabledPathRecordsNothing) {
  set_enabled(false);
  {
    CLEAR_OBS_SPAN("ghost");
    CLEAR_OBS_COUNT("ghost.counter", 5);
    CLEAR_OBS_GAUGE("ghost.gauge", 1.0);
    CLEAR_OBS_RECORD("ghost.hist", 1.0);
  }
#ifndef CLEAR_OBS_DISABLED
  EXPECT_TRUE(trace_events().empty());
  EXPECT_EQ(counter("ghost.counter").value(), 0u);
  EXPECT_DOUBLE_EQ(gauge("ghost.gauge").value(), 0.0);
  EXPECT_EQ(histogram("ghost.hist").count(), 0u);
#endif
}

TEST_F(Obs, SpanOpenAcrossDisableStillCompletesCleanly) {
  // A span constructed while enabled must close without crashing even if
  // recording is switched off before it ends; it was begun, so it records.
  {
    CLEAR_OBS_SPAN("straddler");
    set_enabled(false);
  }
  set_enabled(true);
  // A span constructed while disabled records nothing even if recording is
  // re-enabled before it ends.
  set_enabled(false);
  {
    CLEAR_OBS_SPAN("latecomer");
    set_enabled(true);
  }
  const std::vector<TraceEvent> events = trace_events();
  for (const TraceEvent& e : events) EXPECT_NE(e.name, "latecomer");
}

TEST_F(Obs, ResetClearsValuesButKeepsReferencesValid) {
  Counter& c = counter("test.persistent");
  c.add(7);
  {
    CLEAR_OBS_SPAN("reset-span");
  }
  reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_TRUE(trace_events().empty());
  EXPECT_EQ(dropped_trace_events(), 0u);
  c.add(1);  // The reference survives reset().
  EXPECT_EQ(counter("test.persistent").value(), 1u);
}

TEST_F(Obs, SnapshotJsonContainsAllSections) {
  counter("snap.counter").add(3);
  gauge("snap.gauge").set(1.5);
  histogram("snap.hist").record(2.0);
  {
    CLEAR_OBS_SPAN("snap-span");
  }
  const std::string json = snapshot_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"snap.counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"snap.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"snap.hist\""), std::string::npos);
#ifndef CLEAR_OBS_DISABLED
  EXPECT_NE(json.find("\"snap-span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
#endif
  EXPECT_NE(json.find("\"droppedTraceEvents\""), std::string::npos);
}

TEST_F(Obs, WriteSnapshotRoundTrips) {
  counter("file.counter").add(9);
  const std::string path = ::testing::TempDir() + "clear_obs_snapshot.json";
  write_snapshot(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), snapshot_json());
  std::remove(path.c_str());
}

TEST_F(Obs, NowUsIsMonotonic) {
  const std::uint64_t a = now_us();
  const std::uint64_t b = now_us();
  EXPECT_LE(a, b);
}

// Registered names survive reset() (values zero, names stay), so snapshots
// taken mid-suite carry earlier tests' entries — look up by name.
template <typename Entries>
const auto* find_entry(const Entries& entries, const std::string& name) {
  for (const auto& e : entries)
    if (e.first == name) return &e.second;
  return static_cast<const typename Entries::value_type::second_type*>(
      nullptr);
}

TEST_F(Obs, ParseSnapshotRecoversEveryValue) {
  counter("parse.requests").add(42);
  gauge("parse.depth").set(-2.25);
  Histogram& h = histogram("parse.latency");
  h.record(0.5);
  h.record(3.0);
  h.record(1000.0);
  const ParsedSnapshot snap = parse_snapshot(snapshot_json());

  const auto* c = find_entry(snap.counters, "parse.requests");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(*c, 42u);
  const auto* g = find_entry(snap.gauges, "parse.depth");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(*g, -2.25);
  const auto* hp = find_entry(snap.histograms, "parse.latency");
  ASSERT_NE(hp, nullptr);
  const HistogramSnapshot& hs = *hp;
  EXPECT_EQ(hs.count, 3u);
  EXPECT_DOUBLE_EQ(hs.sum, 1003.5);
  EXPECT_DOUBLE_EQ(hs.min, 0.5);
  EXPECT_DOUBLE_EQ(hs.max, 1000.0);
  // Bucket counts come back at the exact fixed-layout indices.
  ASSERT_GT(hs.buckets.size(), Histogram::bucket_index(1000.0));
  EXPECT_EQ(hs.buckets[Histogram::bucket_index(0.5)], 1u);
  EXPECT_EQ(hs.buckets[Histogram::bucket_index(3.0)], 1u);
  EXPECT_EQ(hs.buckets[Histogram::bucket_index(1000.0)], 1u);
}

TEST_F(Obs, WithPrefixRemapsEveryName) {
  counter("shard.requests").add(1);
  gauge("shard.depth").set(2.0);
  histogram("shard.latency").record(4.0);
  const ParsedSnapshot snap =
      with_prefix(parse_snapshot(snapshot_json()), "coord.");
  EXPECT_NE(find_entry(snap.counters, "coord.shard.requests"), nullptr);
  EXPECT_NE(find_entry(snap.gauges, "coord.shard.depth"), nullptr);
  EXPECT_NE(find_entry(snap.histograms, "coord.shard.latency"), nullptr);
  // Every name is remapped — nothing escapes with its bare name.
  EXPECT_EQ(find_entry(snap.counters, "shard.requests"), nullptr);
  for (const auto& [name, value] : snap.counters)
    EXPECT_EQ(name.rfind("coord.", 0), 0u) << name;
}

TEST_F(Obs, MergedHistogramMatchesSingleProcessOracle) {
  // Two "shard processes" record disjoint streams; folding their exported
  // snapshots must equal one process recording both streams — per bucket,
  // not approximately. Exact binary fractions keep the sums order-free.
  const std::vector<double> stream_a = {0.25, 1.5, 6.0, 6.5, 100.0};
  const std::vector<double> stream_b = {0.75, 2.0, 6.25, 4096.0};
  for (double v : stream_a) histogram("wire.latency").record(v);
  const std::string json_a = metrics_json();
  reset();
  for (double v : stream_b) histogram("wire.latency").record(v);
  const std::string json_b = metrics_json();
  reset();

  merge_snapshot(with_prefix(parse_snapshot(json_a), "coord."));
  merge_snapshot(with_prefix(parse_snapshot(json_b), "coord."));
  Histogram& merged = histogram("coord.wire.latency");
  Histogram& oracle = histogram("oracle.latency");
  for (double v : stream_a) oracle.record(v);
  for (double v : stream_b) oracle.record(v);

  EXPECT_EQ(merged.count(), oracle.count());
  EXPECT_DOUBLE_EQ(merged.sum(), oracle.sum());
  EXPECT_DOUBLE_EQ(merged.min(), oracle.min());
  EXPECT_DOUBLE_EQ(merged.max(), oracle.max());
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
    EXPECT_EQ(merged.bucket(b), oracle.bucket(b)) << "bucket " << b;
}

TEST_F(Obs, MergeSnapshotFoldsCountersAndGauges) {
  counter("fold.requests").add(5);
  gauge("fold.depth").set(1.0);
  const ParsedSnapshot snap = parse_snapshot(metrics_json());
  // Counters add onto what is already there; gauges take the last write.
  gauge("fold.depth").set(9.0);
  merge_snapshot(snap);
  EXPECT_EQ(counter("fold.requests").value(), 10u);
  EXPECT_DOUBLE_EQ(gauge("fold.depth").value(), 1.0);
}

TEST_F(Obs, ParseSnapshotRejectsForeignBucketBounds) {
  // A bound that is not a power of two cannot map onto the fixed layout:
  // folding it anywhere would misattribute the counts.
  const std::string foreign =
      "{\"counters\": {}, \"gauges\": {}, \"histograms\": {"
      "\"h\": {\"count\": 1, \"sum\": 3.0, \"min\": 3.0, \"max\": 3.0, "
      "\"buckets\": [{\"le\": 3, \"count\": 1}]}}}";
  EXPECT_THROW(parse_snapshot(foreign), Error);
}

}  // namespace
}  // namespace clear::obs
