#include "nn/loss.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace clear::nn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::size_t>& labels) {
  CLEAR_CHECK_MSG(logits.rank() == 2, "logits must be [N, C]");
  const std::size_t n = logits.extent(0);
  const std::size_t c = logits.extent(1);
  CLEAR_CHECK_MSG(labels.size() == n, "label count mismatch");

  LossResult result;
  result.probabilities = ops::softmax_rows(logits);
  result.grad_logits = result.probabilities;
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    CLEAR_CHECK_MSG(labels[i] < c, "label out of range");
    const float p = result.probabilities.at2(i, labels[i]);
    total -= std::log(std::max(p, 1e-12f));
    result.grad_logits.at2(i, labels[i]) -= 1.0f;
  }
  for (float& g : result.grad_logits.flat()) g *= inv_n;
  result.loss = total / static_cast<double>(n);
  return result;
}

}  // namespace clear::nn
