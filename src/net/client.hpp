// BlockingClient: a simple synchronous peer for the wire protocol.
//
// Used by tests, the loopback harness, and the CLI's client paths. IO goes
// through FaultedStream, so the deterministic network-fault knobs apply to
// client traffic too — a test can arm a drop and watch its own connection
// die mid-frame. Decode errors on received frames throw clear::Error
// (a *client* receiving garbage from our own server is a bug, not an input);
// adversarial decoding is exercised directly on FrameDecoder in the tests.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace clear::net {

/// Deadlines for the client's blocking operations. 0 means no deadline
/// (block indefinitely — the historical behavior, right for tests that own
/// both ends of the wire). Exceeding a deadline throws clear::Error with an
/// addressed "net.timeout: ..." message, so callers talking to a server
/// that may be dead fail fast instead of hanging.
struct ClientDeadlines {
  int connect_ms = 0;  ///< Connection-establishment deadline.
  int io_ms = 0;       ///< Per-operation send/recv progress deadline.
};

class BlockingClient {
 public:
  /// Connects immediately (throws clear::Error on failure, including a
  /// connect deadline miss). `stream_id` keys this connection's fault
  /// decisions.
  explicit BlockingClient(const Endpoint& endpoint,
                          std::uint64_t stream_id = 1,
                          ClientDeadlines deadlines = {});
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  void send_request(const WireRequest& request);
  void send_drain();
  void send_shutdown();
  /// Raw bytes, unframed — for adversarial wire tests.
  void send_bytes(const void* data, std::size_t n);

  /// Block until the next complete frame. False on connection close;
  /// throws the addressed net.timeout error when io_ms elapses without the
  /// socket turning readable.
  bool recv_frame(Frame& out);
  /// Convenience: next frame must be a kResponse / kDrainAck.
  bool recv_response(WireResponse& out);
  bool recv_drain_ack(WireDrainAck& out);

  void close();
  bool open() const { return stream_.open(); }
  /// True when the armed net-drop fault severed this client's connection.
  bool dropped() const { return stream_.dropped(); }

 private:
  FaultedStream stream_;
  FrameDecoder decoder_;
  ClientDeadlines deadlines_;
};

}  // namespace clear::net
