#!/bin/sh
# Chaos soak: SIGKILL the wire server mid-load, restart with --recover, and
# prove that durability holds:
#
#   Leg A (kill between phases, bit-identity):
#     golden    — one uninterrupted server answers requests [0, N) and the
#                 deterministic response lines go to golden.txt.
#     chaos     — a journaled server answers [0, N/2), takes SIGKILL -9,
#                 restarts with --recover (at a different --threads count),
#                 and answers [N/2, N) via loadgen --start-index. The
#                 recovery report must be CLEAN with zero PERSONALIZED loss,
#                 and both phases' response lines must be byte-identical to
#                 the golden file's halves.
#
#   Leg B (kill mid-flight, zero acknowledged loss + graceful drain):
#     SIGKILL lands while requests are in flight. Unanswered requests may
#     drop (the loadgen counts them; it never hangs), but every fine-tune
#     the journal acknowledged must re-attach (P/E equal in the report).
#     The recovered server then takes SIGTERM and must drain gracefully:
#     exit 0, final compacting snapshot on disk, journal truncated.
#
#   Leg C (kill mid-adaptation, shadow bookkeeping survives):
#     The drift monitor is armed and the loadgen shifts every user's maps
#     mid-stream, so sessions are walking RE_ASSESSING/SHADOWING when the
#     SIGKILL lands between phases. Recovery must be CLEAN, the report's
#     adaptation line must show sessions restored mid-machine, and both
#     phases' responses must be byte-identical to an uninterrupted
#     drift-enabled golden run — the crash may not perturb a single drift
#     decision.
#
#   Shard leg (--shard; ctest `shard_chaos`) — the fleet version of the
#   same story. A 3-shard fleet behind `clear-cli coord` must produce
#   responses byte-identical to the single-process golden run, twice over:
#     run 1 — full stream with shard 1 decommissioned mid-load (drain,
#             per-session export/import handoff, queued frames flushed).
#     run 2 — SIGKILL -9 the shard that owns user 0 between phases; the
#             coordinator must heal by adopting the dead shard's journal
#             onto a survivor (zero PERSONALIZED loss), and phase 2 via
#             --start-index must still match the golden file's tail.
#
# Usage: run_chaos_soak.sh <path-to-clear-cli> [--quick] [--shard]
#   --quick  shorter stream (the ctest registrations use this)
#   --shard  run the 3-shard fleet leg instead of legs A/B/C
set -eu

CLI="$1"
shift

TOTAL=400
RATE=400
LEGS=base
for arg in "$@"; do
  case "$arg" in
    --quick) TOTAL=160 ;;
    --shard) LEGS=shard ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done
HALF=$((TOTAL / 2))

# One connection keeps the wire ordering deterministic (multi-connection
# interleaving is a socket-layer race by design); 4 users with a labelled
# majority personalizes every session well inside phase 1.
GEN="--connections=1 --rate=$RATE --users=4 --label-fraction=0.6 --seed=9"
SLICE="--volunteers=6 --trials=4 --epochs=1 --ft-epochs=1 --data-seed=42"

WORK="$(mktemp -d)"
SERVER_PID=""
FLEET_PIDS=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  for p in $FLEET_PIDS; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT
cd "$WORK"

# Start a server in the background and wait for its ephemeral port.
# start_server <log> <port-file> [extra flags...]
start_server() {
  log="$1"; pf="$2"; shift 2
  rm -f "$pf"
  "$CLI" serve $SLICE --listen=127.0.0.1:0 --port-file="$pf" "$@" \
    >"$log" 2>&1 &
  SERVER_PID=$!
  i=0
  while [ ! -s "$pf" ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
      echo "server never published its port; log tail:" >&2
      tail -20 "$log" >&2
      exit 1
    fi
    kill -0 "$SERVER_PID" 2>/dev/null || {
      echo "server exited before listening; log tail:" >&2
      tail -20 "$log" >&2
      exit 1
    }
    sleep 0.2
  done
  PORT="$(cat "$pf")"
}

# ---------------------------------------------------------------------------
echo "== golden run: $TOTAL requests, uninterrupted, --threads=1 =="
start_server golden.log golden.port --threads=1
"$CLI" loadgen --connect=127.0.0.1:"$PORT" $GEN --requests=$TOTAL \
  --responses=golden.txt --shutdown-after >golden_gen.log 2>&1
wait "$SERVER_PID"
SERVER_PID=""
[ "$(wc -l <golden.txt)" -eq "$TOTAL" ] || {
  echo "golden run lost responses ($(wc -l <golden.txt)/$TOTAL):" >&2
  tail -5 golden_gen.log >&2
  exit 1
}

# ---------------------------------------------------------------------------
if [ "$LEGS" = shard ]; then
  # start_shard <prefix> <idx> <journal-dir> — one fleet shard, tracked for
  # cleanup; publishes <prefix><idx>_PID / <prefix><idx>_PORT.
  start_shard() {
    sprefix="$1"; sidx="$2"; sjd="$3"
    # --threads=2 on every shard vs the golden's --threads=1: fleet
    # bit-identity must hold at any thread count.
    start_server "${sprefix}${sidx}.log" "${sprefix}${sidx}.port" \
      --journal-dir="$sjd" --threads=2
    eval "${sprefix}${sidx}_PID=$SERVER_PID"
    eval "${sprefix}${sidx}_PORT=$PORT"
    FLEET_PIDS="$FLEET_PIDS $SERVER_PID"
    SERVER_PID=""
  }

  # start_coord <log> <port-file> [flags...] — wait for the client port.
  start_coord() {
    clog="$1"; cpf="$2"; shift 2
    rm -f "$cpf"
    "$CLI" coord --listen=127.0.0.1:0 --port-file="$cpf" "$@" \
      >"$clog" 2>&1 &
    COORD_PID=$!
    FLEET_PIDS="$FLEET_PIDS $COORD_PID"
    i=0
    while [ ! -s "$cpf" ]; do
      i=$((i + 1))
      if [ "$i" -gt 300 ]; then
        echo "coordinator never published its port; log tail:" >&2
        tail -20 "$clog" >&2
        exit 1
      fi
      kill -0 "$COORD_PID" 2>/dev/null || {
        echo "coordinator exited before listening; log tail:" >&2
        tail -20 "$clog" >&2
        exit 1
      }
      sleep 0.2
    done
    CPORT="$(cat "$cpf")"
  }

  # -------------------------------------------------------------------------
  echo "== shard run 1: 3-shard identity with a mid-stream decommission =="
  start_shard a 0 da0
  start_shard a 1 da1
  start_shard a 2 da2
  start_coord coord1.log c1.port \
    --shards=127.0.0.1:$a0_PORT,127.0.0.1:$a1_PORT,127.0.0.1:$a2_PORT \
    --shard-journals=da0,da1,da2 \
    --decommission-shard=1 --decommission-after=$((TOTAL / 4))
  "$CLI" loadgen --connect=127.0.0.1:"$CPORT" $GEN --requests=$TOTAL \
    --responses=fleet.txt --shutdown-after >fleet_gen.log 2>&1
  wait "$COORD_PID" || {
    echo "coordinator exited nonzero; log tail:" >&2
    tail -20 coord1.log >&2
    exit 1
  }
  for p in $a0_PID $a1_PID $a2_PID; do wait "$p" 2>/dev/null || true; done
  FLEET_PIDS=""
  cmp golden.txt fleet.txt || {
    echo "fleet responses diverge from the single-process golden run" >&2
    diff golden.txt fleet.txt | head -10 >&2
    exit 1
  }
  DECOM="$(sed -n 's/coord: decommissioned shard=1 migrated=\([0-9][0-9]*\) failed=\([0-9][0-9]*\).*/\1 \2/p' coord1.log)"
  M="${DECOM% *}"; F="${DECOM#* }"
  [ -n "$M" ] && [ "$M" -gt 0 ] && [ "$F" -eq 0 ] || {
    echo "decommission did not migrate cleanly (migrated=${M:-?} failed=${F:-?}):" >&2
    grep "coord: decommission" coord1.log >&2 || tail -20 coord1.log >&2
    exit 1
  }
  echo "   bit-identical through the coordinator; $M sessions migrated"

  # -------------------------------------------------------------------------
  echo "== shard run 2: SIGKILL the owner of user 0, heal from its journal =="
  start_shard b 0 db0
  start_shard b 1 db1
  start_shard b 2 db2
  start_coord coord2.log c2.port \
    --shards=127.0.0.1:$b0_PORT,127.0.0.1:$b1_PORT,127.0.0.1:$b2_PORT \
    --shard-journals=db0,db1,db2
  "$CLI" loadgen --connect=127.0.0.1:"$CPORT" $GEN --requests=$HALF \
    --responses=shard_phase1.txt >shard_phase1_gen.log 2>&1

  VICTIM="$(sed -n 's/coord: placement user=0 shard=\([0-9][0-9]*\).*/\1/p' coord2.log | head -1)"
  [ -n "$VICTIM" ] || {
    echo "coordinator never placed user 0:" >&2
    tail -20 coord2.log >&2
    exit 1
  }
  eval "VICTIM_PID=\$b${VICTIM}_PID"
  kill -9 "$VICTIM_PID"
  wait "$VICTIM_PID" 2>/dev/null || true
  # The heartbeat must notice the death and adopt the dead shard's journal
  # onto a survivor before phase 2 traffic lands.
  i=0
  while ! grep -q "coord: healed shard=$VICTIM" coord2.log; do
    i=$((i + 1))
    if [ "$i" -gt 150 ]; then
      echo "coordinator never healed shard $VICTIM; log tail:" >&2
      tail -20 coord2.log >&2
      exit 1
    fi
    sleep 0.2
  done
  HEAL="$(sed -n "s/coord: healed shard=$VICTIM survivor=[0-9]* sessions=\([0-9][0-9]*\) personalized=\([0-9][0-9]*\) failed=\([0-9][0-9]*\).*/\1 \2 \3/p" coord2.log)"
  SESS="$(echo "$HEAL" | cut -d' ' -f1)"
  PERS="$(echo "$HEAL" | cut -d' ' -f2)"
  HFAIL="$(echo "$HEAL" | cut -d' ' -f3)"
  [ -n "$SESS" ] && [ "$SESS" -gt 0 ] && [ "$PERS" -gt 0 ] && [ "$HFAIL" -eq 0 ] || {
    echo "heal lost state (sessions=${SESS:-?} personalized=${PERS:-?} failed=${HFAIL:-?}):" >&2
    grep "coord: healed" coord2.log >&2
    exit 1
  }
  echo "   healed shard $VICTIM: $SESS sessions, $PERS personalized, 0 failed"

  "$CLI" loadgen --connect=127.0.0.1:"$CPORT" $GEN --requests=$HALF \
    --start-index=$HALF --responses=shard_phase2.txt --shutdown-after \
    >shard_phase2_gen.log 2>&1
  wait "$COORD_PID" || {
    echo "coordinator exited nonzero after the heal; log tail:" >&2
    tail -20 coord2.log >&2
    exit 1
  }
  for p in $b0_PID $b1_PID $b2_PID; do wait "$p" 2>/dev/null || true; done
  FLEET_PIDS=""

  head -n "$HALF" golden.txt >shard_golden_head.txt
  tail -n "$HALF" golden.txt >shard_golden_tail.txt
  cmp shard_golden_head.txt shard_phase1.txt || {
    echo "pre-kill fleet responses diverge from the golden run" >&2
    diff shard_golden_head.txt shard_phase1.txt | head -10 >&2
    exit 1
  }
  cmp shard_golden_tail.txt shard_phase2.txt || {
    echo "post-heal fleet responses diverge from the golden run" >&2
    diff shard_golden_tail.txt shard_phase2.txt | head -10 >&2
    exit 1
  }
  echo "   bit-identical: $TOTAL/$TOTAL responses match across the shard kill"

  echo "chaos soak OK"
  exit 0
fi

# ---------------------------------------------------------------------------
echo "== leg A: SIGKILL between phases, recover, bit-identity =="
start_server chaos1.log chaos1.port --journal-dir=jd
"$CLI" loadgen --connect=127.0.0.1:"$PORT" $GEN --requests=$HALF \
  --responses=phase1.txt >phase1_gen.log 2>&1
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
[ -s jd/journal.log ] || { echo "no journal survived the kill" >&2; exit 1; }

# Recover at a different thread count than the golden run: replay and
# post-recovery serving must be bit-identical at any --threads.
start_server chaos2.log chaos2.port --journal-dir=jd --recover --threads=4
grep -q "result: CLEAN" chaos2.log || {
  echo "recovery was not CLEAN:" >&2
  grep -A0 -B3 "result:" chaos2.log >&2 || cat chaos2.log >&2
  exit 1
}
REATTACH="$(sed -n 's/.* \([0-9][0-9]*\)\/\([0-9][0-9]*\) personalized re-attached.*/\1 \2/p' chaos2.log)"
P="${REATTACH% *}"; E="${REATTACH#* }"
[ -n "$P" ] && [ "$P" = "$E" ] && [ "$P" -gt 0 ] || {
  echo "PERSONALIZED state lost across the kill (re-attached $P of $E):" >&2
  grep "personalized" chaos2.log >&2
  exit 1
}
grep -q " 0 fell back" chaos2.log || {
  echo "recovery silently fell back sessions:" >&2
  grep "fell back" chaos2.log >&2
  exit 1
}

"$CLI" loadgen --connect=127.0.0.1:"$PORT" $GEN --requests=$HALF \
  --start-index=$HALF --responses=phase2.txt --shutdown-after \
  >phase2_gen.log 2>&1
wait "$SERVER_PID"
SERVER_PID=""

head -n "$HALF" golden.txt >golden_head.txt
tail -n "$HALF" golden.txt >golden_tail.txt
cmp golden_head.txt phase1.txt || {
  echo "phase-1 responses diverge from the golden run" >&2
  diff golden_head.txt phase1.txt | head -10 >&2
  exit 1
}
cmp golden_tail.txt phase2.txt || {
  echo "post-recovery responses diverge from the golden run" >&2
  diff golden_tail.txt phase2.txt | head -10 >&2
  exit 1
}
echo "   bit-identical: $TOTAL/$TOTAL responses match the golden run"

# ---------------------------------------------------------------------------
echo "== leg B: SIGKILL mid-flight, recover, graceful SIGTERM drain =="
start_server chaosb1.log chaosb1.port --journal-dir=jdb
( "$CLI" loadgen --connect=127.0.0.1:"$PORT" $GEN --requests=$TOTAL \
    --timeout=10 >phaseb_gen.log 2>&1 || true ) &
GEN_PID=$!
sleep 0.4
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
# The generator must terminate on its own (dead connections, then timeout) —
# a hang here is exactly the bug the client deadlines exist to prevent.
wait "$GEN_PID"
[ -s jdb/journal.log ] || { echo "no journal survived the kill" >&2; exit 1; }

start_server chaosb2.log chaosb2.port --journal-dir=jdb --recover
REATTACH="$(sed -n 's/.* \([0-9][0-9]*\)\/\([0-9][0-9]*\) personalized re-attached.*/\1 \2/p' chaosb2.log)"
P="${REATTACH% *}"; E="${REATTACH#* }"
[ -n "$P" ] && [ "$P" = "$E" ] || {
  echo "acknowledged PERSONALIZED state lost mid-flight ($P of $E):" >&2
  grep "personalized" chaosb2.log >&2
  exit 1
}
# Post-recovery liveness: a short stream is fully answered.
"$CLI" loadgen --connect=127.0.0.1:"$PORT" $GEN --requests=40 \
  --start-index=$TOTAL --json=liveness.json >liveness_gen.log 2>&1
jq -e '.received == 40 and .dropped == 0' liveness.json >/dev/null || {
  echo "recovered server is not fully live:" >&2
  cat liveness.json >&2
  exit 1
}

# Graceful drain: SIGTERM must flush, snapshot, and exit 0 with a compacted
# journal (16-byte header only) plus a loadable final snapshot.
kill -TERM "$SERVER_PID"
RC=0
wait "$SERVER_PID" || RC=$?
SERVER_PID=""
[ "$RC" -eq 0 ] || { echo "SIGTERM drain exited $RC" >&2; tail -5 chaosb2.log >&2; exit 1; }
[ -s jdb/snapshot.snap ] || { echo "no final snapshot after SIGTERM" >&2; exit 1; }
[ "$(wc -c <jdb/journal.log)" -eq 16 ] || {
  echo "journal not compacted by the final snapshot ($(wc -c <jdb/journal.log) bytes)" >&2
  exit 1
}

# ---------------------------------------------------------------------------
echo "== leg C: SIGKILL mid-adaptation, recover, bit-identity =="
# An eager margin plus a mid-stream shift for every user keeps sessions
# cycling through RE_ASSESSING/SHADOWING for the rest of the run, so the
# between-phases kill lands with the machine engaged. Recovery must use the
# same drift knobs as the crashed process (docs/OPERATIONS.md).
DRIFT_SRV="--drift-after=3 --drift-ratio=0.9 --reassess-windows=4 --shadow-windows=4"
DRIFT_GEN="--drift-users=4 --drift-after-index=$((TOTAL / 4)) --drift-shift=2.0"

start_server driftgolden.log driftgolden.port --threads=1 $DRIFT_SRV
"$CLI" loadgen --connect=127.0.0.1:"$PORT" $GEN $DRIFT_GEN --requests=$TOTAL \
  --responses=driftgolden.txt --shutdown-after >driftgolden_gen.log 2>&1
wait "$SERVER_PID"
SERVER_PID=""
[ "$(wc -l <driftgolden.txt)" -eq "$TOTAL" ] || {
  echo "drift golden run lost responses ($(wc -l <driftgolden.txt)/$TOTAL)" >&2
  exit 1
}
grep -q "drift: ticks=" driftgolden.log || {
  echo "drift golden run never engaged the monitor:" >&2
  tail -5 driftgolden.log >&2
  exit 1
}

start_server chaosc1.log chaosc1.port --journal-dir=jdc $DRIFT_SRV
"$CLI" loadgen --connect=127.0.0.1:"$PORT" $GEN $DRIFT_GEN --requests=$HALF \
  --responses=phasec1.txt >phasec1_gen.log 2>&1
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
[ -s jdc/journal.log ] || { echo "no journal survived the kill" >&2; exit 1; }

start_server chaosc2.log chaosc2.port --journal-dir=jdc --recover \
  --threads=4 $DRIFT_SRV
grep -q "result: CLEAN" chaosc2.log || {
  echo "mid-adaptation recovery was not CLEAN:" >&2
  grep -B4 "result:" chaosc2.log >&2 || cat chaosc2.log >&2
  exit 1
}
ADAPT="$(sed -n 's/.*adaptation: \([0-9][0-9]*\) re-assessing, \([0-9][0-9]*\) shadowing restored.*/\1 \2/p' chaosc2.log)"
R="${ADAPT% *}"; S="${ADAPT#* }"
[ -n "$R" ] && [ $((R + S)) -gt 0 ] || {
  echo "kill did not land mid-adaptation (re-assessing=${R:-?} shadowing=${S:-?}):" >&2
  grep "adaptation" chaosc2.log >&2 || cat chaosc2.log >&2
  exit 1
}
echo "   restored mid-machine: $R re-assessing, $S shadowing"

"$CLI" loadgen --connect=127.0.0.1:"$PORT" $GEN $DRIFT_GEN --requests=$HALF \
  --start-index=$HALF --responses=phasec2.txt --shutdown-after \
  >phasec2_gen.log 2>&1
wait "$SERVER_PID"
SERVER_PID=""

head -n "$HALF" driftgolden.txt >driftgolden_head.txt
tail -n "$HALF" driftgolden.txt >driftgolden_tail.txt
cmp driftgolden_head.txt phasec1.txt || {
  echo "pre-kill drift responses diverge from the golden run" >&2
  diff driftgolden_head.txt phasec1.txt | head -10 >&2
  exit 1
}
cmp driftgolden_tail.txt phasec2.txt || {
  echo "post-recovery drift responses diverge from the golden run" >&2
  diff driftgolden_tail.txt phasec2.txt | head -10 >&2
  exit 1
}
echo "   bit-identical: $TOTAL/$TOTAL drift-enabled responses match the golden run"

echo "chaos soak OK"
