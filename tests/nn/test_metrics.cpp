#include "nn/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace clear::nn {
namespace {

TEST(Metrics, PerfectPrediction) {
  const BinaryMetrics m = binary_metrics({1, 0, 1, 0}, {1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_EQ(m.tp, 2u);
  EXPECT_EQ(m.tn, 2u);
}

TEST(Metrics, AllWrong) {
  const BinaryMetrics m = binary_metrics({0, 1}, {1, 0});
  EXPECT_DOUBLE_EQ(m.accuracy, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
  EXPECT_EQ(m.fp, 1u);
  EXPECT_EQ(m.fn, 1u);
}

TEST(Metrics, KnownConfusionMatrix) {
  // preds:  1 1 1 0 0 0 0 1
  // labels: 1 1 0 0 0 1 1 0
  const BinaryMetrics m =
      binary_metrics({1, 1, 1, 0, 0, 0, 0, 1}, {1, 1, 0, 0, 0, 1, 1, 0});
  EXPECT_EQ(m.tp, 2u);
  EXPECT_EQ(m.fp, 2u);
  EXPECT_EQ(m.fn, 2u);
  EXPECT_EQ(m.tn, 2u);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.5);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.f1, 0.5);
}

TEST(Metrics, F1IsHarmonicMean) {
  // precision 1.0 (1 TP, 0 FP), recall 0.5 (1 TP, 1 FN).
  const BinaryMetrics m = binary_metrics({1, 0, 0}, {1, 1, 0});
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.f1, 2.0 * 1.0 * 0.5 / 1.5);
}

TEST(Metrics, NoPositivePredictionsZeroPrecision) {
  const BinaryMetrics m = binary_metrics({0, 0}, {1, 0});
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(Metrics, CustomPositiveClass) {
  const BinaryMetrics m = binary_metrics({2, 0, 2}, {2, 2, 0}, /*positive=*/2);
  EXPECT_EQ(m.tp, 1u);
  EXPECT_EQ(m.fp, 1u);
  EXPECT_EQ(m.fn, 1u);
}

TEST(Metrics, Validation) {
  EXPECT_THROW(binary_metrics({1}, {1, 0}), Error);
  EXPECT_THROW(binary_metrics({}, {}), Error);
}

TEST(MeanStd, KnownValues) {
  const MeanStd ms = mean_std({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(ms.mean, 4.0);
  EXPECT_DOUBLE_EQ(ms.stddev, 2.0);  // Sample stddev.
}

TEST(MeanStd, SingleValueHasZeroStd) {
  const MeanStd ms = mean_std({5.0});
  EXPECT_DOUBLE_EQ(ms.mean, 5.0);
  EXPECT_DOUBLE_EQ(ms.stddev, 0.0);
}

}  // namespace
}  // namespace clear::nn
