#include "nn/metrics.hpp"

#include "common/error.hpp"
#include "common/stats.hpp"

namespace clear::nn {

BinaryMetrics binary_metrics(const std::vector<std::size_t>& predictions,
                             const std::vector<std::size_t>& labels,
                             std::size_t positive) {
  CLEAR_CHECK_MSG(predictions.size() == labels.size(),
                  "prediction/label count mismatch");
  CLEAR_CHECK_MSG(!predictions.empty(), "empty prediction set");
  BinaryMetrics m;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const bool pred_pos = predictions[i] == positive;
    const bool is_pos = labels[i] == positive;
    if (pred_pos && is_pos) ++m.tp;
    else if (pred_pos && !is_pos) ++m.fp;
    else if (!pred_pos && is_pos) ++m.fn;
    else ++m.tn;
  }
  const double n = static_cast<double>(m.count());
  m.accuracy = static_cast<double>(m.tp + m.tn) / n;
  m.precision = m.tp + m.fp > 0
                    ? static_cast<double>(m.tp) / static_cast<double>(m.tp + m.fp)
                    : 0.0;
  m.recall = m.tp + m.fn > 0
                 ? static_cast<double>(m.tp) / static_cast<double>(m.tp + m.fn)
                 : 0.0;
  m.f1 = m.precision + m.recall > 1e-12
             ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  return m;
}

MeanStd mean_std(const std::vector<double>& values) {
  MeanStd ms;
  ms.mean = stats::mean(values);
  ms.stddev = stats::sample_stddev(values);
  return ms;
}

}  // namespace clear::nn
