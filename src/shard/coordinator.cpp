#include "shard/coordinator.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/obs.hpp"

namespace clear::shard {
namespace {

using Clock = std::chrono::steady_clock;

int ms_until(Clock::time_point deadline) {
  const auto delta = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return static_cast<int>(std::max<std::int64_t>(0, delta.count()));
}

/// Distinct FaultedStream id namespaces so the deterministic network-fault
/// specs can target coordinator-side shard channels vs client connections.
constexpr std::uint64_t kShardStreamBase = 0x53480000;   // "SH"
constexpr std::uint64_t kClientStreamBase = 0x434F0000;  // "CO"

}  // namespace

Coordinator::Coordinator(CoordinatorConfig config)
    : config_(std::move(config)), ring_(config_.ring) {
  CLEAR_CHECK_MSG(!config_.shards.empty(),
                  "coordinator needs at least one shard");
  listen_fd_ = net::listen_tcp(config_.listen);
  port_ = net::local_port(listen_fd_);
  if (::pipe(wake_fds_) != 0) {
    net::close_fd(listen_fd_);
    listen_fd_ = -1;
    throw Error("coordinator: pipe() failed");
  }
  net::set_nonblocking(wake_fds_[0], true);
  net::set_nonblocking(wake_fds_[1], true);

  shards_.resize(config_.shards.size());
  try {
    for (std::size_t i = 0; i < config_.shards.size(); ++i) {
      Shard& shard = shards_[i];
      shard.index = i;
      shard.spec = config_.shards[i];
      const int fd =
          net::connect_tcp(shard.spec.endpoint, config_.connect_timeout_ms);
      net::set_nonblocking(fd, true);
      shard.stream = net::FaultedStream(fd, kShardStreamBase + i);
      shard.alive = true;
      ring_.add_shard(static_cast<std::uint32_t>(i));
    }
  } catch (...) {
    for (Shard& shard : shards_)
      if (shard.stream.open()) shard.stream.close();
    net::close_fd(listen_fd_);
    net::close_fd(wake_fds_[0]);
    net::close_fd(wake_fds_[1]);
    throw;
  }
  CLEAR_OBS_GAUGE("coord.shards", static_cast<double>(shards_.size()));

  if (!config_.port_file.empty()) {
    std::FILE* f = std::fopen(config_.port_file.c_str(), "w");
    CLEAR_CHECK_MSG(f != nullptr,
                    "cannot write port file " << config_.port_file);
    std::fprintf(f, "%u\n", static_cast<unsigned>(port_));
    std::fclose(f);
  }
  CLEAR_INFO("coordinator listening on port " << port_ << " with "
                                              << shards_.size() << " shards");
}

Coordinator::~Coordinator() {
  for (Shard& shard : shards_)
    if (shard.stream.open()) shard.stream.close();
  for (auto& [id, client] : clients_)
    if (client->stream.open()) client->stream.close();
  if (listen_fd_ >= 0) net::close_fd(listen_fd_);
  if (wake_fds_[0] >= 0) net::close_fd(wake_fds_[0]);
  if (wake_fds_[1] >= 0) net::close_fd(wake_fds_[1]);
}

void Coordinator::stop() {
  const char byte = 1;
  // Async-signal-safe: one write, EAGAIN (pipe full) is fine — a pending
  // wake byte already exists.
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
}

void Coordinator::run() {
  const bool beats = config_.heartbeat_ms > 0;
  auto next_beat =
      Clock::now() + std::chrono::milliseconds(config_.heartbeat_ms);
  while (!stopping_) {
    graveyard_.clear();
    // Drain-acked decommissions migrate from the top of the loop, never
    // from inside a nested frame dispatch.
    for (Shard& shard : shards_)
      if (shard.alive && shard.draining && shard.drain_acked)
        finish_decommission(shard);
    if (stopping_) break;

    struct Tag {
      int kind;  // 0 wake, 1 listen, 2 shard, 3 client
      std::uint64_t key;
    };
    std::vector<pollfd> fds;
    std::vector<Tag> tags;
    fds.push_back({wake_fds_[0], POLLIN, 0});
    tags.push_back({0, 0});
    if (clients_.size() < config_.max_connections) {
      fds.push_back({listen_fd_, POLLIN, 0});
      tags.push_back({1, 0});
    }
    for (Shard& shard : shards_) {
      if (!shard.alive || !shard.stream.open()) continue;
      fds.push_back({shard.stream.fd(), POLLIN, 0});
      tags.push_back({2, shard.index});
    }
    for (auto& [id, client] : clients_) {
      short events = POLLIN;
      if (client->outpos < client->outbuf.size()) events |= POLLOUT;
      fds.push_back({client->stream.fd(), events, 0});
      tags.push_back({3, id});
    }

    const int timeout = beats ? ms_until(next_beat) : -1;
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                          timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("coordinator: poll: ") + std::strerror(errno));
    }
    if (beats && Clock::now() >= next_beat) {
      heartbeat_tick();
      next_beat =
          Clock::now() + std::chrono::milliseconds(config_.heartbeat_ms);
    }
    for (std::size_t i = 0; i < fds.size() && !stopping_; ++i) {
      if (fds[i].revents == 0) continue;
      switch (tags[i].kind) {
        case 0: {
          char buf[16];
          while (::read(wake_fds_[0], buf, sizeof buf) > 0) {
          }
          if (!stopping_) {
            shutdown_fleet();
            stopping_ = true;
          }
          break;
        }
        case 1:
          accept_ready();
          break;
        case 2: {
          Shard& shard = shards_[tags[i].key];
          if (shard.alive) handle_shard_readable(shard);
          break;
        }
        case 3: {
          const auto it = clients_.find(tags[i].key);
          if (it == clients_.end()) break;  // closed earlier this iteration
          // Read before honoring a hangup: POLLHUP can arrive together
          // with the client's final frames (e.g. kShutdown then close)
          // and closing first would discard them.
          if (fds[i].revents & POLLIN) handle_client_readable(*it->second);
          const auto again = clients_.find(tags[i].key);
          if (again == clients_.end()) break;
          if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL) &&
              !(fds[i].revents & POLLIN)) {
            close_client(tags[i].key, "hangup");
            break;
          }
          if (fds[i].revents & POLLOUT) flush_client(*again->second);
          break;
        }
      }
    }
  }
  graveyard_.clear();
}

// -- Clients ------------------------------------------------------------------

void Coordinator::accept_ready() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      CLEAR_WARN("coordinator: accept: " << std::strerror(errno));
      return;
    }
    if (clients_.size() >= config_.max_connections) {
      net::close_fd(fd);
      continue;
    }
    net::set_nonblocking(fd, true);
    auto client = std::make_unique<Client>();
    client->id = next_client_id_++;
    client->stream = net::FaultedStream(fd, kClientStreamBase + client->id);
    clients_.emplace(client->id, std::move(client));
  }
}

void Coordinator::handle_client_readable(Client& client) {
  char buf[65536];
  while (true) {
    const net::IoResult r = client.stream.read_some(buf, sizeof buf);
    if (r.n > 0) client.decoder.feed(buf, r.n);
    if (r.closed) {
      const std::uint64_t id = client.id;
      pump_client_frames(client);
      close_client(id, "peer closed");
      return;
    }
    if (r.would_block) break;
    if (r.n == 0) break;
  }
  if (!pump_client_frames(client)) close_client(client.id, "protocol error");
}

bool Coordinator::pump_client_frames(Client& client) {
  net::Frame frame;
  while (true) {
    const net::DecodeStatus status = client.decoder.next(frame);
    if (status == net::DecodeStatus::kNeedMore) return true;
    if (status != net::DecodeStatus::kFrame) {
      CLEAR_WARN("coordinator: client " << client.id << ": "
                                        << client.decoder.error());
      return false;
    }
    switch (frame.type) {
      case net::FrameType::kRequest:
        if (!on_client_request(client, frame)) return false;
        break;
      case net::FrameType::kDrain:
        on_client_drain(client);
        break;
      case net::FrameType::kShutdown:
        on_client_shutdown(client);
        return true;
      default:
        CLEAR_WARN("coordinator: client " << client.id
                                          << " sent unexpected frame type "
                                          << net::frame_type_name(frame.type));
        return false;
    }
    if (stopping_) return true;
  }
}

bool Coordinator::on_client_request(Client& client, const net::Frame& frame) {
  net::WireRequest request;
  std::string error;
  if (!net::parse_request(frame, request, error)) {
    CLEAR_WARN("coordinator: client " << client.id << ": " << error);
    return false;
  }
  ++counters_.requests;
  CLEAR_OBS_COUNT("coord.requests", 1);

  const std::size_t target = resolve_shard(request.user_id);
  routes_[{request.user_id, request.request_id}] = client.id;
  std::string bytes = net::encode_frame(net::FrameType::kRequest,
                                        frame.payload);

  // A frame may only bypass the queue when no earlier frame of the same
  // user is still queued — per-user order is part of the serving contract.
  bool user_queued = false;
  for (const QueuedFrame& q : queue_)
    if (q.user_id == request.user_id) {
      user_queued = true;
      break;
    }
  Shard& shard = shards_[target];
  if (shard_available(shard) && !user_queued) {
    if (!forward_to_shard(shard, bytes)) {
      // The shard died under us: queue the frame (it flushes to the
      // adopting survivor or the user's new ring owner), then heal.
      ++counters_.queued;
      CLEAR_OBS_COUNT("coord.queued", 1);
      queue_.push_back({request.user_id, client.id, std::move(bytes)});
      shard_died(shard);
      heal_after_death(shard);
    }
  } else {
    ++counters_.queued;
    CLEAR_OBS_COUNT("coord.queued", 1);
    queue_.push_back({request.user_id, client.id, std::move(bytes)});
  }
  maybe_start_decommission();
  return true;
}

void Coordinator::on_client_drain(Client& client) {
  // Ack immediately from routing counters and forward the drain to each
  // shard asynchronously (their acks are absorbed by on_shard_frame). A
  // synchronous shard round-trip here would delay the ack past the
  // client's last read: a loadgen that closes right after its final
  // response then RSTs the late ack and the close tears down any
  // not-yet-read frames (including a trailing kShutdown) with it. The
  // forwarded drains still flush every shard's batcher, which is what the
  // client is asking for; the authoritative fleet-summed counters arrive
  // with the shutdown acknowledgement.
  net::WireDrainAck total;
  total.requests = counters_.requests;
  total.ok = counters_.responses;
  send_to_client(client, net::encode_drain_ack(total));
  std::vector<std::size_t> died;
  for (Shard& shard : shards_) {
    if (!shard_available(shard)) continue;
    if (!send_to_shard(shard, net::encode_drain())) died.push_back(shard.index);
  }
  for (const std::size_t index : died) {
    shard_died(shards_[index]);
    heal_after_death(shards_[index]);
  }
}

void Coordinator::on_client_shutdown(Client& client) {
  const net::WireDrainAck total = shutdown_fleet();
  send_to_client(client, net::encode_drain_ack(total));
  // Blocking flush: the ack (and any responses freed by the final drain)
  // must reach the wire before the process exits.
  while (client.outpos < client.outbuf.size() && client.stream.open()) {
    pollfd p{client.stream.fd(), POLLOUT, 0};
    if (::poll(&p, 1, config_.shard_io_timeout_ms) <= 0) break;
    const net::IoResult r =
        client.stream.write_some(client.outbuf.data() + client.outpos,
                                 client.outbuf.size() - client.outpos);
    if (r.closed) break;
    client.outpos += r.n;
  }
  stopping_ = true;
}

// -- Shards -------------------------------------------------------------------

void Coordinator::handle_shard_readable(Shard& shard) {
  char buf[65536];
  while (shard.alive) {
    const net::IoResult r = shard.stream.read_some(buf, sizeof buf);
    if (r.n > 0) shard.decoder.feed(buf, r.n);
    if (r.closed) {
      shard_died(shard);
      heal_after_death(shard);
      return;
    }
    if (r.would_block) break;
    if (r.n == 0) break;
  }
  net::Frame frame;
  while (shard.alive) {
    const net::DecodeStatus status = shard.decoder.next(frame);
    if (status == net::DecodeStatus::kNeedMore) return;
    if (status != net::DecodeStatus::kFrame) {
      CLEAR_WARN("coordinator: shard " << shard.index << ": "
                                       << shard.decoder.error());
      shard_died(shard);
      heal_after_death(shard);
      return;
    }
    on_shard_frame(shard, frame);
  }
}

void Coordinator::on_shard_frame(Shard& shard, const net::Frame& frame) {
  std::string error;
  switch (frame.type) {
    case net::FrameType::kResponse:
      route_response(frame);
      break;
    case net::FrameType::kPong: {
      net::WirePong pong;
      if (!net::parse_pong(frame, pong, error)) {
        CLEAR_WARN("coordinator: shard " << shard.index << ": " << error);
        break;
      }
      if (shard.awaiting_pong && pong.nonce == shard.nonce) {
        shard.awaiting_pong = false;
        shard.misses = 0;
        shard.sessions = pong.sessions;
      }
      break;
    }
    case net::FrameType::kDrainAck:
      // Either the decommission drain (main loop runs the migration once
      // drain_acked flips) or the ack to a forwarded client flush-drain,
      // which needs no action beyond having flushed the shard's batcher.
      if (shard.draining && !shard.drain_acked) shard.drain_acked = true;
      break;
    default:
      CLEAR_WARN("coordinator: shard " << shard.index
                                       << " sent unexpected frame type "
                                       << net::frame_type_name(frame.type));
      break;
  }
}

void Coordinator::route_response(const net::Frame& frame) {
  net::WireResponse response;
  std::string error;
  if (!net::parse_response(frame, response, error)) {
    CLEAR_WARN("coordinator: bad response from shard: " << error);
    return;
  }
  const auto route =
      routes_.find({response.user_id, response.request_id});
  if (route == routes_.end()) {
    CLEAR_WARN("coordinator: unrouted response user=" << response.user_id
                                                      << " req="
                                                      << response.request_id);
    return;
  }
  const std::uint64_t client_id = route->second;
  routes_.erase(route);
  const auto it = clients_.find(client_id);
  if (it == clients_.end()) return;  // client gone; response dropped
  ++counters_.responses;
  CLEAR_OBS_COUNT("coord.responses", 1);
  send_to_client(*it->second,
                 net::encode_frame(net::FrameType::kResponse, frame.payload));
}

std::size_t Coordinator::resolve_shard(std::uint64_t user_id) {
  const auto it = placement_.find(user_id);
  if (it != placement_.end()) return it->second;
  CLEAR_CHECK_MSG(ring_.size() > 0, "coordinator: no live shards remain");
  const std::size_t owner = ring_.owner(user_id);
  placement_.emplace(user_id, owner);
  shards_[owner].users.insert(user_id);
  CLEAR_OBS_GAUGE("coord.sessions", static_cast<double>(placement_.size()));
  std::printf("coord: placement user=%llu shard=%zu\n",
              static_cast<unsigned long long>(user_id), owner);
  std::fflush(stdout);
  return owner;
}

bool Coordinator::forward_to_shard(Shard& shard, const std::string& frame) {
  if (!send_to_shard(shard, frame)) return false;
  ++counters_.forwarded;
  CLEAR_OBS_COUNT("coord.forwarded", 1);
  return true;
}

void Coordinator::flush_queue() {
  // Healing flushes, and a flush that finds another dead shard heals — the
  // guard keeps the two from re-entering each other mid-drain (a nested
  // flush would race this one for queue_ and drop frames).
  if (flushing_) return;
  flushing_ = true;
  std::deque<QueuedFrame> keep;
  std::vector<std::size_t> died;
  while (!queue_.empty()) {
    QueuedFrame q = std::move(queue_.front());
    queue_.pop_front();
    bool user_kept = false;
    for (const QueuedFrame& k : keep)
      if (k.user_id == q.user_id) {
        user_kept = true;
        break;
      }
    const std::size_t target = resolve_shard(q.user_id);
    Shard& shard = shards_[target];
    if (!user_kept && shard_available(shard)) {
      if (!forward_to_shard(shard, q.frame)) {
        shard_died(shard);
        died.push_back(target);
        keep.push_back(std::move(q));
      }
    } else {
      keep.push_back(std::move(q));
    }
  }
  queue_ = std::move(keep);
  flushing_ = false;
  for (const std::size_t index : died) heal_after_death(shards_[index]);
}

bool Coordinator::send_to_shard(Shard& shard, const std::string& frame) {
  if (!shard.stream.open()) return false;
  std::size_t off = 0;
  while (off < frame.size()) {
    const net::IoResult r = shard.stream.write_some(frame.data() + off,
                                                    frame.size() - off);
    if (r.closed) return false;
    off += r.n;
    if (r.would_block || (r.n == 0 && !r.closed)) {
      pollfd p{shard.stream.fd(), POLLOUT, 0};
      if (::poll(&p, 1, config_.shard_io_timeout_ms) <= 0) return false;
    }
  }
  return true;
}

std::optional<net::Frame> Coordinator::transact(Shard& shard,
                                                const std::string& frame,
                                                net::FrameType expect) {
  if (!shard.alive) return std::nullopt;
  if (!send_to_shard(shard, frame)) {
    shard_died(shard);
    return std::nullopt;
  }
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.shard_io_timeout_ms);
  net::Frame got;
  char buf[65536];
  while (true) {
    // Drain buffered frames first: the reply may already be decoded, and
    // interleaved responses must reach their clients either way.
    while (true) {
      const net::DecodeStatus status = shard.decoder.next(got);
      if (status == net::DecodeStatus::kNeedMore) break;
      if (status != net::DecodeStatus::kFrame) {
        CLEAR_WARN("coordinator: shard " << shard.index << ": "
                                         << shard.decoder.error());
        shard_died(shard);
        return std::nullopt;
      }
      if (got.type == expect) return got;
      on_shard_frame(shard, got);
    }
    const int remain = ms_until(deadline);
    if (remain <= 0) {
      CLEAR_WARN("coordinator: shard " << shard.index << ": timed out waiting "
                                       << "for " << net::frame_type_name(
                                              expect));
      shard_died(shard);
      return std::nullopt;
    }
    pollfd p{shard.stream.fd(), POLLIN, 0};
    const int rc = ::poll(&p, 1, remain);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("coordinator: poll: ") + std::strerror(errno));
    }
    if (rc == 0) continue;  // re-check the deadline
    const net::IoResult r = shard.stream.read_some(buf, sizeof buf);
    if (r.n > 0) shard.decoder.feed(buf, r.n);
    if (r.closed) {
      shard_died(shard);
      return std::nullopt;
    }
  }
}

// -- Liveness and healing -----------------------------------------------------

void Coordinator::heartbeat_tick() {
  for (Shard& shard : shards_) {
    if (!shard.alive || !shard.stream.open()) continue;
    if (shard.awaiting_pong) {
      ++shard.misses;
      ++counters_.heartbeats_missed;
      CLEAR_OBS_COUNT("coord.heartbeats.missed", 1);
      if (shard.misses >= config_.missed_limit) {
        CLEAR_WARN("coordinator: shard " << shard.index << " missed "
                                         << shard.misses
                                         << " heartbeats, declaring dead");
        shard_died(shard);
        heal_after_death(shard);
      }
      continue;
    }
    shard.nonce = shard.next_nonce++;
    shard.awaiting_pong = true;
    ++counters_.pings;
    CLEAR_OBS_COUNT("coord.heartbeats", 1);
    if (!send_to_shard(shard, net::encode_ping(shard.nonce))) {
      shard_died(shard);
      heal_after_death(shard);
    }
  }
}

void Coordinator::shard_died(Shard& shard) {
  if (!shard.alive) return;
  shard.alive = false;
  shard.draining = false;
  shard.drain_acked = false;
  shard.awaiting_pong = false;
  if (shard.stream.open()) shard.stream.close();
  if (ring_.contains(static_cast<std::uint32_t>(shard.index)))
    ring_.remove_shard(static_cast<std::uint32_t>(shard.index));
  ++counters_.shard_deaths;
  CLEAR_OBS_COUNT("coord.shard_deaths", 1);
  std::size_t live = 0;
  for (const Shard& s : shards_)
    if (s.alive) ++live;
  CLEAR_OBS_GAUGE("coord.shards", static_cast<double>(live));
}

void Coordinator::heal_after_death(Shard& dead) {
  if (dead.healed) {
    flush_queue();
    return;
  }
  dead.healed = true;
  while (true) {
    Shard* survivor = nullptr;
    for (Shard& s : shards_)
      if (s.alive && s.stream.open()) {
        survivor = &s;
        break;
      }
    if (survivor == nullptr)
      throw Error("coordinator: no live shards remain to adopt shard " +
                  std::to_string(dead.index));

    if (dead.spec.journal_dir.empty()) {
      // No journal to adopt: the sessions are lost; users re-pin lazily to
      // their new ring owners and start cold there.
      for (const std::uint64_t user : dead.users) placement_.erase(user);
      dead.users.clear();
      std::printf(
          "coord: healed shard=%zu survivor=%zu sessions=0 personalized=0 "
          "failed=0\n",
          dead.index, survivor->index);
      std::fflush(stdout);
      break;
    }

    const auto reply = transact(*survivor,
                                net::encode_adopt(dead.spec.journal_dir),
                                net::FrameType::kAdoptAck);
    if (!reply) {
      // The survivor died mid-adoption. Its own sessions re-pin lazily (its
      // journal is not chained-adopted — logged so operators know); retry
      // the original adoption on the next survivor.
      CLEAR_WARN("coordinator: survivor shard "
                 << survivor->index << " died during adoption of shard "
                 << dead.index << "; its own sessions re-pin cold");
      for (const std::uint64_t user : survivor->users)
        placement_.erase(user);
      survivor->users.clear();
      survivor->healed = true;
      continue;
    }
    net::WireAdoptAck ack;
    std::string error;
    if (!net::parse_adopt_ack(*reply, ack, error)) {
      CLEAR_WARN("coordinator: shard " << survivor->index << ": " << error);
      shard_died(*survivor);
      for (const std::uint64_t user : survivor->users)
        placement_.erase(user);
      survivor->users.clear();
      survivor->healed = true;
      continue;
    }
    ++counters_.adoptions;
    counters_.adopted_sessions += ack.sessions;
    CLEAR_OBS_COUNT("coord.adoptions", 1);
    CLEAR_OBS_COUNT("coord.adopted_sessions", ack.sessions);
    for (const std::uint64_t user : dead.users) {
      placement_[user] = survivor->index;
      survivor->users.insert(user);
    }
    dead.users.clear();
    std::printf(
        "coord: healed shard=%zu survivor=%zu sessions=%llu personalized=%llu "
        "failed=%llu\n",
        dead.index, survivor->index,
        static_cast<unsigned long long>(ack.sessions),
        static_cast<unsigned long long>(ack.personalized),
        static_cast<unsigned long long>(ack.failed));
    std::fflush(stdout);
    break;
  }
  flush_queue();
}

// -- Planned decommission -----------------------------------------------------

void Coordinator::maybe_start_decommission() {
  if (decommission_started_ || config_.decommission_shard < 0) return;
  if (counters_.requests < config_.decommission_after) return;
  const auto index = static_cast<std::size_t>(config_.decommission_shard);
  CLEAR_CHECK_MSG(index < shards_.size(),
                  "decommission shard " << index << " out of range");
  Shard& shard = shards_[index];
  decommission_started_ = true;
  if (!shard.alive) return;  // already dead and healed
  shard.draining = true;
  // Out of the ring first: users first seen during the drain place onto
  // survivors and never touch the dying shard.
  if (ring_.contains(static_cast<std::uint32_t>(index)))
    ring_.remove_shard(static_cast<std::uint32_t>(index));
  std::printf("coord: decommission shard=%zu draining\n", index);
  std::fflush(stdout);
  if (!send_to_shard(shard, net::encode_drain())) {
    shard_died(shard);
    heal_after_death(shard);
  }
}

void Coordinator::finish_decommission(Shard& shard) {
  shard.drain_acked = false;
  std::uint64_t moved = 0;
  std::uint64_t failed = 0;
  // Copy: migration rewrites shard.users via placement updates.
  const std::vector<std::uint64_t> users(shard.users.begin(),
                                         shard.users.end());
  for (const std::uint64_t user : users) {
    const auto reply = transact(shard, net::encode_export(user),
                                net::FrameType::kSessionImage);
    if (!reply) {
      // The draining shard died mid-migration: the remaining users recover
      // from its journal via the ordinary adoption path.
      heal_after_death(shard);
      return;
    }
    net::WireSessionImage image;
    std::string error;
    if (!net::parse_session_image(*reply, image, error)) {
      CLEAR_WARN("coordinator: shard " << shard.index << ": " << error);
      shard_died(shard);
      heal_after_death(shard);
      return;
    }
    shard.users.erase(user);
    if (!image.found) {
      // Queued-but-never-forwarded user (pinned during the drain window):
      // nothing to move, re-place on flush.
      placement_.erase(user);
      continue;
    }
    // The import frame re-uses the export reply's payload bytes verbatim —
    // the coordinator cannot perturb the image or checkpoint in transit.
    const std::string import_frame =
        net::encode_frame(net::FrameType::kSessionImage, reply->payload);
    CLEAR_CHECK_MSG(ring_.size() > 0, "coordinator: no live shards remain");
    const std::size_t target = ring_.owner(user);
    bool ok = false;
    for (int attempt = 0; attempt < 2 && !ok; ++attempt) {
      const auto ack_frame = transact(shards_[target], import_frame,
                                      net::FrameType::kImportAck);
      if (!ack_frame) break;
      net::WireImportAck ack;
      if (!net::parse_import_ack(*ack_frame, ack, error)) break;
      ok = ack.ok;
      if (!ok && attempt == 0)
        CLEAR_WARN("coordinator: import of user " << user << " on shard "
                                                  << target << " failed ("
                                                  << ack.error
                                                  << "), retrying");
    }
    if (ok) {
      placement_[user] = target;
      shards_[target].users.insert(user);
      ++moved;
      ++counters_.migrations;
      CLEAR_OBS_COUNT("coord.migrations", 1);
      std::printf("coord: migrated user=%llu from=%zu to=%zu\n",
                  static_cast<unsigned long long>(user), shard.index, target);
      std::fflush(stdout);
    } else {
      ++failed;
      ++counters_.migrations_failed;
      CLEAR_OBS_COUNT("coord.migrations_failed", 1);
      placement_.erase(user);
      CLEAR_WARN("coordinator: migration of user "
                 << user << " failed; the session restarts cold");
    }
  }
  // The shard is empty: pull its metrics while it can still answer, then
  // shut it down.
  pull_metrics(shard);
  const auto ack = transact(shard, net::encode_shutdown(),
                            net::FrameType::kDrainAck);
  if (!ack)
    CLEAR_WARN("coordinator: shard " << shard.index
                                     << " did not acknowledge shutdown");
  if (shard.alive) {
    shard.alive = false;
    shard.draining = false;
    if (shard.stream.open()) shard.stream.close();
  }
  decommission_done_ = true;
  std::size_t live = 0;
  for (const Shard& s : shards_)
    if (s.alive) ++live;
  CLEAR_OBS_GAUGE("coord.shards", static_cast<double>(live));
  std::printf("coord: decommissioned shard=%zu migrated=%llu failed=%llu\n",
              shard.index, static_cast<unsigned long long>(moved),
              static_cast<unsigned long long>(failed));
  std::fflush(stdout);
  flush_queue();
}

// -- Shutdown and metrics -----------------------------------------------------

void Coordinator::pull_metrics(Shard& shard) {
  if (!obs::enabled()) return;
  const auto reply = transact(shard, net::encode_metrics_pull(),
                              net::FrameType::kMetricsJson);
  if (!reply) return;
  std::string json;
  std::string error;
  if (!net::parse_metrics_json(*reply, json, error)) {
    CLEAR_WARN("coordinator: shard " << shard.index << ": " << error);
    return;
  }
  try {
    obs::merge_snapshot(obs::with_prefix(obs::parse_snapshot(json), "coord."));
  } catch (const Error& e) {
    CLEAR_WARN("coordinator: shard " << shard.index
                                     << ": metrics merge failed: "
                                     << e.what());
  }
}

net::WireDrainAck Coordinator::shutdown_fleet() {
  net::WireDrainAck total;
  for (Shard& shard : shards_) {
    if (!shard.alive) continue;
    const auto drained =
        transact(shard, net::encode_drain(), net::FrameType::kDrainAck);
    if (!drained) continue;
    net::WireDrainAck ack;
    std::string error;
    if (net::parse_drain_ack(*drained, ack, error)) {
      total.requests += ack.requests;
      total.ok += ack.ok;
      total.shed += ack.shed;
    }
    pull_metrics(shard);
    const auto bye = transact(shard, net::encode_shutdown(),
                              net::FrameType::kDrainAck);
    if (!bye)
      CLEAR_WARN("coordinator: shard " << shard.index
                                       << " did not acknowledge shutdown");
    shard.alive = false;
    if (shard.stream.open()) shard.stream.close();
  }
  CLEAR_OBS_GAUGE("coord.shards", 0.0);
  return total;
}

// -- Client IO ----------------------------------------------------------------

void Coordinator::send_to_client(Client& client, const std::string& frame) {
  client.outbuf.append(frame);
  flush_client(client);
}

void Coordinator::flush_client(Client& client) {
  while (client.outpos < client.outbuf.size()) {
    const net::IoResult r =
        client.stream.write_some(client.outbuf.data() + client.outpos,
                                 client.outbuf.size() - client.outpos);
    if (r.closed) {
      close_client(client.id, "peer closed while writing");
      return;
    }
    if (r.would_block) return;
    client.outpos += r.n;
  }
  client.outbuf.clear();
  client.outpos = 0;
}

void Coordinator::close_client(std::uint64_t id, const char* why) {
  const auto it = clients_.find(id);
  if (it == clients_.end()) return;
  CLEAR_DEBUG("coordinator: closing client " << id << " (" << why << ")");
  if (it->second->stream.open()) it->second->stream.close();
  graveyard_.push_back(std::move(it->second));
  clients_.erase(it);
}

}  // namespace clear::shard
