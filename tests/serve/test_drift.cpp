// End-to-end online-adaptation suite: drifting workloads through the whole
// server, thread-count bit-identity of every drift decision, the
// monitoring-is-invisible contract, and the DEGRADED x drift fault sweep.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "clear/config.hpp"
#include "clear/pipeline.hpp"
#include "common/parallel.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "wemac/dataset.hpp"

namespace clear::serve {
namespace {

core::ClearConfig drift_fixture_config() {
  core::ClearConfig c = core::smoke_config();
  c.data.seed = 77;
  c.data.n_volunteers = 8;
  c.data.trials_per_volunteer = 5;
  c.train.epochs = 2;
  c.finetune.epochs = 1;
  c.finalize();
  return c;
}

struct SharedFixture {
  wemac::WemacDataset dataset;
  core::ClearPipeline pipeline;
  ModelSource source;

  SharedFixture()
      : dataset(wemac::generate_wemac(drift_fixture_config().data)),
        pipeline(drift_fixture_config()) {
    std::vector<std::size_t> users;
    for (std::size_t u = 0; u + 2 < dataset.n_volunteers(); ++u)
      users.push_back(u);
    pipeline.fit(dataset, users);
    source = ModelSource::from_pipeline(pipeline);
  }
};

SharedFixture& fixture() {
  static SharedFixture f;
  return f;
}

void expect_identical(const std::vector<ServeResult>& a,
                      const std::vector<ServeResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user_id, b[i].user_id) << "result " << i;
    EXPECT_EQ(a[i].request_id, b[i].request_id) << "result " << i;
    EXPECT_EQ(a[i].status, b[i].status) << "result " << i;
    EXPECT_EQ(a[i].predicted, b[i].predicted) << "result " << i;
    // Bit-identical, not approximately equal — the determinism contract.
    EXPECT_EQ(a[i].fear_probability, b[i].fear_probability) << "result " << i;
    EXPECT_EQ(a[i].route, b[i].route) << "result " << i;
    EXPECT_EQ(a[i].session_state, b[i].session_state) << "result " << i;
    EXPECT_EQ(a[i].batch_rows, b[i].batch_rows) << "result " << i;
    EXPECT_EQ(a[i].exec_us, b[i].exec_us) << "result " << i;
  }
}

void expect_drift_counters_equal(const ServeCounters& a,
                                 const ServeCounters& b) {
  EXPECT_EQ(a.drift_ticks, b.drift_ticks);
  EXPECT_EQ(a.drift_detected, b.drift_detected);
  EXPECT_EQ(a.reassessments, b.reassessments);
  EXPECT_EQ(a.drift_false_alarms, b.drift_false_alarms);
  EXPECT_EQ(a.shadow_ticks, b.shadow_ticks);
  EXPECT_EQ(a.promotions, b.promotions);
  EXPECT_EQ(a.demotions, b.demotions);
}

ServeConfig adaptive_config() {
  ServeConfig sc;
  sc.session.ca_windows = 3;
  sc.session.ft_maps = 2;
  sc.session.drift_after = 3;
  sc.session.drift_ratio = 1.0;
  sc.session.reassess_windows = 3;
  sc.session.shadow_windows = 4;
  return sc;
}

WorkloadConfig drifting_workload() {
  WorkloadConfig wc;
  wc.n_users = 8;
  wc.requests_per_user = 24;
  wc.seed = 7;
  wc.degraded_user_fraction = 0.0;
  wc.drift_user_fraction = 0.5;
  wc.drift_at_fraction = 0.4;
  wc.drift_blend = 1.0;  // Drifting users *become* the other volunteer.
  return wc;
}

TEST(Drift, DriftingWorkloadIsBitIdenticalAcrossThreadCounts) {
  auto& f = fixture();
  std::vector<ServeResult> base;
  ServeCounters base_counters;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const NumThreadsGuard guard(threads);
    Server server(f.source, adaptive_config());
    std::vector<ServeResult> out =
        server.run(make_workload(f.dataset, drifting_workload()));
    // The workload must actually engage the machine, or this test proves
    // nothing: monitored windows, at least one confirmed drift, and a full
    // re-assessment (shadow verdicts depend on the data and may be
    // promotions or demotions — both count below).
    EXPECT_GT(server.counters().drift_ticks, 0u);
    EXPECT_GT(server.counters().drift_detected, 0u);
    EXPECT_GT(server.counters().reassessments, 0u);
    if (base.empty()) {
      base = std::move(out);
      base_counters = server.counters();
    } else {
      expect_identical(base, out);
      expect_drift_counters_equal(base_counters, server.counters());
    }
  }
}

TEST(Drift, MonitoringAloneLeavesEveryResponseUntouched) {
  // The incumbent-serving invariant, end to end: a monitor that ticks on
  // every window but never confirms drift (absurdly wide ratio) must leave
  // the response stream byte-identical to a server with the monitor off.
  auto& f = fixture();
  WorkloadConfig wc = drifting_workload();

  ServeConfig off = adaptive_config();
  off.session.drift_after = 0;
  Server plain(f.source, off);
  const std::vector<ServeResult> base =
      plain.run(make_workload(f.dataset, wc));
  EXPECT_EQ(plain.counters().drift_ticks, 0u);

  ServeConfig watching = adaptive_config();
  watching.session.drift_ratio = 1e9;  // Ticks, never triggers.
  Server monitored(f.source, watching);
  const std::vector<ServeResult> out =
      monitored.run(make_workload(f.dataset, wc));
  EXPECT_GT(monitored.counters().drift_ticks, 0u);
  EXPECT_EQ(monitored.counters().drift_detected, 0u);
  expect_identical(base, out);
}

TEST(Drift, StableWorkloadNeverEntersAdaptation) {
  // Non-drifting users against their own cluster: the monitor runs on every
  // eligible window and the default margin keeps it quiet.
  auto& f = fixture();
  WorkloadConfig wc = drifting_workload();
  wc.drift_user_fraction = 0.0;
  ServeConfig sc = adaptive_config();
  sc.session.drift_ratio = 1.25;  // The production default margin.
  Server server(f.source, sc);
  server.run(make_workload(f.dataset, wc));
  EXPECT_GT(server.counters().drift_ticks, 0u);
  EXPECT_EQ(server.counters().promotions, 0u);
  EXPECT_EQ(server.counters().demotions, 0u);
}

TEST(Drift, DegradedByDriftFaultSweep) {
  // Sweep the two fault axes against each other. The zero-fault cell must
  // be byte-identical to the golden (drift-monitor-off) run — adaptation
  // support may not perturb a healthy stream — and every faulted cell must
  // keep serving deterministically.
  auto& f = fixture();
  WorkloadConfig clean = drifting_workload();
  clean.drift_user_fraction = 0.0;
  ServeConfig off = adaptive_config();
  off.session.drift_after = 0;
  Server golden(f.source, off);
  const std::vector<ServeResult> golden_out =
      golden.run(make_workload(f.dataset, clean));

  for (const double degraded_fraction : {0.0, 0.25}) {
    for (const double drift_fraction : {0.0, 0.5}) {
      WorkloadConfig wc = drifting_workload();
      wc.degraded_user_fraction = degraded_fraction;
      wc.drift_user_fraction = drift_fraction;
      Server server(f.source, adaptive_config());
      const std::vector<ServeResult> out =
          server.run(make_workload(f.dataset, wc));
      const ServeCounters& c = server.counters();
      EXPECT_EQ(c.requests, wc.n_users * wc.requests_per_user)
          << "cell (" << degraded_fraction << ", " << drift_fraction << ")";
      if (degraded_fraction == 0.0 && drift_fraction == 0.0) {
        // Drift enabled but nothing drifting: bit-identical to golden.
        expect_identical(golden_out, out);
        EXPECT_EQ(c.degraded, 0u);
      }
      if (degraded_fraction > 0.0) {
        EXPECT_GT(c.degraded, 0u)
            << "cell (" << degraded_fraction << ", " << drift_fraction << ")";
      }
      if (drift_fraction > 0.0) {
        EXPECT_GT(c.drift_detected, 0u)
            << "cell (" << degraded_fraction << ", " << drift_fraction << ")";
      }
    }
  }
}

}  // namespace
}  // namespace clear::serve
