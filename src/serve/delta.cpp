#include "serve/delta.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "artifact/store.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "edge/quantize.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"

namespace clear::serve::delta {

namespace {

// Checkpoint container magics (mirrors src/nn/checkpoint.cpp; the codec
// parses and re-emits checkpoint blobs without a model to validate against).
constexpr std::uint64_t kCkptMagicV1 = 0x434C454152434B50ull;  // "CLEARCKP"
constexpr std::uint64_t kCkptMagicV2 = 0x434C454152434B32ull;  // "CLEARCK2"
constexpr std::uint64_t kCkptVersion = 2;

constexpr std::uint32_t kDeltaCodecVersion = 1;

constexpr const char* kMetaBlock = "delta.meta";
constexpr const char* kTensorsBlock = "delta.tensors";
constexpr const char* kValuesBlock = "delta.values";

enum class Enc : std::uint8_t {
  kSame = 0,
  kRaw = 1,
  kUlpDelta = 2,
  kHalf = 3,
  kGrid8 = 4,
};

struct NamedTensor {
  std::string name;
  Tensor value;
};

// -- Checkpoint blob <-> named tensors ---------------------------------------

/// `verify_crc` false skips the v2 payload-CRC pass — safe only when a
/// later end-to-end check (the reconstruction's full-blob CRC in decode())
/// still catches a corrupt input, and worth one full digest pass per cold
/// load.
std::vector<NamedTensor> parse_checkpoint(const std::string& blob,
                                          bool verify_crc = true) {
  std::istringstream is(blob, std::ios::binary);
  const std::uint64_t magic = io::read_u64(is);
  std::string payload;
  if (magic == kCkptMagicV1) {
    payload = blob.substr(8);
  } else {
    CLEAR_CHECK_MSG(magic == kCkptMagicV2, "bad checkpoint magic");
    const std::uint64_t version = io::read_u64(is);
    CLEAR_CHECK_MSG(version == kCkptVersion,
                    "unsupported checkpoint version " << version);
    const std::uint64_t length = io::read_u64(is);
    CLEAR_CHECK_MSG(length < (1ull << 32),
                    "implausible checkpoint payload length " << length);
    payload.resize(length);
    is.read(payload.data(), static_cast<std::streamsize>(length));
    CLEAR_CHECK_MSG(static_cast<std::uint64_t>(is.gcount()) == length,
                    "truncated checkpoint payload");
    const std::uint64_t stored = io::read_u64(is);
    CLEAR_CHECK_MSG(!verify_crc || stored == crc32(payload),
                    "checkpoint CRC mismatch");
  }
  std::istringstream ps(payload, std::ios::binary);
  const std::uint64_t count = io::read_u64(ps);
  CLEAR_CHECK_MSG(count < (1ull << 20),
                  "implausible checkpoint parameter count " << count);
  std::vector<NamedTensor> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    NamedTensor nt;
    nt.name = io::read_string(ps);
    nt.value = io::read_tensor(ps);
    out.push_back(std::move(nt));
  }
  return out;
}

// Tensor wire constants, mirroring tensor/serialize.cpp ('CTSR' v1). A
// divergence cannot corrupt data: encode() bails to full storage when its
// re-serialization is not byte-identical to the input, and decode() checks
// the reconstruction against the stored full-blob CRC.
constexpr std::uint32_t kTensorWireMagic = 0x43545352;
constexpr std::uint32_t kTensorWireVersion = 1;

template <typename T>
void append_raw(std::string& out, T v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// Byte-identical to nn::save_checkpoint at format kCrcV2 — the
/// reconstruction target the full-blob CRC in delta.meta is checked
/// against. Built by direct string append rather than ostringstream: this
/// runs on every cold load and the stream double-buffering dominated it in
/// profiles.
std::string serialize_v2(const std::vector<NamedTensor>& params) {
  std::string out;
  std::size_t est = 32 + 8;
  for (const NamedTensor& p : params)
    est += 8 + p.name.size() + 16 + p.value.rank() * 8 +
           p.value.numel() * sizeof(float);
  out.reserve(est);
  append_raw(out, kCkptMagicV2);
  append_raw(out, kCkptVersion);
  append_raw(out, std::uint64_t{0});  // payload length, patched below
  const std::size_t payload_at = out.size();
  append_raw(out, static_cast<std::uint64_t>(params.size()));
  for (const NamedTensor& p : params) {
    append_raw(out, static_cast<std::uint64_t>(p.name.size()));
    out.append(p.name);
    append_raw(out, kTensorWireMagic);
    append_raw(out, kTensorWireVersion);
    append_raw(out, static_cast<std::uint64_t>(p.value.rank()));
    for (std::size_t d = 0; d < p.value.rank(); ++d)
      append_raw(out, static_cast<std::uint64_t>(p.value.extent(d)));
    out.append(reinterpret_cast<const char*>(p.value.data()),
               p.value.numel() * sizeof(float));
  }
  const std::uint64_t length = out.size() - payload_at;
  std::memcpy(out.data() + 16, &length, sizeof(length));
  append_raw(out, static_cast<std::uint64_t>(
                      crc32(out.data() + payload_at, length)));
  return out;
}

/// Identity digest of a checkpoint blob. NOT plain crc32(blob): a v2
/// checkpoint ends in its own CRC-32 footer, and `m ++ crc32(m)` is a CRC
/// codeword — so a whole-blob IEEE CRC of two *different* v2 checkpoints of
/// equal size is identical (the differences cancel by linearity), which
/// would let a delta silently apply against a drifted base.
///
/// For v2 the digest is the payload CRC already stored in the footer (the
/// header is a pure function of the payload, so the payload CRC identifies
/// the blob) — reading it costs nothing, where recomputing is a full pass
/// per cold load. Trusting the stored footer is sound because decode()'s
/// final check compares meta.full_crc against a footer *recomputed* by
/// serialize_v2 from the reconstructed payload: any base or container
/// damage perturbs the reconstruction and fails that check.
std::uint32_t blob_fingerprint(const std::string& blob) {
  if (blob.size() >= 32) {
    std::uint64_t magic = 0;
    for (int i = 7; i >= 0; --i)
      magic = (magic << 8) | static_cast<unsigned char>(blob[i]);
    if (magic == kCkptMagicV2) {
      std::uint64_t footer = 0;
      for (int i = 7; i >= 0; --i)
        footer = (footer << 8) |
                 static_cast<unsigned char>(blob[blob.size() - 8 + i]);
      return static_cast<std::uint32_t>(footer);
    }
  }
  return crc32(blob);
}

// -- Bit helpers -------------------------------------------------------------

std::uint32_t f32_bits(float v) {
  std::uint32_t b;
  std::memcpy(&b, &v, 4);
  return b;
}

float f32_from_bits(std::uint32_t b) {
  float v;
  std::memcpy(&v, &b, 4);
  return v;
}

/// f32 -> IEEE half, round-to-nearest-even, total (overflow -> inf).
std::uint16_t half_from_float(float f) {
  const std::uint32_t x = f32_bits(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t mant = x & 0x7FFFFFu;
  const int exp = static_cast<int>((x >> 23) & 0xFFu) - 127;
  if (exp == 128)  // inf / nan
    return static_cast<std::uint16_t>(
        sign | 0x7C00u | (mant ? 0x200u | (mant >> 13) : 0u));
  if (exp > 15) return static_cast<std::uint16_t>(sign | 0x7C00u);
  if (exp >= -14) {
    std::uint32_t m = (mant | 0x800000u) >> 13;
    const std::uint32_t rem = (mant | 0x800000u) & 0x1FFFu;
    if (rem > 0x1000u || (rem == 0x1000u && (m & 1u))) ++m;
    // m carries its implicit bit at 0x400; a carry into 0x800 bumps the
    // exponent via the addition below (saturating into the inf encoding).
    return static_cast<std::uint16_t>(
        sign + (static_cast<std::uint32_t>(exp + 15) << 10) + (m - 0x400u));
  }
  if (exp >= -25) {
    const int shift = 13 + (-14 - exp);
    const std::uint32_t full = mant | 0x800000u;
    std::uint32_t m = full >> shift;
    const std::uint32_t rem = full & ((1u << shift) - 1u);
    const std::uint32_t half_rem = 1u << (shift - 1);
    if (rem > half_rem || (rem == half_rem && (m & 1u))) ++m;
    return static_cast<std::uint16_t>(sign | m);
  }
  return static_cast<std::uint16_t>(sign);
}

/// IEEE half -> f32, exact widening.
float float_from_half(std::uint16_t h) {
  const bool neg = (h & 0x8000u) != 0;
  const std::uint32_t e = (h >> 10) & 0x1Fu;
  const std::uint32_t m = h & 0x3FFu;
  if (e == 31) {
    const std::uint32_t bits = (neg ? 0x80000000u : 0u) | 0x7F800000u |
                               (m << 13);
    return f32_from_bits(bits);
  }
  float v = e == 0 ? std::ldexp(static_cast<float>(m), -24)
                   : std::ldexp(static_cast<float>(m | 0x400u),
                                static_cast<int>(e) - 25);
  return neg ? -v : v;
}

// -- Residual coder (bitmap + zigzag varints) --------------------------------

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80u) {
    artifact::put_u8(out, static_cast<std::uint8_t>((v & 0x7Fu) | 0x80u));
    v >>= 7;
  }
  artifact::put_u8(out, static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(std::string_view in, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    CLEAR_CHECK_MSG(pos < in.size(),
                    "delta payload truncated in a varint at offset " << pos);
    CLEAR_CHECK_MSG(shift < 64, "delta varint overruns 64 bits");
    const std::uint8_t b = static_cast<std::uint8_t>(in[pos++]);
    v |= std::uint64_t(b & 0x7Fu) << shift;
    if ((b & 0x80u) == 0) return v;
    shift += 7;
  }
}

std::uint64_t zigzag(std::int64_t r) {
  return (static_cast<std::uint64_t>(r) << 1) ^
         static_cast<std::uint64_t>(r >> 63);
}

std::int64_t unzigzag(std::uint64_t z) {
  return static_cast<std::int64_t>(z >> 1) ^
         -static_cast<std::int64_t>(z & 1u);
}

std::string encode_residuals(const std::vector<std::int64_t>& r) {
  std::string out;
  const std::size_t n = r.size();
  std::string bitmap((n + 7) / 8, '\0');
  std::uint64_t nnz = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (r[i] != 0) {
      bitmap[i >> 3] |= static_cast<char>(1u << (i & 7u));
      ++nnz;
    }
  artifact::put_u64(out, nnz);
  out += bitmap;
  for (std::size_t i = 0; i < n; ++i)
    if (r[i] != 0) put_varint(out, zigzag(r[i]));
  return out;
}

/// Decode one residual stream starting at `pos`, advancing it. Callers with
/// a single stream use decode_residuals() below, which also rejects
/// trailing bytes.
std::vector<std::int64_t> decode_residuals_at(std::string_view payload,
                                              std::size_t& pos,
                                              std::size_t n) {
  const std::uint64_t nnz = artifact::get_u64(payload, pos, "delta residuals");
  const std::size_t bitmap_bytes = (n + 7) / 8;
  CLEAR_CHECK_MSG(pos + bitmap_bytes <= payload.size(),
                  "delta residual bitmap truncated at offset " << pos);
  const std::string_view bitmap = payload.substr(pos, bitmap_bytes);
  pos += bitmap_bytes;
  std::vector<std::int64_t> r(n, 0);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (bitmap[i >> 3] & (1u << (i & 7u))) {
      r[i] = unzigzag(get_varint(payload, pos));
      ++seen;
    }
  CLEAR_CHECK_MSG(seen == nnz, "delta residual bitmap claims "
                                   << seen << " nonzeros, header says "
                                   << nnz);
  return r;
}

std::vector<std::int64_t> decode_residuals(std::string_view payload,
                                           std::size_t n) {
  std::size_t pos = 0;
  std::vector<std::int64_t> r = decode_residuals_at(payload, pos, n);
  CLEAR_CHECK_MSG(pos == payload.size(),
                  "delta residual payload has " << (payload.size() - pos)
                                                << " trailing bytes");
  return r;
}

// -- Dense residual coding (kGrid8 mode 1) -----------------------------------
//
// Unfrozen weights routinely move several grid steps under fine-tuning, so
// their grid residuals are dense (the sparse bitmap+varint stream pays ~1
// byte per weight) but low-entropy (~4 bits: a couple dozen distinct steps,
// sharply peaked at small magnitudes). A static entropy coder over the
// per-tensor residual histogram gets within a few percent of that entropy.
// The symbol packs the residual with the sign-of-zero fixup bit:
// sym = 2 * zigzag(residual) + neg_zero.
//
// Static rANS (Duda), 32-bit state, byte renormalization: integer-only, so
// the bitstream is bit-identical across platforms, and the decoder — which
// runs once per weight on every cold load — needs no division, just a
// slot-table lookup, a multiply, and a shift. Frequencies are normalized
// to sum to kDenseTotal exactly; every present symbol keeps a count >= 1.
// rANS is LIFO, so the encoder walks the symbols in reverse and the
// decoder reads the body strictly forward: u32 big-endian initial state,
// then renormalization bytes.

constexpr std::uint32_t kDenseBits = 14;
constexpr std::uint32_t kDenseTotal = 1u << kDenseBits;
constexpr std::uint32_t kRansL = 1u << 23;  // state in [kRansL, kRansL << 8)

/// Encode `syms` (indices into freqs/cum) into an rANS body. `cum[i]` is
/// the exclusive prefix sum of `freqs`; freqs sum to kDenseTotal.
std::string rans_encode(const std::vector<std::uint8_t>& syms,
                        const std::vector<std::uint32_t>& freqs,
                        const std::vector<std::uint32_t>& cum) {
  std::string tail;  // renormalization bytes, collected backwards
  std::uint32_t x = kRansL;
  for (std::size_t i = syms.size(); i-- > 0;) {
    const std::uint32_t f = freqs[syms[i]];
    const std::uint32_t x_max = ((kRansL >> kDenseBits) << 8) * f;
    while (x >= x_max) {
      tail.push_back(static_cast<char>(x & 0xFFu));
      x >>= 8;
    }
    x = ((x / f) << kDenseBits) + (x % f) + cum[syms[i]];
  }
  std::string out;
  out.reserve(4 + tail.size());
  for (int shift = 24; shift >= 0; shift -= 8)
    out.push_back(static_cast<char>((x >> shift) & 0xFFu));
  out.append(tail.rbegin(), tail.rend());
  return out;
}

/// Dense stream: varint n_symbols, then per symbol (ascending sym value)
/// varint sym + varint normalized freq (freqs sum to kDenseTotal), then
/// varint body length + rANS body. Returns "" when the tensor is a
/// poor fit (too many distinct symbols, or normalization cannot keep every
/// count >= 1) — the caller falls back to the sparse stream.
std::string encode_dense_residuals(const std::vector<std::int64_t>& r,
                                   const std::vector<std::int64_t>& neg_zero) {
  const std::size_t n = r.size();
  if (n == 0) return "";
  std::map<std::uint64_t, std::uint64_t> counts;
  for (std::size_t i = 0; i < n; ++i)
    ++counts[2 * zigzag(r[i]) + static_cast<std::uint64_t>(neg_zero[i])];
  if (counts.size() > 256 || counts.size() >= kDenseTotal) return "";

  std::vector<std::uint64_t> syms;
  std::vector<std::uint32_t> freqs;
  std::uint64_t sum = 0;
  std::size_t largest = 0;
  for (const auto& [sym, c] : counts) {
    const std::uint32_t f = static_cast<std::uint32_t>(std::max<std::uint64_t>(
        1, c * kDenseTotal / n));
    if (freqs.empty() || c > counts.at(syms[largest])) largest = syms.size();
    syms.push_back(sym);
    freqs.push_back(f);
    sum += f;
  }
  // Exact normalization: push the rounding drift into the most frequent
  // symbol, bailing out if that would zero it.
  const std::int64_t drift = static_cast<std::int64_t>(kDenseTotal) -
                             static_cast<std::int64_t>(sum);
  if (static_cast<std::int64_t>(freqs[largest]) + drift < 1) return "";
  freqs[largest] = static_cast<std::uint32_t>(
      static_cast<std::int64_t>(freqs[largest]) + drift);

  std::vector<std::uint32_t> cum(freqs.size() + 1, 0);
  for (std::size_t i = 0; i < freqs.size(); ++i) cum[i + 1] = cum[i] + freqs[i];

  std::vector<std::uint8_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t sym =
        2 * zigzag(r[i]) + static_cast<std::uint64_t>(neg_zero[i]);
    indices[i] = static_cast<std::uint8_t>(
        std::lower_bound(syms.begin(), syms.end(), sym) - syms.begin());
  }
  const std::string body = rans_encode(indices, freqs, cum);

  std::string out;
  put_varint(out, syms.size());
  for (std::size_t i = 0; i < syms.size(); ++i) {
    put_varint(out, syms[i]);
    put_varint(out, freqs[i]);
  }
  put_varint(out, body.size());
  out += body;
  return out;
}

/// Inverse of encode_dense_residuals, consuming from `pos`. Fills both the
/// residuals and the sign-of-zero flags.
void decode_dense_residuals(std::string_view payload, std::size_t& pos,
                            std::size_t n, std::vector<std::int64_t>& r,
                            std::vector<std::int64_t>& neg_zero) {
  const std::uint64_t n_symbols = get_varint(payload, pos);
  CLEAR_CHECK_MSG(n_symbols > 0 && n_symbols <= 256,
                  "delta dense residual table has " << n_symbols
                                                    << " symbols");
  std::vector<std::uint64_t> syms(n_symbols);
  std::vector<std::uint32_t> freqs(n_symbols);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n_symbols; ++i) {
    syms[i] = get_varint(payload, pos);
    CLEAR_CHECK_MSG(i == 0 || syms[i] > syms[i - 1],
                    "delta dense residual symbols not ascending");
    const std::uint64_t f = get_varint(payload, pos);
    CLEAR_CHECK_MSG(f >= 1 && f <= kDenseTotal,
                    "delta dense residual frequency " << f
                                                      << " out of range");
    freqs[i] = static_cast<std::uint32_t>(f);
    sum += f;
  }
  CLEAR_CHECK_MSG(sum == kDenseTotal, "delta dense residual frequencies sum "
                                          << sum << ", want " << kDenseTotal);
  std::vector<std::uint32_t> cum(n_symbols + 1, 0);
  for (std::size_t i = 0; i < n_symbols; ++i) cum[i + 1] = cum[i] + freqs[i];
  // cum -> symbol-index lookup (16 KB, filled once per tensor): O(1) per
  // decoded symbol instead of a binary search in the loop that runs once
  // per weight.
  std::vector<std::uint8_t> lut(kDenseTotal);
  for (std::size_t i = 0; i < n_symbols; ++i)
    std::fill(lut.begin() + cum[i], lut.begin() + cum[i + 1],
              static_cast<std::uint8_t>(i));

  const std::uint64_t body_len = get_varint(payload, pos);
  CLEAR_CHECK_MSG(pos + body_len <= payload.size(),
                  "delta dense residual body truncated at offset " << pos);
  const std::string_view body = payload.substr(pos, body_len);
  pos += body_len;
  CLEAR_CHECK_MSG(body.size() >= 4,
                  "delta dense residual body too short for an rANS state");
  std::size_t bp = 0;
  std::uint32_t x = 0;
  for (int k = 0; k < 4; ++k)
    x = (x << 8) | static_cast<std::uint8_t>(body[bp++]);

  r.assign(n, 0);
  neg_zero.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t slot = x & (kDenseTotal - 1u);
    const std::size_t idx = lut[slot];
    neg_zero[i] = static_cast<std::int64_t>(syms[idx] & 1u);
    r[i] = unzigzag(syms[idx] >> 1);
    x = freqs[idx] * (x >> kDenseBits) + slot - cum[idx];
    while (x < kRansL) {
      // A corrupt body can run dry mid-stream; park the state in range so
      // the loop terminates — the reconstruction CRC rejects the result.
      if (bp >= body.size()) {
        x = kRansL;
        break;
      }
      x = (x << 8) | static_cast<std::uint8_t>(body[bp++]);
    }
  }
}

// -- Per-tensor encodings ----------------------------------------------------

bool all_finite(const Tensor& t) {
  for (const float v : t.flat())
    if (!std::isfinite(v)) return false;
  return true;
}

std::optional<std::string> try_half(const Tensor& base, const Tensor& ft) {
  const std::size_t n = ft.numel();
  std::vector<std::int64_t> r(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint16_t hb = half_from_float(ft[i]);
    if (f32_bits(float_from_half(hb)) != f32_bits(ft[i])) return std::nullopt;
    const std::uint16_t pred = half_from_float(base[i]);
    r[i] = std::int64_t(hb) - std::int64_t(pred);
  }
  return encode_residuals(r);
}

std::optional<std::string> try_grid8(const Tensor& base, const Tensor& ft) {
  if (!all_finite(ft) || !all_finite(base)) return std::nullopt;
  const std::size_t n = ft.numel();
  float max_abs = 0.0f;
  for (const float v : ft.flat()) max_abs = std::max(max_abs, std::abs(v));
  if (max_abs <= 0.0f) return std::nullopt;
  // The fine-tune's scale was max|pre-quant|/127, which is unrecoverable —
  // but the true scale maps the largest surviving magnitude back to ±127,
  // so it lies within a couple of ULPs of max|ft|/127. Try the neighbors
  // and keep the first that reproduces every element bitwise.
  const float s0 = max_abs / 127.0f;
  float candidates[5];
  candidates[0] = s0;
  candidates[1] = std::nextafterf(s0, 0.0f);
  candidates[2] = std::nextafterf(s0, std::numeric_limits<float>::infinity());
  candidates[3] = std::nextafterf(candidates[1], 0.0f);
  candidates[4] = std::nextafterf(candidates[2],
                                  std::numeric_limits<float>::infinity());
  for (const float s : candidates) {
    if (!(s > 0.0f) || !std::isfinite(s)) continue;
    const edge::QuantParams qp{s};
    bool exact = true;
    std::vector<std::int64_t> r(n);
    std::vector<std::int64_t> neg_zero(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::int8_t q = edge::quantize_value(ft[i], qp);
      if (f32_bits(edge::dequantize_value(q, qp)) != f32_bits(ft[i])) {
        // The SIMD fake-quant kernel emits -0.0f where the scalar
        // dequantize gives +0.0f; a sign-of-zero fixup stream keeps the
        // reconstruction bitwise.
        if (q == 0 && f32_bits(ft[i]) == 0x80000000u) {
          neg_zero[i] = 1;
        } else {
          exact = false;
          break;
        }
      }
      const std::int8_t pred = edge::quantize_value(base[i], qp);
      r[i] = std::int64_t(q) - std::int64_t(pred);
    }
    if (!exact) continue;
    // Mode 0: sparse bitmap+varint streams (residual, then sign-of-zero).
    // Mode 1: rANS-coded dense stream. Smallest wins.
    std::string sparse(1, '\0');
    sparse += encode_residuals(r);
    sparse += encode_residuals(neg_zero);
    std::string dense = encode_dense_residuals(r, neg_zero);
    std::string payload;
    artifact::put_u32(payload, f32_bits(s));
    if (!dense.empty() && dense.size() + 1 < sparse.size()) {
      payload += '\x01';
      payload += dense;
    } else {
      payload += sparse;
    }
    return payload;
  }
  return std::nullopt;
}

std::string encode_ulp(const Tensor& base, const Tensor& ft) {
  const std::size_t n = ft.numel();
  std::vector<std::int64_t> r(n);
  for (std::size_t i = 0; i < n; ++i)
    r[i] = std::int64_t(f32_bits(ft[i])) - std::int64_t(f32_bits(base[i]));
  return encode_residuals(r);
}

std::string encode_raw(const Tensor& ft) {
  std::string out;
  out.reserve(ft.numel() * 4);
  for (const float v : ft.flat()) artifact::put_u32(out, f32_bits(v));
  return out;
}

std::vector<float> decode_tensor(Enc enc, std::string_view payload,
                                 const Tensor& base, std::size_t n,
                                 const std::string& name) {
  std::vector<float> out(n);
  switch (enc) {
    case Enc::kSame: {
      CLEAR_CHECK_MSG(payload.empty(), "delta tensor '"
                                           << name
                                           << "': kSame carries payload");
      std::copy(base.flat().begin(), base.flat().end(), out.begin());
      break;
    }
    case Enc::kRaw: {
      CLEAR_CHECK_MSG(payload.size() == n * 4,
                      "delta tensor '" << name << "': raw payload is "
                                       << payload.size() << " bytes, want "
                                       << n * 4);
      std::size_t pos = 0;
      for (std::size_t i = 0; i < n; ++i)
        out[i] = f32_from_bits(artifact::get_u32(payload, pos, "delta raw"));
      break;
    }
    case Enc::kUlpDelta: {
      const std::vector<std::int64_t> r = decode_residuals(payload, n);
      for (std::size_t i = 0; i < n; ++i)
        out[i] = f32_from_bits(static_cast<std::uint32_t>(
            std::int64_t(f32_bits(base[i])) + r[i]));
      break;
    }
    case Enc::kHalf: {
      const std::vector<std::int64_t> r = decode_residuals(payload, n);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint16_t pred = half_from_float(base[i]);
        out[i] = float_from_half(
            static_cast<std::uint16_t>(std::int64_t(pred) + r[i]));
      }
      break;
    }
    case Enc::kGrid8: {
      std::size_t pos = 0;
      const edge::QuantParams qp{
          f32_from_bits(artifact::get_u32(payload, pos, "delta grid8"))};
      const std::uint8_t mode = artifact::get_u8(payload, pos, "delta grid8");
      std::vector<std::int64_t> r;
      std::vector<std::int64_t> neg_zero;
      if (mode == 0) {
        r = decode_residuals_at(payload, pos, n);
        neg_zero = decode_residuals_at(payload, pos, n);
      } else {
        CLEAR_CHECK_MSG(mode == 1, "delta tensor '"
                                       << name << "': unknown grid8 mode "
                                       << int(mode));
        decode_dense_residuals(payload, pos, n, r, neg_zero);
      }
      CLEAR_CHECK_MSG(pos == payload.size(),
                      "delta grid8 payload has " << (payload.size() - pos)
                                                 << " trailing bytes");
      // The SIMD quantize kernel is bit-identical to the scalar
      // edge::quantize_value the encoder used (the kernel sweep enforces
      // cross-ISA bit-identity); one bulk call replaces a per-weight
      // out-of-line call + libm nearbyint on the cold-load path.
      std::vector<std::int8_t> pred(n);
      kernels::active().quantize_i8(base.data(), qp.scale, pred.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        const auto q = static_cast<std::int8_t>(std::int64_t(pred[i]) + r[i]);
        out[i] = neg_zero[i] ? -0.0f : static_cast<float>(q) * qp.scale;
      }
      break;
    }
    default:
      CLEAR_CHECK_MSG(false, "delta tensor '"
                                 << name << "': unknown encoding "
                                 << static_cast<int>(enc));
  }
  return out;
}

}  // namespace

bool is_delta(const std::string& blob) {
  return artifact::Reader::is_artifact(blob);
}

namespace {

struct Meta {
  std::uint32_t codec_version = kDeltaCodecVersion;
  BaseRef base;
  std::uint64_t base_bytes = 0;
  std::uint32_t base_crc = 0;
  std::uint64_t full_bytes = 0;
  std::uint32_t full_crc = 0;
  std::uint64_t tensor_count = 0;
};

std::string encode_meta(const Meta& m) {
  std::string out;
  artifact::put_u32(out, m.codec_version);
  artifact::put_u8(out, static_cast<std::uint8_t>(m.base.kind));
  artifact::put_u64(out, m.base.id);
  artifact::put_u64(out, m.base_bytes);
  artifact::put_u32(out, m.base_crc);
  artifact::put_u64(out, m.full_bytes);
  artifact::put_u32(out, m.full_crc);
  artifact::put_u64(out, m.tensor_count);
  return out;
}

Meta decode_meta(std::string_view bytes) {
  Meta m;
  std::size_t pos = 0;
  m.codec_version = artifact::get_u32(bytes, pos, "delta.meta");
  CLEAR_CHECK_MSG(m.codec_version == kDeltaCodecVersion,
                  "unsupported delta codec version " << m.codec_version);
  const std::uint8_t kind = artifact::get_u8(bytes, pos, "delta.meta");
  CLEAR_CHECK_MSG(kind <= 1, "delta.meta names unknown base kind "
                                 << static_cast<int>(kind));
  m.base.kind = static_cast<BaseRef::Kind>(kind);
  m.base.id = artifact::get_u64(bytes, pos, "delta.meta");
  m.base_bytes = artifact::get_u64(bytes, pos, "delta.meta");
  m.base_crc = artifact::get_u32(bytes, pos, "delta.meta");
  m.full_bytes = artifact::get_u64(bytes, pos, "delta.meta");
  m.full_crc = artifact::get_u32(bytes, pos, "delta.meta");
  m.tensor_count = artifact::get_u64(bytes, pos, "delta.meta");
  CLEAR_CHECK_MSG(pos == bytes.size(),
                  "delta.meta has " << (bytes.size() - pos)
                                    << " trailing bytes");
  return m;
}

}  // namespace

BaseRef base_of(const std::string& blob) {
  const artifact::Reader reader(blob);
  return decode_meta(reader.block(kMetaBlock)).base;
}

std::optional<std::string> encode(const std::string& base_blob,
                                  const BaseRef& base,
                                  const std::string& ft_blob,
                                  EncodeStats* stats) {
  std::vector<NamedTensor> base_params;
  std::vector<NamedTensor> ft_params;
  try {
    base_params = parse_checkpoint(base_blob);
    ft_params = parse_checkpoint(ft_blob);
  } catch (const Error&) {
    return std::nullopt;  // Unparseable input: persist the full blob.
  }
  if (base_params.size() != ft_params.size()) return std::nullopt;
  for (std::size_t i = 0; i < ft_params.size(); ++i)
    if (base_params[i].name != ft_params[i].name ||
        !base_params[i].value.same_shape(ft_params[i].value))
      return std::nullopt;
  // The reconstruction target is the v2 re-serialization; a blob that does
  // not round-trip byte-identically (e.g. a legacy v1 input) stays full.
  if (serialize_v2(ft_params) != ft_blob) return std::nullopt;

  EncodeStats st;
  st.tensors = ft_params.size();
  st.full_bytes = ft_blob.size();
  std::string tensors_block;
  std::string values_block;
  for (std::size_t i = 0; i < ft_params.size(); ++i) {
    const Tensor& b = base_params[i].value;
    const Tensor& f = ft_params[i].value;
    const std::size_t n = f.numel();
    Enc enc = Enc::kRaw;
    std::string payload;
    if (n > 0 &&
        std::memcmp(b.data(), f.data(), n * sizeof(float)) == 0) {
      enc = Enc::kSame;
      ++st.same;
    } else {
      payload = encode_raw(f);
      std::string ulp = encode_ulp(b, f);
      if (ulp.size() < payload.size()) {
        enc = Enc::kUlpDelta;
        payload = std::move(ulp);
      }
      if (std::optional<std::string> half = try_half(b, f);
          half && half->size() < payload.size()) {
        enc = Enc::kHalf;
        payload = std::move(*half);
      }
      if (std::optional<std::string> grid = try_grid8(b, f);
          grid && grid->size() < payload.size()) {
        enc = Enc::kGrid8;
        payload = std::move(*grid);
      }
      switch (enc) {
        case Enc::kRaw: ++st.raw; break;
        case Enc::kUlpDelta: ++st.ulp; break;
        case Enc::kHalf: ++st.half; break;
        case Enc::kGrid8: ++st.grid8; break;
        default: break;
      }
    }
    artifact::put_u32(tensors_block,
                      static_cast<std::uint32_t>(ft_params[i].name.size()));
    tensors_block += ft_params[i].name;
    artifact::put_u8(tensors_block, static_cast<std::uint8_t>(enc));
    artifact::put_u64(tensors_block, n);
    artifact::put_u64(tensors_block, payload.size());
    values_block += payload;
  }

  Meta meta;
  meta.base = base;
  meta.base_bytes = base_blob.size();
  meta.base_crc = blob_fingerprint(base_blob);
  meta.full_bytes = ft_blob.size();
  meta.full_crc = blob_fingerprint(ft_blob);
  meta.tensor_count = ft_params.size();

  artifact::Writer writer;
  writer.add_block(kMetaBlock, encode_meta(meta));
  writer.add_block(kTensorsBlock, tensors_block);
  writer.add_block(kValuesBlock, values_block);
  std::string container = writer.finish();
  if (container.size() >= ft_blob.size()) return std::nullopt;

  // Mandatory self round-trip: the delta is only worth storing if applying
  // it to the base reproduces the full checkpoint byte-identically.
  try {
    if (decode(container, base_blob) != ft_blob) return std::nullopt;
  } catch (const Error&) {
    return std::nullopt;
  }
  st.delta_bytes = container.size();
  if (stats) *stats = st;
  return container;
}

std::string decode(const std::string& delta_blob,
                   const std::string& base_blob) {
  const artifact::Reader reader(delta_blob);
  const Meta meta = decode_meta(reader.block(kMetaBlock));
  const char* base_name =
      meta.base.kind == BaseRef::Kind::kGeneral ? "general" : "cluster";
  CLEAR_CHECK_MSG(
      meta.base_bytes == base_blob.size() &&
          meta.base_crc == blob_fingerprint(base_blob),
      "delta base mismatch: " << base_name << " " << meta.base.id
                              << " checkpoint is " << base_blob.size()
                              << " bytes, crc " << blob_fingerprint(base_blob)
                              << "; delta was encoded against "
                              << meta.base_bytes << " bytes, crc "
                              << meta.base_crc);
  // No payload-CRC pass on the base: the reconstruction check below
  // recomputes the full blob's CRC, so damage anywhere in the base still
  // fails loudly (see blob_fingerprint).
  const std::vector<NamedTensor> base_params =
      parse_checkpoint(base_blob, /*verify_crc=*/false);
  CLEAR_CHECK_MSG(meta.tensor_count == base_params.size(),
                  "delta has " << meta.tensor_count
                               << " tensor records, base checkpoint has "
                               << base_params.size());

  const std::string_view tensors = reader.block(kTensorsBlock);
  const std::string_view values = reader.block(kValuesBlock);
  std::vector<NamedTensor> out;
  out.reserve(base_params.size());
  std::size_t tpos = 0;
  std::size_t vpos = 0;
  for (std::size_t i = 0; i < base_params.size(); ++i) {
    const std::uint32_t name_len =
        artifact::get_u32(tensors, tpos, "delta.tensors");
    CLEAR_CHECK_MSG(tpos + name_len <= tensors.size(),
                    "delta.tensors truncated in record " << i << "'s name");
    const std::string name(tensors.substr(tpos, name_len));
    tpos += name_len;
    const std::uint8_t enc = artifact::get_u8(tensors, tpos, "delta.tensors");
    const std::uint64_t numel =
        artifact::get_u64(tensors, tpos, "delta.tensors");
    const std::uint64_t payload_len =
        artifact::get_u64(tensors, tpos, "delta.tensors");
    CLEAR_CHECK_MSG(name == base_params[i].name,
                    "delta tensor " << i << " is '" << name
                                    << "', base checkpoint has '"
                                    << base_params[i].name << "'");
    CLEAR_CHECK_MSG(numel == base_params[i].value.numel(),
                    "delta tensor '" << name << "' has " << numel
                                     << " elements, base has "
                                     << base_params[i].value.numel());
    CLEAR_CHECK_MSG(vpos + payload_len <= values.size(),
                    "delta.values truncated: tensor '"
                        << name << "' needs " << payload_len
                        << " bytes at offset " << vpos << ", block has "
                        << values.size());
    const std::string_view payload = values.substr(
        vpos, static_cast<std::size_t>(payload_len));
    vpos += static_cast<std::size_t>(payload_len);
    NamedTensor nt;
    nt.name = name;
    nt.value = Tensor(base_params[i].value.shape(),
                      decode_tensor(static_cast<Enc>(enc), payload,
                                    base_params[i].value,
                                    static_cast<std::size_t>(numel), name));
    out.push_back(std::move(nt));
  }
  CLEAR_CHECK_MSG(tpos == tensors.size(),
                  "delta.tensors has " << (tensors.size() - tpos)
                                       << " trailing bytes");
  CLEAR_CHECK_MSG(vpos == values.size(),
                  "delta.values has " << (values.size() - vpos)
                                      << " trailing bytes");

  std::string full = serialize_v2(out);
  CLEAR_CHECK_MSG(
      full.size() == meta.full_bytes &&
          blob_fingerprint(full) == meta.full_crc,
      "delta reconstruction failed its integrity check: rebuilt "
          << full.size() << " bytes, crc " << blob_fingerprint(full)
          << "; delta.meta recorded " << meta.full_bytes << " bytes, crc "
          << meta.full_crc);
  return full;
}

}  // namespace clear::serve::delta
