#include "shard/ring.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace clear::shard {

namespace {

// Hash-kind tags keep the vnode and key streams independent even where a
// shard id collides with a user id.
constexpr std::uint64_t kKindVnode = 0x51;
constexpr std::uint64_t kKindKey = 0x52;

std::uint64_t vnode_hash(std::uint64_t seed, std::uint32_t shard_id,
                         std::uint32_t replica) {
  return fault::mix(seed, kKindVnode, shard_id, replica);
}

std::uint64_t key_hash(std::uint64_t seed, std::uint64_t user_id) {
  return fault::mix(seed, kKindKey, user_id, 0);
}

}  // namespace

HashRing::HashRing(RingConfig config) : config_(config) {
  CLEAR_CHECK_MSG(config_.vnodes >= 1, "ring needs at least one vnode");
}

void HashRing::add_shard(std::uint32_t shard_id) {
  CLEAR_CHECK_MSG(!contains(shard_id),
                  "shard " << shard_id << " is already on the ring");
  shards_.insert(
      std::lower_bound(shards_.begin(), shards_.end(), shard_id), shard_id);
  points_.reserve(points_.size() + config_.vnodes);
  for (std::uint32_t r = 0; r < config_.vnodes; ++r)
    points_.emplace_back(vnode_hash(config_.seed, shard_id, r), shard_id);
  std::sort(points_.begin(), points_.end());
}

void HashRing::remove_shard(std::uint32_t shard_id) {
  CLEAR_CHECK_MSG(contains(shard_id),
                  "shard " << shard_id << " is not on the ring");
  shards_.erase(std::find(shards_.begin(), shards_.end(), shard_id));
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [shard_id](const auto& p) {
                                 return p.second == shard_id;
                               }),
                points_.end());
}

bool HashRing::contains(std::uint32_t shard_id) const {
  return std::binary_search(shards_.begin(), shards_.end(), shard_id);
}

std::uint32_t HashRing::owner(std::uint64_t user_id) const {
  CLEAR_CHECK_MSG(!points_.empty(), "owner() on an empty ring");
  const std::uint64_t h = key_hash(config_.seed, user_id);
  // First point strictly clockwise from h, wrapping to the smallest point.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), h,
      [](std::uint64_t v, const auto& p) { return v < p.first; });
  if (it == points_.end()) it = points_.begin();
  return it->second;
}

}  // namespace clear::shard
