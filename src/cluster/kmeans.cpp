#include "cluster/kmeans.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/obs.hpp"
#include "common/parallel.hpp"

namespace clear::cluster {

double squared_distance(const Point& a, const Point& b) {
  CLEAR_CHECK_MSG(a.size() == b.size(), "point dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double distance(const Point& a, const Point& b) {
  return std::sqrt(squared_distance(a, b));
}

Point mean_point(const std::vector<const Point*>& points) {
  CLEAR_CHECK_MSG(!points.empty(), "mean of empty point set");
  const std::size_t dim = points.front()->size();
  Point m(dim, 0.0);
  for (const Point* p : points) {
    CLEAR_CHECK_MSG(p->size() == dim, "point dimension mismatch in mean");
    for (std::size_t i = 0; i < dim; ++i) m[i] += (*p)[i];
  }
  const double n = static_cast<double>(points.size());
  for (double& v : m) v /= n;
  return m;
}

std::size_t nearest_centroid(const Point& p,
                             const std::vector<Point>& centroids) {
  CLEAR_CHECK_MSG(!centroids.empty(), "no centroids");
  std::size_t best = 0;
  double best_d = squared_distance(p, centroids[0]);
  for (std::size_t c = 1; c < centroids.size(); ++c) {
    const double d = squared_distance(p, centroids[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

namespace {

/// k-means++ seeding.
std::vector<Point> seed_plusplus(const std::vector<Point>& points,
                                 std::size_t k, Rng& rng) {
  // Without this guard the weighted-pick fallback below would compute
  // points.size() - 1 == SIZE_MAX and index out of bounds.
  CLEAR_CHECK_MSG(!points.empty(), "k-means++ seeding needs at least 1 point");
  std::vector<Point> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.uniform_index(points.size())]);
  std::vector<double> d2(points.size());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      for (const Point& c : centroids)
        best = std::min(best, squared_distance(points[i], c));
      d2[i] = best;
      total += best;
    }
    if (total <= 1e-30) {
      // Zero total weight (all points coincide with existing centroids):
      // every point is an equally good seed, so pick uniformly instead of
      // biasing toward any particular index.
      centroids.push_back(points[rng.uniform_index(points.size())]);
      continue;
    }
    double r = rng.uniform() * total;
    std::size_t pick = points.size();
    for (std::size_t i = 0; i < points.size(); ++i) {
      r -= d2[i];
      if (r <= 0) {
        pick = i;
        break;
      }
    }
    if (pick == points.size()) {
      // Floating-point residue left r marginally positive after consuming
      // every weight. The draw semantically landed in the final non-empty
      // slot of the weighted partition — take the last point with positive
      // weight rather than silently biasing toward the last index (which
      // may have zero weight, i.e. already be a centroid).
      pick = points.size() - 1;
      while (pick > 0 && d2[pick] <= 0.0) --pick;
    }
    centroids.push_back(points[pick]);
  }
  return centroids;
}

struct SingleRun {
  std::vector<Point> centroids;
  std::vector<std::size_t> assignment;
  double inertia = 0.0;
  std::size_t iterations = 0;
};

/// Points per parallel chunk. Fixed (never derived from the thread count) so
/// the chunked partial sums below associate identically at 1 or N threads.
constexpr std::size_t kPointGrain = 64;

SingleRun lloyd(const std::vector<Point>& points, std::size_t k, Rng& rng,
                const KMeansOptions& options) {
  SingleRun run;
  run.centroids = seed_plusplus(points, k, rng);
  run.assignment.assign(points.size(), 0);
  double prev_inertia = std::numeric_limits<double>::max();
  const std::size_t n = points.size();
  const std::size_t dim = points.front().size();
  const std::size_t n_chunks = (n + kPointGrain - 1) / kPointGrain;
  // Per-chunk partials, merged in ascending chunk order (the ordered-
  // reduction contract): same chunk layout and merge order at every thread
  // count, so the fit is bit-identical serial vs parallel.
  std::vector<double> chunk_inertia(n_chunks);
  std::vector<std::vector<Point>> chunk_sums(n_chunks);
  std::vector<std::vector<std::size_t>> chunk_counts(n_chunks);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    run.iterations = iter + 1;
    // Assign points and accumulate per-chunk centroid partials in one pass.
    parallel_for_chunks(
        0, n, kPointGrain,
        [&](std::size_t c, std::size_t lo, std::size_t hi) {
          double local_inertia = 0.0;
          std::vector<Point> sums(k, Point(dim, 0.0));
          std::vector<std::size_t> counts(k, 0);
          for (std::size_t i = lo; i < hi; ++i) {
            const std::size_t best = nearest_centroid(points[i], run.centroids);
            run.assignment[i] = best;
            local_inertia += squared_distance(points[i], run.centroids[best]);
            ++counts[best];
            for (std::size_t d = 0; d < dim; ++d) sums[best][d] += points[i][d];
          }
          chunk_inertia[c] = local_inertia;
          chunk_sums[c] = std::move(sums);
          chunk_counts[c] = std::move(counts);
        });
    double inertia = 0.0;
    std::vector<Point> sums(k, Point(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t c = 0; c < n_chunks; ++c) {
      inertia += chunk_inertia[c];
      for (std::size_t cc = 0; cc < k; ++cc) {
        counts[cc] += chunk_counts[c][cc];
        for (std::size_t d = 0; d < dim; ++d)
          sums[cc][d] += chunk_sums[c][cc][d];
      }
    }
    run.inertia = inertia;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        CLEAR_OBS_COUNT("kmeans.empty_cluster_reseeds", 1);
        // Re-seed an empty cluster from the point farthest from its centroid.
        double worst = -1.0;
        std::size_t worst_i = 0;
        for (std::size_t i = 0; i < points.size(); ++i) {
          const double d =
              squared_distance(points[i], run.centroids[run.assignment[i]]);
          if (d > worst) {
            worst = d;
            worst_i = i;
          }
        }
        run.centroids[c] = points[worst_i];
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d)
        run.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
    }
    if (prev_inertia - inertia <=
        options.tolerance * std::max(1.0, prev_inertia))
      break;
    prev_inertia = inertia;
  }
  return run;
}

}  // namespace

KMeansResult kmeans(const std::vector<Point>& points, std::size_t k, Rng& rng,
                    const KMeansOptions& options) {
  CLEAR_CHECK_MSG(k >= 1, "k must be >= 1");
  CLEAR_CHECK_MSG(points.size() >= k,
                  "k-means needs at least k points (" << points.size() << " < "
                                                      << k << ")");
  CLEAR_CHECK_MSG(options.restarts >= 1, "need at least one restart");
  const std::size_t dim = points.front().size();
  for (const Point& p : points)
    CLEAR_CHECK_MSG(p.size() == dim, "inconsistent point dimensions");

  CLEAR_OBS_SPAN("kmeans");
  CLEAR_OBS_COUNT("kmeans.fits", 1);
  CLEAR_OBS_COUNT("kmeans.points", points.size());
  SingleRun best;
  best.inertia = std::numeric_limits<double>::max();
  for (std::size_t r = 0; r < options.restarts; ++r) {
    SingleRun run = lloyd(points, k, rng, options);
    CLEAR_OBS_COUNT("kmeans.restarts", 1);
    CLEAR_OBS_COUNT("kmeans.iterations", run.iterations);
    if (run.inertia < best.inertia) best = std::move(run);
  }
  KMeansResult result;
  result.centroids = std::move(best.centroids);
  result.assignment = std::move(best.assignment);
  result.inertia = best.inertia;
  result.iterations = best.iterations;
  return result;
}

}  // namespace clear::cluster
