// Cluster validity indices used to select the number of clusters K
// (paper §IV-A: "the optimal number of clusters K using standard
// techniques"; K = 4 gave "the best balance between intra-cluster similarity
// and inter-cluster separation").
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/kmeans.hpp"

namespace clear::cluster {

/// Mean silhouette coefficient over all points. Requires >= 2 clusters with
/// >= 1 member each; singleton points contribute 0. Range [-1, 1].
double silhouette(const std::vector<Point>& points,
                  const std::vector<std::size_t>& assignment, std::size_t k);

/// Davies-Bouldin index (lower is better). Returns +inf-like large value
/// when degenerate.
double davies_bouldin(const std::vector<Point>& points,
                      const std::vector<std::size_t>& assignment,
                      std::size_t k);

/// Within-cluster sum of squares for an elbow curve.
double within_cluster_sse(const std::vector<Point>& points,
                          const std::vector<std::size_t>& assignment,
                          const std::vector<Point>& centroids);

struct KSelection {
  std::size_t best_k = 2;
  std::vector<double> silhouettes;  ///< Indexed by k - k_min.
  std::vector<double> inertias;     ///< Indexed by k - k_min.
};

/// Sweep k in [k_min, k_max], running k-means for each, and pick the k with
/// the highest silhouette.
KSelection select_k(const std::vector<Point>& points, std::size_t k_min,
                    std::size_t k_max, Rng& rng,
                    const KMeansOptions& options = {});

}  // namespace clear::cluster
