#include "wemac/dataset.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "features/feature_map.hpp"
#include "tensor/serialize.hpp"
#include "wemac/archetype.hpp"

namespace clear::wemac {

std::string WemacConfig::cache_key() const {
  // kGeneratorVersion must be bumped whenever the synthesis code or the
  // archetype tables change, so stale caches are never reused.
  constexpr int kGeneratorVersion = 10;
  std::ostringstream os;
  os << "v" << kGeneratorVersion << "_s" << seed << "_n" << n_volunteers
     << "_t" << trials_per_volunteer
     << "_w" << windows_per_trial << "_sec" << window_seconds << "_ff"
     << fear_fraction << "_r" << rates.bvp_hz << "-" << rates.gsr_hz << "-"
     << rates.skt_hz;
  return os.str();
}

WemacDataset::WemacDataset(WemacConfig config,
                           std::vector<VolunteerMeta> volunteers,
                           std::vector<Sample> samples)
    : config_(std::move(config)),
      volunteers_(std::move(volunteers)),
      samples_(std::move(samples)) {
  build_index();
}

void WemacDataset::build_index() {
  by_volunteer_.assign(volunteers_.size(), {});
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const std::size_t v = samples_[i].volunteer_id;
    CLEAR_CHECK_MSG(v < volunteers_.size(), "sample has invalid volunteer id");
    by_volunteer_[v].push_back(i);
  }
}

const std::vector<std::size_t>& WemacDataset::samples_of(
    std::size_t volunteer_id) const {
  CLEAR_CHECK_MSG(volunteer_id < by_volunteer_.size(),
                  "volunteer id out of range");
  return by_volunteer_[volunteer_id];
}

std::size_t WemacDataset::feature_dim() const {
  CLEAR_CHECK_MSG(!samples_.empty(), "empty dataset");
  return samples_.front().feature_map.extent(0);
}

namespace {

/// Inject faults into one channel and repair it the way an edge device
/// would: hold-last gap fill plus clamping to rails derived from the clean
/// signal's range (legitimate dynamics survive, saturation and spikes get
/// pinned back). Called only when the spec can fire, so the clean path is
/// byte-for-byte the historical generator.
void fault_and_sanitize(std::vector<double>& signal, double rate_hz,
                        std::uint64_t stream_id,
                        const fault::FaultSpec& faults,
                        fault::FaultStats* stats) {
  double lo = signal.empty() ? 0.0 : signal[0];
  double hi = lo;
  for (const double v : signal) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double margin = 0.5 * std::max(hi - lo, 1e-9);
  const fault::FaultStats s = fault::inject(signal, rate_hz, stream_id, faults);
  if (stats) stats->merge(s);
  fault::sanitize(signal, fault::GapFill::kHoldLast, lo - margin, hi + margin);
}

WemacDataset generate_wemac_impl(const WemacConfig& config,
                                 const fault::FaultSpec* faults,
                                 fault::FaultStats* stats) {
  CLEAR_CHECK_MSG(config.n_volunteers >= kNumArchetypes,
                  "need at least one volunteer per archetype");
  const auto& archetypes = default_archetypes();
  const auto& weights = default_archetype_weights();
  Rng master(config.seed);

  // Assign archetypes: guarantee each archetype at least one member, then
  // fill the rest by weighted sampling, so cluster structure always exists.
  std::vector<std::size_t> assignment(config.n_volunteers);
  for (std::size_t a = 0; a < kNumArchetypes; ++a) assignment[a] = a;
  const std::vector<double> w(weights.begin(), weights.end());
  for (std::size_t v = kNumArchetypes; v < config.n_volunteers; ++v)
    assignment[v] = master.categorical(w);
  // Shuffle so volunteer id carries no archetype information.
  const std::vector<std::size_t> perm = master.permutation(config.n_volunteers);
  std::vector<std::size_t> shuffled(config.n_volunteers);
  for (std::size_t v = 0; v < config.n_volunteers; ++v)
    shuffled[v] = assignment[perm[v]];

  std::vector<VolunteerMeta> volunteers;
  std::vector<Sample> samples;
  volunteers.reserve(config.n_volunteers);
  samples.reserve(config.n_volunteers * config.trials_per_volunteer);

  for (std::size_t v = 0; v < config.n_volunteers; ++v) {
    Rng vol_rng = master.fork(1000 + v);
    const std::size_t arch = shuffled[v];
    VolunteerMeta meta;
    meta.id = v;
    meta.archetype_id = arch;
    meta.profile = sample_profile(archetypes[arch], v, arch, vol_rng);
    const std::vector<Stimulus> schedule =
        make_schedule(config.trials_per_volunteer, config.fear_fraction,
                      config.trial_seconds(), vol_rng);
    for (std::size_t trial = 0; trial < schedule.size(); ++trial) {
      Rng trial_rng = vol_rng.fork(77000 + trial);
      TrialSignals signals = synthesize_trial(
          meta.profile, schedule[trial], config.rates, trial_rng);
      if (faults != nullptr && faults->any()) {
        // Stream ids mix (volunteer, trial, channel) so every channel of
        // every trial draws independent fault decisions from one spec.
        fault_and_sanitize(signals.bvp, config.rates.bvp_hz,
                           fault::mix(0x57454D, v, trial, 1), *faults, stats);
        fault_and_sanitize(signals.gsr, config.rates.gsr_hz,
                           fault::mix(0x57454D, v, trial, 2), *faults, stats);
        fault_and_sanitize(signals.skt, config.rates.skt_hz,
                           fault::mix(0x57454D, v, trial, 3), *faults, stats);
      }
      const std::vector<features::PhysioWindow> windows =
          slice_windows(signals, config.window_seconds);
      CLEAR_CHECK_MSG(windows.size() >= config.windows_per_trial,
                      "trial produced too few windows");
      std::vector<std::vector<double>> columns;
      columns.reserve(config.windows_per_trial);
      for (std::size_t wdx = 0; wdx < config.windows_per_trial; ++wdx)
        columns.push_back(features::extract_window_features(windows[wdx]));
      Sample s;
      s.volunteer_id = v;
      s.trial_id = trial;
      s.emotion = schedule[trial].emotion;
      s.label = is_fear(schedule[trial].emotion) ? 1 : 0;
      s.feature_map = features::build_feature_map(columns);
      samples.push_back(std::move(s));
    }
    volunteers.push_back(std::move(meta));
  }
  return WemacDataset(config, std::move(volunteers), std::move(samples));
}

}  // namespace

WemacDataset generate_wemac(const WemacConfig& config) {
  return generate_wemac_impl(config, nullptr, nullptr);
}

WemacDataset generate_wemac(const WemacConfig& config,
                            const fault::FaultSpec& faults,
                            fault::FaultStats* stats) {
  return generate_wemac_impl(config, &faults, stats);
}

namespace {
constexpr std::uint64_t kDatasetMagic = 0x57454D4143763101ull;  // "WEMACv1".

void write_profile(std::ostream& os, const VolunteerProfile& p) {
  io::write_u64(os, p.volunteer_id);
  io::write_u64(os, p.archetype_id);
  for (const double v :
       {p.hr_base, p.hr_fear_delta, p.hr_arousal_delta, p.hrv_sd,
        p.hrv_fear_scale, p.resp_rate, p.bvp_amp, p.bvp_amp_fear_scale,
        p.scr_rate_base, p.scr_rate_fear, p.scr_amp, p.scr_amp_fear_scale,
        p.gsr_tonic, p.gsr_fear_slope, p.skt_base, p.skt_fear_drop,
        p.bvp_noise, p.gsr_noise, p.skt_noise, p.cardiac_gain, p.gsr_gain,
        p.skt_gain})
    io::write_f64(os, v);
}

VolunteerProfile read_profile(std::istream& is) {
  VolunteerProfile p;
  p.volunteer_id = io::read_u64(is);
  p.archetype_id = io::read_u64(is);
  double* fields[] = {
      &p.hr_base,         &p.hr_fear_delta,     &p.hr_arousal_delta,
      &p.hrv_sd,          &p.hrv_fear_scale,    &p.resp_rate,
      &p.bvp_amp,         &p.bvp_amp_fear_scale, &p.scr_rate_base,
      &p.scr_rate_fear,   &p.scr_amp,           &p.scr_amp_fear_scale,
      &p.gsr_tonic,       &p.gsr_fear_slope,    &p.skt_base,
      &p.skt_fear_drop,   &p.bvp_noise,         &p.gsr_noise,
      &p.skt_noise,       &p.cardiac_gain,      &p.gsr_gain,
      &p.skt_gain};
  for (double* f : fields) *f = io::read_f64(is);
  return p;
}
}  // namespace

void save_dataset(const WemacDataset& dataset, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  CLEAR_CHECK_MSG(os.good(), "cannot open dataset file for writing: " << path);
  io::write_u64(os, kDatasetMagic);
  io::write_string(os, dataset.config().cache_key());
  const WemacConfig& c = dataset.config();
  io::write_u64(os, c.seed);
  io::write_u64(os, c.n_volunteers);
  io::write_u64(os, c.trials_per_volunteer);
  io::write_u64(os, c.windows_per_trial);
  io::write_f64(os, c.window_seconds);
  io::write_f64(os, c.fear_fraction);
  io::write_f64(os, c.rates.bvp_hz);
  io::write_f64(os, c.rates.gsr_hz);
  io::write_f64(os, c.rates.skt_hz);
  io::write_u64(os, dataset.volunteers().size());
  for (const VolunteerMeta& m : dataset.volunteers()) {
    io::write_u64(os, m.id);
    io::write_u64(os, m.archetype_id);
    write_profile(os, m.profile);
  }
  io::write_u64(os, dataset.samples().size());
  for (const Sample& s : dataset.samples()) {
    io::write_u64(os, s.volunteer_id);
    io::write_u64(os, s.trial_id);
    io::write_u64(os, static_cast<std::uint64_t>(s.emotion));
    io::write_u64(os, static_cast<std::uint64_t>(s.label));
    io::write_tensor(os, s.feature_map);
  }
  CLEAR_CHECK_MSG(os.good(), "IO error writing dataset: " << path);
}

WemacDataset load_dataset(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  CLEAR_CHECK_MSG(is.good(), "cannot open dataset file: " << path);
  CLEAR_CHECK_MSG(io::read_u64(is) == kDatasetMagic, "bad dataset magic");
  (void)io::read_string(is);  // cache key (informational)
  WemacConfig c;
  c.seed = io::read_u64(is);
  c.n_volunteers = io::read_u64(is);
  c.trials_per_volunteer = io::read_u64(is);
  c.windows_per_trial = io::read_u64(is);
  c.window_seconds = io::read_f64(is);
  c.fear_fraction = io::read_f64(is);
  c.rates.bvp_hz = io::read_f64(is);
  c.rates.gsr_hz = io::read_f64(is);
  c.rates.skt_hz = io::read_f64(is);
  const std::uint64_t n_vol = io::read_u64(is);
  CLEAR_CHECK_MSG(n_vol == c.n_volunteers, "dataset volunteer count mismatch");
  std::vector<VolunteerMeta> volunteers(n_vol);
  for (auto& m : volunteers) {
    m.id = io::read_u64(is);
    m.archetype_id = io::read_u64(is);
    m.profile = read_profile(is);
  }
  const std::uint64_t n_samples = io::read_u64(is);
  std::vector<Sample> samples(n_samples);
  for (auto& s : samples) {
    s.volunteer_id = io::read_u64(is);
    s.trial_id = io::read_u64(is);
    s.emotion = static_cast<Emotion>(io::read_u64(is));
    s.label = static_cast<int>(io::read_u64(is));
    s.feature_map = io::read_tensor(is);
  }
  return WemacDataset(std::move(c), std::move(volunteers), std::move(samples));
}

WemacDataset generate_or_load(const WemacConfig& config,
                              const std::string& cache_dir) {
  namespace fs = std::filesystem;
  const fs::path dir(cache_dir);
  const fs::path file = dir / ("wemac_" + config.cache_key() + ".bin");
  if (fs::exists(file)) {
    try {
      WemacDataset d = load_dataset(file.string());
      CLEAR_INFO("loaded cached WEMAC features from " << file.string());
      return d;
    } catch (const Error& e) {
      CLEAR_WARN("dataset cache unreadable (" << e.what()
                                              << "); regenerating");
    }
  }
  WemacDataset d = generate_wemac(config);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (!ec) {
    try {
      save_dataset(d, file.string());
      CLEAR_INFO("cached WEMAC features at " << file.string());
    } catch (const Error& e) {
      CLEAR_WARN("could not write dataset cache: " << e.what());
    }
  }
  return d;
}

}  // namespace clear::wemac
