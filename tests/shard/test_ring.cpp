#include "shard/ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "common/error.hpp"

namespace clear::shard {
namespace {

/// Owners for users [0, n) under one ring.
std::vector<std::uint32_t> owners(const HashRing& ring, std::uint64_t n) {
  std::vector<std::uint32_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t u = 0; u < n; ++u) out.push_back(ring.owner(u));
  return out;
}

HashRing ring_of(std::uint32_t n_shards, std::uint32_t vnodes = 128,
                 std::uint64_t seed = 1) {
  RingConfig rc;
  rc.vnodes = vnodes;
  rc.seed = seed;
  HashRing ring(rc);
  for (std::uint32_t s = 0; s < n_shards; ++s) ring.add_shard(s);
  return ring;
}

// The coordinator's default placement (seed=1, vnodes=128) is a wire
// contract: a restarted coordinator must re-derive its predecessor's
// mapping, and the shard soak's kill scripts grep placements printed from
// exactly this table. Pinned against live multi-shard runs.
TEST(HashRing, GoldenPlacementIsPinned) {
  const HashRing two = ring_of(2);
  const std::vector<std::uint32_t> expect2 = {1, 1, 0, 1, 1, 0};
  EXPECT_EQ(owners(two, 6), expect2);

  const HashRing three = ring_of(3);
  const std::vector<std::uint32_t> expect3 = {1, 1, 2, 1, 1, 2};
  EXPECT_EQ(owners(three, 6), expect3);
}

TEST(HashRing, DeterministicAcrossInstancesAndInsertionOrder) {
  RingConfig rc;
  rc.vnodes = 64;
  rc.seed = 9;
  HashRing a(rc);
  HashRing b(rc);
  for (std::uint32_t s = 0; s < 5; ++s) a.add_shard(s);
  // Same membership reached through a different history.
  for (std::uint32_t s = 5; s-- > 0;) b.add_shard(s);
  b.add_shard(7);
  b.remove_shard(7);
  EXPECT_EQ(owners(a, 4096), owners(b, 4096));
}

TEST(HashRing, BalanceWithinBoundAtSixtyFourVnodes) {
  // The documented guarantee: at >= 64 vnodes per shard no shard's key
  // share strays past 2x (or below half of) its fair share.
  for (std::uint32_t n_shards : {2u, 3u, 5u, 8u}) {
    for (std::uint64_t seed : {1ull, 42ull, 1337ull}) {
      const HashRing ring = ring_of(n_shards, 64, seed);
      std::map<std::uint32_t, std::uint64_t> load;
      const std::uint64_t kUsers = 20000;
      for (std::uint64_t u = 0; u < kUsers; ++u) ++load[ring.owner(u)];
      const double fair = static_cast<double>(kUsers) / n_shards;
      for (std::uint32_t s = 0; s < n_shards; ++s) {
        const double share = static_cast<double>(load[s]);
        EXPECT_LT(share, 2.0 * fair)
            << "shard " << s << " of " << n_shards << " seed " << seed;
        EXPECT_GT(share, 0.5 * fair)
            << "shard " << s << " of " << n_shards << " seed " << seed;
      }
    }
  }
}

TEST(HashRing, AddingAShardOnlyMovesKeysToIt) {
  HashRing ring = ring_of(4);
  const std::vector<std::uint32_t> before = owners(ring, 8192);
  ring.add_shard(4);
  const std::vector<std::uint32_t> after = owners(ring, 8192);
  std::uint64_t moved = 0;
  for (std::size_t u = 0; u < before.size(); ++u) {
    if (after[u] == before[u]) continue;
    EXPECT_EQ(after[u], 4u) << "user " << u << " reshuffled to a survivor";
    ++moved;
  }
  // The newcomer takes roughly 1/5th of the keyspace — and not nothing.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(static_cast<double>(moved), 2.0 * 8192.0 / 5.0);
}

TEST(HashRing, RemovingAShardOnlyMovesItsOwnKeys) {
  HashRing ring = ring_of(4);
  const std::vector<std::uint32_t> before = owners(ring, 8192);
  ring.remove_shard(2);
  const std::vector<std::uint32_t> after = owners(ring, 8192);
  for (std::size_t u = 0; u < before.size(); ++u) {
    if (before[u] == 2u) {
      EXPECT_NE(after[u], 2u) << "user " << u << " still on the removed shard";
    } else {
      EXPECT_EQ(after[u], before[u]) << "user " << u << " moved needlessly";
    }
  }
}

TEST(HashRing, MembershipBookkeeping) {
  HashRing ring = ring_of(3);
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_TRUE(ring.contains(1));
  EXPECT_FALSE(ring.contains(3));
  ring.remove_shard(1);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_FALSE(ring.contains(1));
  const std::vector<std::uint32_t> expect = {0, 2};
  EXPECT_EQ(ring.shards(), expect);
}

TEST(HashRing, DuplicateAddAndAbsentRemoveThrow) {
  HashRing ring = ring_of(2);
  EXPECT_THROW(ring.add_shard(1), Error);
  EXPECT_THROW(ring.remove_shard(5), Error);
}

TEST(HashRing, OwnerOnEmptyRingThrows) {
  HashRing ring{RingConfig{}};
  EXPECT_THROW(ring.owner(0), Error);
}

}  // namespace
}  // namespace clear::shard
