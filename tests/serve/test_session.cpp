#include "serve/session.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/model.hpp"

namespace clear::serve {
namespace {

SessionPolicy quick_policy() {
  SessionPolicy p;
  p.ca_windows = 2;
  p.ft_maps = 2;
  p.degrade_after = 3;
  p.recover_after = 3;
  return p;
}

Session make_session(SessionPolicy p = quick_policy()) {
  return Session(1, p, edge::Precision::kFp32);
}

cluster::Point obs(double v) { return cluster::Point{v, v}; }

Tensor map_of(float v) {
  Tensor m({2, 2});
  for (float& x : m.flat()) x = v;
  return m;
}

std::unique_ptr<edge::EdgeEngine> tiny_engine() {
  nn::CnnLstmConfig c;
  c.feature_dim = 8;
  c.window_count = 4;
  c.conv1_channels = 2;
  c.conv2_channels = 2;
  c.lstm_hidden = 3;
  c.dropout = 0.0;
  Rng rng(1);
  return std::make_unique<edge::EdgeEngine>(nn::build_cnn_lstm(c, rng),
                                            edge::EngineConfig{});
}

TEST(Session, ColdStartWalksAssigningToAssigned) {
  Session s = make_session();
  EXPECT_EQ(s.state(), SessionState::kCold);
  EXPECT_FALSE(s.assigned());
  s.add_observation(obs(0.1));
  EXPECT_EQ(s.state(), SessionState::kAssigning);
  EXPECT_FALSE(s.ca_ready());
  s.add_observation(obs(0.2));
  EXPECT_TRUE(s.ca_ready());
  EXPECT_EQ(s.observations().size(), 2u);
  s.set_assignment(3);
  EXPECT_EQ(s.state(), SessionState::kAssigned);
  EXPECT_EQ(s.cluster(), 3u);
  EXPECT_TRUE(s.assigned());
  // The CA buffer is dropped once the verdict lands.
  EXPECT_TRUE(s.observations().empty());
}

TEST(Session, StateMachineRejectsOutOfOrderTransitions) {
  Session s = make_session();
  EXPECT_THROW(s.set_assignment(0), Error);
  EXPECT_THROW(s.begin_finetune(), Error);
  EXPECT_THROW(s.abort_finetune(), Error);
  s.add_observation(obs(0.1));
  s.add_observation(obs(0.2));
  s.set_assignment(0);
  EXPECT_THROW(s.add_observation(obs(0.3)), Error);
  EXPECT_THROW(s.set_personal_engine(tiny_engine()), Error);
}

TEST(Session, FineTuneWaitsForBothClasses) {
  Session s = make_session();
  s.add_observation(obs(0.1));
  s.add_observation(obs(0.2));
  s.set_assignment(0);
  s.add_labelled(map_of(0.0f), 0);
  s.add_labelled(map_of(0.1f), 0);
  // Enough maps, but single-class — fine-tuning on it would collapse the
  // classifier, so the session keeps waiting.
  EXPECT_FALSE(s.ft_ready());
  s.add_labelled(map_of(1.0f), 1);
  EXPECT_TRUE(s.ft_ready());
}

TEST(Session, PersonalizationLifecycle) {
  Session s = make_session();
  s.add_observation(obs(0.1));
  s.add_observation(obs(0.2));
  s.set_assignment(1);
  s.add_labelled(map_of(0.0f), 0);
  s.add_labelled(map_of(1.0f), 1);
  ASSERT_TRUE(s.ft_ready());
  s.begin_finetune();
  EXPECT_EQ(s.state(), SessionState::kFineTuning);
  EXPECT_TRUE(s.assigned());
  s.set_personal_engine(tiny_engine());
  EXPECT_EQ(s.state(), SessionState::kPersonalized);
  EXPECT_NE(s.personal_engine(), nullptr);
  EXPECT_TRUE(s.labelled().empty());
  // Once personalized, labelled maps are no longer buffered.
  s.add_labelled(map_of(0.5f), 1);
  EXPECT_TRUE(s.labelled().empty());
}

TEST(Session, AbortedFineTuneStopsRetrying) {
  Session s = make_session();
  s.add_observation(obs(0.1));
  s.add_observation(obs(0.2));
  s.set_assignment(0);
  s.add_labelled(map_of(0.0f), 0);
  s.add_labelled(map_of(1.0f), 1);
  s.begin_finetune();
  s.abort_finetune();  // e.g. the cluster checkpoint turned out unusable.
  EXPECT_EQ(s.state(), SessionState::kAssigned);
  // The known-bad checkpoint is not retried: labelled maps stop buffering.
  s.add_labelled(map_of(0.0f), 0);
  s.add_labelled(map_of(1.0f), 1);
  EXPECT_FALSE(s.ft_ready());
  EXPECT_TRUE(s.labelled().empty());
}

TEST(Session, DegradeNeedsConsecutiveBadRequests) {
  Session s = make_session();
  EXPECT_EQ(s.note_quality(0.2), Session::QualityEvent::kNone);
  EXPECT_EQ(s.note_quality(0.2), Session::QualityEvent::kNone);
  // A good request resets the streak.
  EXPECT_EQ(s.note_quality(0.9), Session::QualityEvent::kNone);
  EXPECT_EQ(s.note_quality(0.2), Session::QualityEvent::kNone);
  EXPECT_EQ(s.note_quality(0.2), Session::QualityEvent::kNone);
  EXPECT_FALSE(s.degraded());
  EXPECT_EQ(s.note_quality(0.2), Session::QualityEvent::kDegraded);
  EXPECT_TRUE(s.degraded());
}

TEST(Session, RecoveryRestoresExactPreDegradationState) {
  Session s = make_session();
  s.add_observation(obs(0.1));
  s.add_observation(obs(0.2));
  s.set_assignment(2);
  for (int i = 0; i < 3; ++i) s.note_quality(0.1);
  EXPECT_EQ(s.state(), SessionState::kDegraded);
  // A degraded-but-assigned session still remembers its cluster...
  EXPECT_TRUE(s.assigned());
  EXPECT_EQ(s.cluster(), 2u);
  // ...and recovery puts it right back on it.
  EXPECT_EQ(s.note_quality(0.9), Session::QualityEvent::kNone);
  EXPECT_EQ(s.note_quality(0.9), Session::QualityEvent::kNone);
  EXPECT_EQ(s.note_quality(0.9), Session::QualityEvent::kRecovered);
  EXPECT_EQ(s.state(), SessionState::kAssigned);
}

TEST(Session, ColdSessionDegradesAndRecoversCold) {
  Session s = make_session();
  for (int i = 0; i < 3; ++i) s.note_quality(0.1);
  EXPECT_TRUE(s.degraded());
  EXPECT_FALSE(s.assigned());  // Nothing saved worth routing to.
  for (int i = 0; i < 3; ++i) s.note_quality(0.9);
  EXPECT_EQ(s.state(), SessionState::kCold);
}

TEST(Session, RecoveryStreakMustBeConsecutive) {
  Session s = make_session();
  for (int i = 0; i < 3; ++i) s.note_quality(0.1);
  s.note_quality(0.9);
  s.note_quality(0.9);
  s.note_quality(0.1);  // Streak broken; still degraded.
  EXPECT_TRUE(s.degraded());
  for (int i = 0; i < 3; ++i) s.note_quality(0.9);
  EXPECT_FALSE(s.degraded());
}

TEST(Session, PolicyValidation) {
  SessionPolicy p = quick_policy();
  p.ca_windows = 0;
  EXPECT_THROW(make_session(p), Error);
  p = quick_policy();
  p.ft_maps = 1;  // Fine-tuning needs at least two samples.
  EXPECT_THROW(make_session(p), Error);
  p = quick_policy();
  p.degrade_after = 0;
  EXPECT_THROW(make_session(p), Error);
}

TEST(SessionManager, AdmissionControlCapsTheTable) {
  SessionManager m(quick_policy(), {edge::Precision::kFp32}, 2);
  Session* a = m.get_or_create(10);
  Session* b = m.get_or_create(20);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Table full: new users are refused, existing ones still served.
  EXPECT_EQ(m.get_or_create(30), nullptr);
  EXPECT_EQ(m.get_or_create(10), a);
  EXPECT_EQ(m.find(20), b);
  EXPECT_EQ(m.find(30), nullptr);
  EXPECT_EQ(m.size(), 2u);
}

TEST(SessionManager, UsersCycleThroughPrecisions) {
  SessionManager m(quick_policy(),
                   {edge::Precision::kFp32, edge::Precision::kFp16}, 16);
  EXPECT_EQ(m.get_or_create(0)->precision(), edge::Precision::kFp32);
  EXPECT_EQ(m.get_or_create(1)->precision(), edge::Precision::kFp16);
  EXPECT_EQ(m.get_or_create(2)->precision(), edge::Precision::kFp32);
}

TEST(SessionManager, SessionsReportInUserIdOrder) {
  SessionManager m(quick_policy(), {edge::Precision::kFp32}, 16);
  m.get_or_create(9);
  m.get_or_create(3);
  m.get_or_create(7);
  const std::vector<const Session*> all = m.sessions();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->user_id(), 3u);
  EXPECT_EQ(all[1]->user_id(), 7u);
  EXPECT_EQ(all[2]->user_id(), 9u);
}

}  // namespace
}  // namespace clear::serve
