#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace clear::nn {
namespace {

TEST(Loss, UniformLogitsGiveLogC) {
  const Tensor logits = Tensor::zeros({4, 3});
  const LossResult r = softmax_cross_entropy(logits, {0, 1, 2, 0});
  EXPECT_NEAR(r.loss, std::log(3.0), 1e-6);
}

TEST(Loss, ConfidentCorrectIsNearZero) {
  Tensor logits({1, 2}, {20.0f, -20.0f});
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_LT(r.loss, 1e-6);
}

TEST(Loss, ConfidentWrongIsLarge) {
  Tensor logits({1, 2}, {20.0f, -20.0f});
  const LossResult r = softmax_cross_entropy(logits, {1});
  EXPECT_GT(r.loss, 10.0);
}

TEST(Loss, ProbabilitiesAreSoftmax) {
  Tensor logits({1, 3}, {1.0f, 2.0f, 3.0f});
  const LossResult r = softmax_cross_entropy(logits, {0});
  float total = 0.0f;
  for (std::size_t j = 0; j < 3; ++j) total += r.probabilities.at2(0, j);
  EXPECT_NEAR(total, 1.0f, 1e-6f);
  EXPECT_GT(r.probabilities.at2(0, 2), r.probabilities.at2(0, 0));
}

TEST(Loss, GradientIsPMinusYOverN) {
  Tensor logits({2, 2}, {0.0f, 0.0f, 0.0f, 0.0f});
  const LossResult r = softmax_cross_entropy(logits, {0, 1});
  // p = 0.5 everywhere; grad = (p - onehot)/N.
  EXPECT_NEAR(r.grad_logits.at2(0, 0), (0.5f - 1.0f) / 2.0f, 1e-6f);
  EXPECT_NEAR(r.grad_logits.at2(0, 1), 0.5f / 2.0f, 1e-6f);
  EXPECT_NEAR(r.grad_logits.at2(1, 1), (0.5f - 1.0f) / 2.0f, 1e-6f);
}

TEST(Loss, GradientRowsSumToZero) {
  Rng rng(1);
  Tensor logits({5, 4});
  logits.fill_normal(rng, 0.0f, 2.0f);
  const LossResult r = softmax_cross_entropy(logits, {0, 1, 2, 3, 0});
  for (std::size_t i = 0; i < 5; ++i) {
    float s = 0.0f;
    for (std::size_t j = 0; j < 4; ++j) s += r.grad_logits.at2(i, j);
    EXPECT_NEAR(s, 0.0f, 1e-6f);
  }
}

TEST(Loss, NumericalGradientMatches) {
  Rng rng(2);
  Tensor logits({3, 3});
  logits.fill_normal(rng, 0.0f, 1.0f);
  const std::vector<std::size_t> labels = {0, 2, 1};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits;
    lp[i] += eps;
    Tensor lm = logits;
    lm[i] -= eps;
    const double numeric = (softmax_cross_entropy(lp, labels).loss -
                            softmax_cross_entropy(lm, labels).loss) /
                           (2.0 * eps);
    EXPECT_NEAR(r.grad_logits[i], numeric, 1e-3);
  }
}

TEST(Loss, ExtremeLogitsStayFinite) {
  Tensor logits({1, 2}, {1000.0f, -1000.0f});
  const LossResult r = softmax_cross_entropy(logits, {1});
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_TRUE(std::isfinite(r.grad_logits[0]));
}

TEST(Loss, Validation) {
  EXPECT_THROW(softmax_cross_entropy(Tensor({2, 2}), {0}), Error);
  EXPECT_THROW(softmax_cross_entropy(Tensor({1, 2}), {5}), Error);
  EXPECT_THROW(softmax_cross_entropy(Tensor({4}), {0}), Error);
}

}  // namespace
}  // namespace clear::nn
