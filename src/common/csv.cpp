#include "common/csv.hpp"

#include <charconv>
#include <cmath>
#include <fstream>

#include "common/error.hpp"

namespace clear::csv {

namespace {

/// "row 3, column 2" / "row 3" / "column 2" / "" — whatever is known.
std::string cell_address(std::size_t row, std::size_t col) {
  std::string s;
  if (row > 0) s += "row " + std::to_string(row);
  if (col > 0) {
    if (!s.empty()) s += ", ";
    s += "column " + std::to_string(col);
  }
  return s;
}

}  // namespace

Row parse_line(const std::string& line, std::size_t row) {
  Row fields;
  std::string cur;
  bool in_quotes = false;
  bool closed_quote = false;  // Cell ended with a closing quote.
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
          closed_quote = true;
        }
      } else {
        cur += c;
      }
    } else if (c == ',') {
      fields.push_back(cur);
      cur.clear();
      closed_quote = false;
    } else if (c == '\r') {
      // Tolerate CRLF.
    } else if (closed_quote) {
      CLEAR_CHECK_MSG(false, "malformed CSV ("
                                 << cell_address(row, fields.size() + 1)
                                 << "): unexpected '" << c
                                 << "' after closing quote");
    } else if (c == '"') {
      in_quotes = true;
    } else {
      cur += c;
    }
  }
  CLEAR_CHECK_MSG(!in_quotes, "malformed CSV ("
                                  << cell_address(row, fields.size() + 1)
                                  << "): unterminated quoted field");
  fields.push_back(cur);
  return fields;
}

std::string format_line(const Row& row) {
  std::string out;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out += ',';
    const std::string& f = row[i];
    if (f.find_first_of(",\"") != std::string::npos) {
      out += '"';
      for (const char c : f) {
        if (c == '"') out += '"';
        out += c;
      }
      out += '"';
    } else {
      out += f;
    }
  }
  return out;
}

std::vector<Row> read_file(const std::string& path) {
  std::ifstream in(path);
  CLEAR_CHECK_MSG(in.good(), "cannot open CSV file: " << path);
  std::vector<Row> rows;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    rows.push_back(parse_line(line, line_no));
  }
  return rows;
}

void write_file(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream out(path);
  CLEAR_CHECK_MSG(out.good(), "cannot open CSV file for writing: " << path);
  for (const Row& row : rows) out << format_line(row) << '\n';
  CLEAR_CHECK_MSG(out.good(), "IO error writing CSV file: " << path);
}

double parse_double(const std::string& cell, std::size_t row,
                    std::size_t col) {
  // Skip the leading/trailing whitespace hand-written files tend to carry.
  std::size_t begin = 0;
  std::size_t end = cell.size();
  while (begin < end && (cell[begin] == ' ' || cell[begin] == '\t')) ++begin;
  while (end > begin && (cell[end - 1] == ' ' || cell[end - 1] == '\t'))
    --end;
  double v = 0.0;
  const auto res = std::from_chars(cell.data() + begin, cell.data() + end, v);
  CLEAR_CHECK_MSG(res.ec == std::errc() && res.ptr == cell.data() + end &&
                      begin < end,
                  "cannot parse '" << cell << "' as a number ("
                                   << cell_address(row, col) << ")");
  CLEAR_CHECK_MSG(std::isfinite(v), "non-finite number '"
                                        << cell << "' ("
                                        << cell_address(row, col) << ")");
  return v;
}

std::vector<std::vector<double>> to_numeric(const std::vector<Row>& rows,
                                            bool skip_header) {
  std::vector<std::vector<double>> out;
  const std::size_t first = skip_header ? 1 : 0;
  if (rows.size() <= first) return out;
  const std::size_t cols = rows[first].size();
  out.reserve(rows.size() - first);
  for (std::size_t r = first; r < rows.size(); ++r) {
    CLEAR_CHECK_MSG(rows[r].size() == cols,
                    "ragged CSV: row " << r + 1 << " has " << rows[r].size()
                                       << " columns, expected " << cols);
    std::vector<double> vals;
    vals.reserve(cols);
    for (std::size_t c = 0; c < cols; ++c)
      vals.push_back(parse_double(rows[r][c], r + 1, c + 1));
    out.push_back(std::move(vals));
  }
  return out;
}

std::string format_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::general, 17);
  return std::string(buf, res.ptr);
}

}  // namespace clear::csv
