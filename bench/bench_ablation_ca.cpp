// Ablation C — cold-start Cluster Assignment design (paper §III-B-1).
//
// Sweeps (a) the unlabeled-data fraction available at assignment time and
// (b) the assignment strategy: the paper's sub-centroid summation vs. a
// flat main-centroid distance vs. per-observation voting, plus the
// sub-cluster count I_k. Reported metric: agreement with the cluster whose
// members are dominated by the new user's ground-truth archetype, and the
// downstream accuracy of the assigned cluster's model.
//
// Flags: --quick --folds=16 --epochs=N --seed=N --cache-dir=DIR
#include "bench_common.hpp"
#include "clear/evaluation.hpp"

using namespace clear;

namespace {

const char* strategy_name(cluster::AssignStrategy s) {
  switch (s) {
    case cluster::AssignStrategy::kSubCentroidSum: return "sub-centroid sum";
    case cluster::AssignStrategy::kFlatCentroid: return "flat centroid";
    case cluster::AssignStrategy::kObservationVote: return "observation vote";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  core::ClearConfig config = bench::config_from_args(args);
  const wemac::WemacDataset dataset = bench::load_dataset(config, args);
  const std::size_t folds = std::min<std::size_t>(
      static_cast<std::size_t>(args.get_int("folds", 16)),
      dataset.n_volunteers());

  std::printf("Ablation: cluster assignment (%zu LOSO folds)\n", folds);

  const std::vector<double> fractions = {0.05, 0.10, 0.20, 0.50};
  const std::vector<cluster::AssignStrategy> strategies = {
      cluster::AssignStrategy::kSubCentroidSum,
      cluster::AssignStrategy::kFlatCentroid,
      cluster::AssignStrategy::kObservationVote};

  struct Cell {
    std::size_t match = 0;
    core::Aggregate acc;
  };
  std::vector<std::vector<Cell>> cells(strategies.size(),
                                       std::vector<Cell>(fractions.size()));

  for (std::size_t vx = 0; vx < folds; ++vx) {
    CLEAR_INFO("fold " << vx + 1 << "/" << folds);
    std::vector<std::size_t> train_users;
    for (std::size_t u = 0; u < dataset.n_volunteers(); ++u)
      if (u != vx) train_users.push_back(u);
    core::ClearPipeline pipeline(config);
    pipeline.fit(dataset, train_users, vx + 1);
    const std::size_t truth = dataset.volunteers()[vx].archetype_id;
    // Test maps: last 70 % of the user's trials.
    const auto& all = dataset.samples_of(vx);
    const std::vector<std::size_t> test_idx(
        all.begin() + static_cast<std::ptrdiff_t>(all.size() * 3 / 10),
        all.end());

    for (std::size_t s = 0; s < strategies.size(); ++s) {
      for (std::size_t f = 0; f < fractions.size(); ++f) {
        const auto r = pipeline.assign_user(dataset, vx, fractions[f],
                                            strategies[s]);
        if (core::dominant_archetype(
                dataset, train_users,
                pipeline.clustering().clusters[r.cluster]) == truth)
          ++cells[s][f].match;
        cells[s][f].acc.add(
            pipeline.evaluate_on(dataset, r.cluster, test_idx));
      }
    }
  }

  AsciiTable table({"Strategy", "CA data", "archetype match", "accuracy",
                    "STD"});
  table.set_title(
      "Cold-start assignment ablation (paper: sub-centroid sum on 10% "
      "unlabeled data)");
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    for (std::size_t f = 0; f < fractions.size(); ++f) {
      Cell& c = cells[s][f];
      c.acc.finalize();
      table.add_row({strategy_name(strategies[s]),
                     AsciiTable::num(fractions[f] * 100.0, 0) + "%",
                     AsciiTable::num(100.0 * static_cast<double>(c.match) /
                                         static_cast<double>(folds), 1) + "%",
                     AsciiTable::num(c.acc.accuracy.mean),
                     AsciiTable::num(c.acc.accuracy.stddev)});
    }
  }
  std::printf("\n");
  table.print();
  return 0;
}
