// ClearPipeline — the public API of the paper's contribution.
//
// Cloud stage (fit): fit the feature normalizer on the initial user
// population, run Global Clustering, and pre-train one CNN-LSTM per cluster.
//
// Edge stage: assign_user() solves the cold start for a new user from a
// small unlabeled prefix of their data; clone_cluster_model() hands out a
// copy of the cluster checkpoint that fine_tune_on() personalizes with a few
// labelled maps.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "clear/config.hpp"
#include "clear/data_prep.hpp"
#include "cluster/assignment.hpp"

namespace clear::core {

class ClearPipeline {
 public:
  explicit ClearPipeline(ClearConfig config);

  /// Cloud stage over the given initial users. Deterministic in
  /// config.seed + `seed_salt` (the LOSO harness salts per fold).
  void fit(const wemac::WemacDataset& dataset,
           const std::vector<std::size_t>& user_ids,
           std::uint64_t seed_salt = 0);

  bool fitted() const { return !models_.empty(); }
  const ClearConfig& config() const { return config_; }
  const features::FeatureNormalizer& normalizer() const { return normalizer_; }
  const cluster::GlobalClusteringResult& clustering() const {
    return clustering_;
  }
  std::size_t n_clusters() const { return models_.size(); }
  nn::Sequential& cluster_model(std::size_t k);

  /// Population-general fallback model (trained when
  /// config.general_fallback; restored from general.ckpt).
  bool has_general_model() const { return general_model_ != nullptr; }
  nn::Sequential& general_model();

  /// Clusters whose own checkpoint was missing/corrupt at import time and
  /// now run the general fallback model instead (degraded deployment).
  const std::vector<std::size_t>& fallback_clusters() const {
    return fallback_clusters_;
  }

  /// Users the pipeline was fitted on.
  const std::vector<std::size_t>& fitted_users() const { return users_; }

  /// Cold-start assignment of a new user from the first `fraction` of their
  /// samples (unlabeled — labels are never read).
  cluster::AssignmentResult assign_user(
      const wemac::WemacDataset& dataset, std::size_t user_id,
      double fraction,
      cluster::AssignStrategy strategy =
          cluster::AssignStrategy::kSubCentroidSum) const;

  /// Assignment from pre-normalized observations (library-level entry).
  cluster::AssignmentResult assign_observations(
      const std::vector<cluster::Point>& observations,
      cluster::AssignStrategy strategy =
          cluster::AssignStrategy::kSubCentroidSum) const;

  /// Normalize the listed samples with the pipeline's normalizer.
  std::vector<Tensor> normalize_samples(
      const wemac::WemacDataset& dataset,
      const std::vector<std::size_t>& sample_indices) const;

  /// Evaluate cluster k's model on the listed samples.
  nn::BinaryMetrics evaluate_on(const wemac::WemacDataset& dataset,
                                std::size_t k,
                                const std::vector<std::size_t>& sample_indices);

  /// Fresh copy of cluster k's model (for fine-tuning without disturbing
  /// the deployed checkpoint).
  std::unique_ptr<nn::Sequential> clone_cluster_model(std::size_t k);

  /// Fine-tune `model` on the listed labelled samples (freezes the conv
  /// stack, per the paper's edge personalisation).
  nn::TrainHistory fine_tune_on(nn::Sequential& model,
                                const wemac::WemacDataset& dataset,
                                const std::vector<std::size_t>& sample_indices,
                                std::uint64_t seed_salt = 0) const;

  /// Serialized checkpoint bytes of cluster k's model.
  std::string serialize_cluster_model(std::size_t k);
  /// Serialized checkpoint bytes of the general fallback model ("" if none).
  std::string serialize_general_model();
  /// Build a fresh model of the pipeline architecture from checkpoint bytes.
  std::unique_ptr<nn::Sequential> model_from_bytes(const std::string& bytes) const;

  /// Complete fitted state in serialized form (artifact persistence; see
  /// clear/artifacts.hpp for the on-disk format).
  struct State {
    std::vector<std::size_t> users;
    features::FeatureNormalizer normalizer;
    cluster::GlobalClusteringResult clustering;
    std::vector<std::string> checkpoints;  ///< One blob per cluster ("" = lost).
    std::string general_checkpoint;        ///< Fallback blob ("" = none).
  };
  State export_state();
  /// Restore a fitted pipeline from exported state (rebuilds the models).
  /// A cluster whose blob is empty or fails to parse/CRC-verify degrades to
  /// the general checkpoint when one is present (recorded in
  /// fallback_clusters()); without a usable fallback the import throws.
  void import_state(State state);

 private:
  ClearConfig config_;
  std::vector<std::size_t> users_;
  features::FeatureNormalizer normalizer_;
  cluster::GlobalClusteringResult clustering_;
  std::vector<std::unique_ptr<nn::Sequential>> models_;
  std::unique_ptr<nn::Sequential> general_model_;
  std::vector<std::size_t> fallback_clusters_;
};

}  // namespace clear::core
