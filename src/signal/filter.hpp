// Time-domain filtering: biquad sections, 2nd-order Butterworth designs,
// zero-phase filtering, moving averages and detrending.
//
// The feature extractor uses these to split GSR into tonic/phasic components
// and to band-limit BVP before beat detection; the synthetic WEMAC generator
// uses them to shape noise.
#pragma once

#include <span>
#include <vector>

namespace clear::dsp {

/// Direct-form-II-transposed biquad section: y = (b0 b1 b2)/(1 a1 a2).
struct Biquad {
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;

  /// Filter a whole signal. The internal state is initialized to the steady
  /// state for a constant input x[0], suppressing start-up transients
  /// (offline-filtering semantics, like scipy's filtfilt initial conditions).
  std::vector<double> apply(std::span<const double> x) const;
};

/// 2nd-order Butterworth low-pass (bilinear transform). cutoff_hz must lie in
/// (0, sample_rate/2).
Biquad butterworth_lowpass(double cutoff_hz, double sample_rate);
/// 2nd-order Butterworth high-pass.
Biquad butterworth_highpass(double cutoff_hz, double sample_rate);
/// Band-pass as HP(lo) ∘ LP(hi) cascade, returned as two sections.
std::vector<Biquad> butterworth_bandpass(double lo_hz, double hi_hz,
                                         double sample_rate);

/// Apply a cascade of sections.
std::vector<double> cascade(std::span<const Biquad> sections,
                            std::span<const double> x);

/// Zero-phase filtering: forward pass, reverse, forward again, reverse
/// (filtfilt). Doubles the effective order and removes group delay.
std::vector<double> filtfilt(std::span<const Biquad> sections,
                             std::span<const double> x);

/// Centered moving average with window `w` (odd preferred; edges shrink).
std::vector<double> moving_average(std::span<const double> x, std::size_t w);

/// Remove the least-squares line from the signal.
std::vector<double> detrend_linear(std::span<const double> x);

/// Remove the mean.
std::vector<double> detrend_mean(std::span<const double> x);

/// Cumulative sum.
std::vector<double> cumsum(std::span<const double> x);

}  // namespace clear::dsp
