#include "nn/optimizer.hpp"

#include <cmath>

#include "common/error.hpp"

namespace clear::nn {

void Optimizer::zero_grad() {
  for (Param* p : params_) p->grad.zero();
}

double Optimizer::clip_grad_norm(double max_norm) {
  CLEAR_CHECK_MSG(max_norm > 0, "max_norm must be positive");
  double sq = 0.0;
  for (const Param* p : params_) {
    if (p->frozen) continue;
    for (const float g : p->grad.flat()) sq += static_cast<double>(g) * g;
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm) {
    const float scale = static_cast<float>(max_norm / (norm + 1e-12));
    for (Param* p : params_) {
      if (p->frozen) continue;
      for (float& g : p->grad.flat()) g *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Param*> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (const Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  const auto lr = static_cast<float>(lr_);
  const auto mu = static_cast<float>(momentum_);
  const auto wd = static_cast<float>(weight_decay_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    if (p->frozen) continue;
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* v = velocity_[i].data();
    for (std::size_t j = 0; j < p->value.numel(); ++j) {
      const float grad = g[j] + wd * w[j];
      v[j] = mu * v[j] + grad;
      w[j] -= lr * v[j];
    }
  }
}

Adam::Adam(std::vector<Param*> params, double lr, double beta1, double beta2,
           double eps, double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const auto lr = static_cast<float>(lr_ * std::sqrt(bc2) / bc1);
  const auto b1 = static_cast<float>(beta1_);
  const auto b2 = static_cast<float>(beta2_);
  const auto eps = static_cast<float>(eps_);
  const auto wd = static_cast<float>(weight_decay_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    if (p->frozen) continue;
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (std::size_t j = 0; j < p->value.numel(); ++j) {
      const float grad = g[j] + wd * w[j];
      m[j] = b1 * m[j] + (1.0f - b1) * grad;
      v[j] = b2 * v[j] + (1.0f - b2) * grad * grad;
      w[j] -= lr * m[j] / (std::sqrt(v[j]) + eps);
    }
  }
}

}  // namespace clear::nn
