#include "net/loadgen.hpp"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/logging.hpp"
#include "common/obs.hpp"
#include "net/protocol.hpp"

namespace clear::net {

namespace {

// Hash-kind tags for the independent decision streams.
constexpr std::uint64_t kKindGap = 0x6A9;
constexpr std::uint64_t kKindBurst = 0xB57;
constexpr std::uint64_t kKindUser = 0x05E;
constexpr std::uint64_t kKindLabel = 0x1AB;
constexpr std::uint64_t kKindQuality = 0x9AA;
constexpr std::uint64_t kKindMap = 0xFEA7;

double exact_percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const std::size_t idx = static_cast<std::size_t>(
      std::max(1.0, std::min(rank, static_cast<double>(sorted.size()))));
  return sorted[idx - 1];
}

/// One nonblocking client connection with its own decoder and write buffer.
struct LoadConn {
  FaultedStream stream;
  FrameDecoder decoder;
  std::string outbuf;
  std::size_t outpos = 0;
  bool dead = false;
};

// Gap (us) request `i` contributes to the cumulative hashed schedule; zero
// when the burstiness coin collapses it onto the previous arrival.
double schedule_gap_us(const LoadgenConfig& config, std::size_t i) {
  const double mean_gap_us =
      config.rate_rps > 0.0 ? 1e6 / config.rate_rps : 0.0;
  const double b = std::max(1.0, config.burstiness);
  if (b > 1.0) {
    const double ub =
        fault::uniform01(fault::mix(config.seed, kKindBurst, i, 0));
    if (ub < 1.0 - 1.0 / b) return 0.0;  // Collapsed gap: same instant.
  }
  const double u = fault::uniform01(fault::mix(config.seed, kKindGap, i, 0));
  // Exponential gap; stretch by b so the offered rate survives the
  // collapsed gaps. -log(1-u) with u in [0,1) is finite.
  return -mean_gap_us * std::log(1.0 - u) * b;
}

WireRequest make_request(const LoadgenConfig& config, std::size_t index,
                         std::uint64_t arrival_us) {
  WireRequest request;
  request.request_id = static_cast<std::uint64_t>(index) + 1;
  request.user_id =
      fault::mix(config.seed, kKindUser, index, 0) %
      std::max<std::size_t>(1, config.users);
  request.arrival_us = arrival_us;
  // Quality in [0.75, 1.0]: mostly clean signal, enough spread to touch the
  // quality-tracking path without mass-degrading sessions.
  request.quality =
      0.75 + 0.25 * fault::uniform01(fault::mix(config.seed, kKindQuality,
                                                index, 0));
  const std::uint64_t lh = fault::mix(config.seed, kKindLabel, index, 0);
  if (fault::uniform01(lh) < config.label_fraction)
    request.label = static_cast<int>((lh >> 33) & 1);
  request.map = Tensor({config.features, config.window});
  // Distribution drift: past the onset index a drifting user's maps shift
  // by a constant offset. A pure function of the absolute index, like every
  // other per-request quantity, so --start-index resumption reproduces the
  // exact same drifted stream.
  const float shift = (config.drift_users > 0 &&
                       request.user_id < config.drift_users &&
                       config.drift_after_index > 0 &&
                       index >= config.drift_after_index)
                          ? static_cast<float>(config.drift_shift)
                          : 0.0f;
  auto flat = request.map.flat();
  for (std::size_t i = 0; i < flat.size(); ++i) {
    const std::uint64_t h =
        fault::mix(config.seed ^ request.user_id, kKindMap, index, i);
    flat[i] = static_cast<float>(fault::uniform01(h) * 2.0 - 1.0) + shift;
  }
  return request;
}

/// The deterministic slice of a response, kept for --responses capture.
/// Wall-clock quantities (exec time, batch composition) are excluded on
/// purpose: two runs of the same virtual-clock stream must produce
/// byte-identical capture files, which is exactly what the chaos gate
/// diffs against its golden run.
struct CapturedResponse {
  std::uint64_t request_id = 0;
  std::uint64_t user_id = 0;
  bool shed = false;
  std::int32_t predicted = -1;
  std::uint32_t prob_bits = 0;  ///< Bit pattern of fear_probability.
  std::uint32_t route_kind = 0;
  std::uint64_t route_id = 0;
};

void write_responses_file(const std::string& path,
                          std::vector<CapturedResponse> captured) {
  std::sort(captured.begin(), captured.end(),
            [](const CapturedResponse& a, const CapturedResponse& b) {
              return a.request_id < b.request_id;
            });
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CLEAR_CHECK_MSG(out.good(),
                  "loadgen cannot open responses file '" << path << "'");
  for (const CapturedResponse& r : captured) {
    out << "req=" << r.request_id << " user=" << r.user_id
        << " shed=" << (r.shed ? 1 : 0) << " pred=" << r.predicted
        << " prob=" << std::hex << std::setw(8) << std::setfill('0')
        << r.prob_bits << std::dec << std::setfill(' ')
        << " route=" << r.route_kind << ":" << r.route_id << "\n";
  }
  out.flush();
  CLEAR_CHECK_MSG(out.good(),
                  "loadgen failed writing responses file '" << path << "'");
}

void flush_conn(LoadConn& conn) {
  while (conn.outpos < conn.outbuf.size()) {
    const IoResult r = conn.stream.write_some(
        conn.outbuf.data() + conn.outpos, conn.outbuf.size() - conn.outpos);
    if (r.n > 0) {
      conn.outpos += r.n;
      continue;
    }
    if (r.closed) {
      conn.dead = true;
      conn.stream.close();
    }
    break;  // would_block (or dead): try again next loop.
  }
  if (conn.outpos >= conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.outpos = 0;
  } else if (conn.outpos > conn.outbuf.size() / 2) {
    conn.outbuf.erase(0, conn.outpos);
    conn.outpos = 0;
  }
}

}  // namespace

std::uint64_t scheduled_arrival_us(const LoadgenConfig& config,
                                   std::size_t index) {
  double t = 0.0;
  for (std::size_t i = 0; i <= index; ++i) t += schedule_gap_us(config, i);
  return static_cast<std::uint64_t>(t);
}

std::string LoadgenReport::json(const LoadgenConfig& config) const {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed;
  out << "{\n";
  out << "  \"schema\": \"clear-bench-loadgen-v1\",\n";
  out << "  \"config\": {\"connections\": " << config.connections
      << ", \"requests\": " << config.requests << ", \"rate_rps\": "
      << config.rate_rps << ", \"burstiness\": " << config.burstiness
      << ", \"seed\": " << config.seed << ", \"users\": " << config.users
      << "},\n";
  out << "  \"sent\": " << sent << ",\n";
  out << "  \"received\": " << received << ",\n";
  out << "  \"ok\": " << ok << ",\n";
  out << "  \"shed\": " << shed << ",\n";
  out << "  \"dropped\": " << dropped << ",\n";
  out << "  \"wall_seconds\": " << wall_seconds << ",\n";
  out << "  \"offered_rps\": " << offered_rps << ",\n";
  out << "  \"achieved_rps\": " << achieved_rps << ",\n";
  out << "  \"latency_us\": {\"p50\": " << latency.p50_us << ", \"p90\": "
      << latency.p90_us << ", \"p99\": " << latency.p99_us << ", \"p999\": "
      << latency.p999_us << ", \"max\": " << latency.max_us << ", \"mean\": "
      << latency.mean_us << "},\n";
  // Machine-portable gate quantities: fractions, not microseconds.
  const double achieved_ratio =
      offered_rps > 0.0 ? achieved_rps / offered_rps : 0.0;
  const double answered =
      sent > 0 ? static_cast<double>(received) / static_cast<double>(sent)
               : 0.0;
  const double ok_fraction =
      received > 0 ? static_cast<double>(ok) / static_cast<double>(received)
                   : 0.0;
  out << "  \"ratios\": {\"achieved_ratio\": " << achieved_ratio
      << ", \"answered_fraction\": " << answered << ", \"ok_fraction\": "
      << ok_fraction << "}\n";
  out << "}\n";
  return out.str();
}

LoadgenReport run_loadgen(const LoadgenConfig& config) {
  CLEAR_OBS_SPAN("net.loadgen");
  CLEAR_CHECK_MSG(config.connections >= 1, "loadgen needs >= 1 connection");
  CLEAR_CHECK_MSG(config.requests >= 1, "loadgen needs >= 1 request");
  CLEAR_CHECK_MSG(config.rate_rps > 0.0, "loadgen rate must be positive");

  using Clock = std::chrono::steady_clock;
  LoadgenReport report;
  report.offered_rps = config.rate_rps;

  std::vector<std::unique_ptr<LoadConn>> conns;
  conns.reserve(config.connections);
  for (std::size_t i = 0; i < config.connections; ++i) {
    auto conn = std::make_unique<LoadConn>();
    // Stream ids offset by 1000 so loadgen fault decisions do not collide
    // with the server's connection ids under one NetFaultSpec.
    conn->stream = FaultedStream(connect_tcp(config.target), 1000 + i);
    set_nonblocking(conn->stream.fd(), true);
    conns.push_back(std::move(conn));
  }

  // Scheduled virtual send time per request: one cumulative hash walk,
  // sharing scheduled_arrival_us's gap law (O(n) total, not O(n^2) calls).
  // With start_index set, the walk covers the skipped prefix too, so
  // request start_index + i carries the *absolute* virtual arrival it would
  // have had in an uninterrupted run — the served virtual clock continues,
  // while wall-clock pacing below is rebased so this run starts sending
  // immediately instead of waiting out the prefix.
  std::vector<std::uint64_t> schedule(config.requests);
  std::uint64_t pace_base_us = 0;
  {
    double t = 0.0;
    for (std::size_t i = 0; i < config.start_index; ++i)
      t += schedule_gap_us(config, i);
    pace_base_us = static_cast<std::uint64_t>(t);
    for (std::size_t i = 0; i < config.requests; ++i) {
      t += schedule_gap_us(config, config.start_index + i);
      schedule[i] = static_cast<std::uint64_t>(t);
    }
  }
  // Wall send offset of request i relative to loadgen start.
  const auto pace_us = [&schedule, pace_base_us](std::size_t i) {
    return schedule[i] - pace_base_us;
  };

  // request_id -> scheduled send wall-offset (us), for latency measurement.
  std::map<std::uint64_t, std::uint64_t> outstanding;
  std::vector<double> latencies;
  latencies.reserve(config.requests);
  std::vector<CapturedResponse> captured;
  if (!config.responses_path.empty()) captured.reserve(config.requests);

  const auto start = Clock::now();
  const auto elapsed_us = [&start]() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start)
            .count());
  };
  const std::uint64_t timeout_us = static_cast<std::uint64_t>(
      std::max(0.0, config.timeout_seconds) * 1e6);

  std::size_t next_send = 0;
  bool drain_sent = false;
  std::uint64_t last_drain_us = 0;
  char buf[16 * 1024];
  Frame frame;

  while (true) {
    const std::uint64_t now_us = elapsed_us();

    // Send every request whose scheduled time has passed — regardless of
    // outstanding responses (open loop).
    while (next_send < config.requests && pace_us(next_send) <= now_us) {
      LoadConn& conn = *conns[next_send % conns.size()];
      const WireRequest request = make_request(
          config, config.start_index + next_send, schedule[next_send]);
      if (!conn.dead) {
        conn.outbuf += encode_request(request);
        outstanding[request.request_id] = pace_us(next_send);
        ++report.sent;
        CLEAR_OBS_COUNT("loadgen.sent", 1);
      } else {
        ++report.dropped;  // Its connection died; nobody will answer.
      }
      ++next_send;
    }
    // All sent: one drain flushes the server's trailing batches (virtual
    // time only advances on arrivals, so without this the tail would sit
    // in the batcher forever).
    // Re-drain every 250ms while responses are missing: a request that was
    // still in a connection's (or the kernel's) buffer when the previous
    // drain reached the server lands in the batcher *after* it, and only
    // another drain (or the server's idle flush) will release it.
    if (next_send == config.requests && !outstanding.empty() &&
        (!drain_sent || now_us - last_drain_us > 250000)) {
      bool sent_one = false;
      for (auto& conn : conns)
        if (!conn->dead) {
          conn->outbuf += encode_drain();
          sent_one = true;
          break;
        }
      if (!sent_one) break;  // Every connection is dead.
      drain_sent = true;
      last_drain_us = now_us;
    }

    for (auto& conn : conns)
      if (!conn->dead && !conn->outbuf.empty()) flush_conn(*conn);

    if (outstanding.empty() && next_send == config.requests) break;
    if (now_us > timeout_us) {
      CLEAR_WARN("loadgen: timed out with " << outstanding.size()
                                            << " unanswered requests");
      break;
    }

    // Poll readable; wake in time for the next scheduled send.
    std::vector<pollfd> fds;
    fds.reserve(conns.size());
    for (auto& conn : conns) {
      if (conn->dead) continue;
      pollfd p{};
      p.fd = conn->stream.fd();
      p.events = POLLIN;
      if (!conn->outbuf.empty()) p.events |= POLLOUT;
      fds.push_back(p);
    }
    if (fds.empty()) break;
    int wait_ms = 20;
    if (next_send < config.requests) {
      const std::uint64_t target = pace_us(next_send);
      const std::uint64_t now2 = elapsed_us();
      wait_ms = target > now2
                    ? static_cast<int>(std::min<std::uint64_t>(
                          20, (target - now2) / 1000))
                    : 0;
    }
    ::poll(fds.data(), fds.size(), wait_ms);

    for (auto& conn : conns) {
      if (conn->dead) continue;
      while (true) {
        const IoResult r = conn->stream.read_some(buf, sizeof(buf));
        if (r.n > 0) {
          conn->decoder.feed(buf, r.n);
          continue;
        }
        if (r.closed) {
          conn->dead = true;
          conn->stream.close();
        }
        break;
      }
      while (conn->decoder.next(frame) == DecodeStatus::kFrame) {
        if (frame.type == FrameType::kDrainAck) continue;
        CLEAR_CHECK_MSG(frame.type == FrameType::kResponse,
                        "loadgen received unexpected frame type "
                            << frame_type_name(frame.type));
        WireResponse response;
        std::string error;
        CLEAR_CHECK_MSG(parse_response(frame, response, error),
                        "loadgen received bad response: " << error);
        const auto it = outstanding.find(response.request_id);
        if (it == outstanding.end()) continue;  // Duplicate or unknown.
        const std::uint64_t recv_us = elapsed_us();
        const double latency_us = static_cast<double>(
            recv_us > it->second ? recv_us - it->second : 0);
        outstanding.erase(it);
        latencies.push_back(latency_us);
        CLEAR_OBS_RECORD("loadgen.latency_us", latency_us);
        ++report.received;
        if (response.shed)
          ++report.shed;
        else
          ++report.ok;
        if (!config.responses_path.empty()) {
          CapturedResponse cap;
          cap.request_id = response.request_id;
          cap.user_id = response.user_id;
          cap.shed = response.shed;
          cap.predicted = response.predicted;
          std::memcpy(&cap.prob_bits, &response.fear_probability,
                      sizeof(cap.prob_bits));
          cap.route_kind = response.route_kind;
          cap.route_id = response.route_id;
          captured.push_back(cap);
        }
      }
      if (!conn->decoder.error().empty())
        CLEAR_CHECK_MSG(false, "loadgen wire error: " << conn->decoder.error());
    }
  }

  if (config.shutdown_after) {
    for (auto& conn : conns) {
      if (conn->dead) continue;
      conn->outbuf += encode_shutdown();
      // Best-effort blocking-ish flush; the server exits once it reads it.
      set_nonblocking(conn->stream.fd(), false);
      flush_conn(*conn);
      break;
    }
  }
  for (auto& conn : conns) conn->stream.close();

  if (!config.responses_path.empty())
    write_responses_file(config.responses_path, std::move(captured));

  report.dropped += outstanding.size();
  report.wall_seconds =
      static_cast<double>(elapsed_us()) / 1e6;
  report.achieved_rps = report.wall_seconds > 0.0
                            ? static_cast<double>(report.received) /
                                  report.wall_seconds
                            : 0.0;
  std::sort(latencies.begin(), latencies.end());
  report.latency.p50_us = exact_percentile(latencies, 0.50);
  report.latency.p90_us = exact_percentile(latencies, 0.90);
  report.latency.p99_us = exact_percentile(latencies, 0.99);
  report.latency.p999_us = exact_percentile(latencies, 0.999);
  report.latency.max_us = latencies.empty() ? 0.0 : latencies.back();
  double sum = 0.0;
  for (const double v : latencies) sum += v;
  report.latency.mean_us =
      latencies.empty() ? 0.0 : sum / static_cast<double>(latencies.size());
  return report;
}

}  // namespace clear::net
