#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "tensor/kernels/kernels.hpp"

namespace clear::ops {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  CLEAR_CHECK_MSG(a.same_shape(b), op << ": shape mismatch " << a.shape_str()
                                      << " vs " << b.shape_str());
}

/// Minimum multiply-adds before a kernel fans out to the pool; below this
/// the dispatch overhead dominates. Parallel or serial, each output row is
/// written by exactly one thread, so results are bit-identical either way.
constexpr std::size_t kParallelFlopThreshold = 1 << 18;
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  add_inplace(out, b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  sub_inplace(out, b);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  mul_inplace(out, b);
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  kernels::active().add_f32(a.data(), b.data(), a.numel());
}

void sub_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  kernels::active().sub_f32(a.data(), b.data(), a.numel());
}

void mul_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  kernels::active().mul_f32(a.data(), b.data(), a.numel());
}

void axpy_inplace(Tensor& a, float alpha, const Tensor& b) {
  check_same_shape(a, b, "axpy");
  kernels::active().axpy_f32(a.data(), alpha, b.data(), a.numel());
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  scale_inplace(out, s);
  return out;
}

void scale_inplace(Tensor& a, float s) {
  kernels::active().scale_f32(a.data(), s, a.numel());
}

Tensor add_scalar(const Tensor& a, float s) {
  Tensor out = a;
  kernels::active().add_scalar_f32(out.data(), s, out.numel());
  return out;
}

Tensor map(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out = a;
  map_inplace(out, f);
  return out;
}

void map_inplace(Tensor& a, const std::function<float(float)>& f) {
  for (float& x : a.flat()) x = f(x);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  CLEAR_CHECK_MSG(a.rank() == 2 && b.rank() == 2, "matmul requires rank-2");
  const std::size_t m = a.extent(0);
  const std::size_t k = a.extent(1);
  CLEAR_CHECK_MSG(b.extent(0) == k, "matmul inner dimension mismatch: "
                                        << a.shape_str() << " x "
                                        << b.shape_str());
  const std::size_t n = b.extent(1);
  Tensor c({m, n});
  matmul_accum(a, b, c);
  return c;
}

void matmul_into(const Tensor& a, const Tensor& b, Tensor& c) {
  CLEAR_CHECK_MSG(a.rank() == 2 && b.rank() == 2,
                  "matmul_into requires rank-2 operands");
  CLEAR_CHECK_MSG(b.extent(0) == a.extent(1),
                  "matmul_into inner dimension mismatch: "
                      << a.shape_str() << " x " << b.shape_str());
  c.resize({a.extent(0), b.extent(1)});
  c.zero();
  matmul_accum(a, b, c);
}

namespace {

/// Shared core for matmul_accum / matmul_fused_into: row-blocked dispatch of
/// the active kernel's GEMM. Each thread owns a disjoint block of C rows and
/// every element's k accumulation stays a single ordered chain inside the
/// kernel, so the result is bit-identical to the serial call at any thread
/// count and for any kernel ISA.
void gemm_dispatch(const Tensor& a, const Tensor& b, Tensor& c,
                   const kernels::Epilogue* ep) {
  const std::size_t m = a.extent(0);
  const std::size_t k = a.extent(1);
  const std::size_t n = b.extent(1);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const kernels::KernelTable& kt = kernels::active();
  const auto row_block = [&](std::size_t lo, std::size_t hi) {
    // The kernel sees a row-block of A/C (and of a per-row bias) as a
    // smaller self-contained GEMM; per-column epilogues pass through as-is.
    kernels::Epilogue block_ep;
    const kernels::Epilogue* bep = nullptr;
    if (ep) {
      block_ep = *ep;
      if (block_ep.bias && block_ep.bias_mode == kernels::BiasMode::kPerRow)
        block_ep.bias += lo;
      bep = &block_ep;
    }
    kt.gemm_f32(pa + lo * k, pb, pc + lo * n, hi - lo, k, n, bep);
  };
  const std::size_t row_flops = k * n;
  if (m >= 2 && num_threads() > 1 && !in_parallel_region() &&
      m * row_flops >= kParallelFlopThreshold) {
    const std::size_t grain = std::max<std::size_t>(
        1, kParallelFlopThreshold / (8 * std::max<std::size_t>(1, row_flops)));
    parallel_for(0, m, grain, row_block);
  } else {
    row_block(0, m);
  }
}

}  // namespace

void matmul_accum(const Tensor& a, const Tensor& b, Tensor& c) {
  CLEAR_CHECK_MSG(a.rank() == 2 && b.rank() == 2 && c.rank() == 2,
                  "matmul_accum requires rank-2 operands");
  const std::size_t m = a.extent(0);
  const std::size_t k = a.extent(1);
  const std::size_t n = b.extent(1);
  CLEAR_CHECK_MSG(b.extent(0) == k && c.extent(0) == m && c.extent(1) == n,
                  "matmul_accum shape mismatch");
  gemm_dispatch(a, b, c, nullptr);
}

void matmul_fused_into(const Tensor& a, const Tensor& b, Tensor& c,
                       const kernels::Epilogue& ep) {
  CLEAR_CHECK_MSG(a.rank() == 2 && b.rank() == 2,
                  "matmul_fused_into requires rank-2 operands");
  const std::size_t m = a.extent(0);
  const std::size_t k = a.extent(1);
  CLEAR_CHECK_MSG(b.extent(0) == k, "matmul_fused_into inner dim mismatch: "
                                        << a.shape_str() << " x "
                                        << b.shape_str());
  c.resize({m, b.extent(1)});
  c.zero();
  gemm_dispatch(a, b, c, &ep);
}

Tensor transpose2d(const Tensor& a) {
  CLEAR_CHECK_MSG(a.rank() == 2, "transpose2d requires rank-2");
  const std::size_t m = a.extent(0);
  const std::size_t n = a.extent(1);
  Tensor out({n, m});
  const float* pa = a.data();
  float* po = out.data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
  return out;
}

Tensor matvec(const Tensor& a, const Tensor& x) {
  CLEAR_CHECK_MSG(a.rank() == 2 && x.rank() == 1, "matvec requires [m,k]*[k]");
  const std::size_t m = a.extent(0);
  const std::size_t k = a.extent(1);
  CLEAR_CHECK_MSG(x.extent(0) == k, "matvec dimension mismatch");
  Tensor y({m});
  const float* pa = a.data();
  const float* px = x.data();
  for (std::size_t i = 0; i < m; ++i) {
    float s = 0.0f;
    const float* arow = pa + i * k;
    for (std::size_t j = 0; j < k; ++j) s += arow[j] * px[j];
    y[i] = s;
  }
  return y;
}

void add_row_bias_inplace(Tensor& a, const Tensor& bias) {
  CLEAR_CHECK_MSG(a.rank() == 2 && bias.rank() == 1,
                  "add_row_bias requires rank-2 tensor and rank-1 bias");
  const std::size_t m = a.extent(0);
  const std::size_t n = a.extent(1);
  CLEAR_CHECK_MSG(bias.extent(0) == n, "bias length mismatch");
  kernels::active().bias_rows_f32(a.data(), bias.data(), m, n);
}

float sum(const Tensor& a) {
  float s = 0.0f;
  for (const float x : a.flat()) s += x;
  return s;
}

float mean(const Tensor& a) {
  CLEAR_CHECK_MSG(a.numel() > 0, "mean of empty tensor");
  return sum(a) / static_cast<float>(a.numel());
}

float max_abs(const Tensor& a) {
  float m = 0.0f;
  for (const float x : a.flat()) m = std::max(m, std::abs(x));
  return m;
}

float min_value(const Tensor& a) {
  CLEAR_CHECK_MSG(a.numel() > 0, "min of empty tensor");
  float m = a[0];
  for (const float x : a.flat()) m = std::min(m, x);
  return m;
}

float max_value(const Tensor& a) {
  CLEAR_CHECK_MSG(a.numel() > 0, "max of empty tensor");
  float m = a[0];
  for (const float x : a.flat()) m = std::max(m, x);
  return m;
}

float l2_norm(const Tensor& a) {
  double s = 0.0;
  for (const float x : a.flat()) s += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(s));
}

std::size_t argmax(const Tensor& a) {
  CLEAR_CHECK_MSG(a.numel() > 0, "argmax of empty tensor");
  std::size_t best = 0;
  for (std::size_t i = 1; i < a.numel(); ++i)
    if (a[i] > a[best]) best = i;
  return best;
}

std::vector<std::size_t> argmax_rows(const Tensor& a) {
  CLEAR_CHECK_MSG(a.rank() == 2, "argmax_rows requires rank-2");
  const std::size_t m = a.extent(0);
  const std::size_t n = a.extent(1);
  std::vector<std::size_t> out(m, 0);
  const float* pa = a.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = pa + i * n;
    std::size_t best = 0;
    for (std::size_t j = 1; j < n; ++j)
      if (row[j] > row[best]) best = j;
    out[i] = best;
  }
  return out;
}

Tensor softmax_rows(const Tensor& a) {
  CLEAR_CHECK_MSG(a.rank() == 2, "softmax_rows requires rank-2");
  const std::size_t m = a.extent(0);
  const std::size_t n = a.extent(1);
  Tensor out = a;
  float* po = out.data();
  for (std::size_t i = 0; i < m; ++i) {
    float* row = po + i * n;
    float mx = row[0];
    for (std::size_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    float s = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      row[j] = std::exp(row[j] - mx);
      s += row[j];
    }
    const float inv = 1.0f / s;
    for (std::size_t j = 0; j < n; ++j) row[j] *= inv;
  }
  return out;
}

std::size_t conv_out_extent(std::size_t in, std::size_t k, std::size_t stride,
                            std::size_t pad) {
  CLEAR_CHECK_MSG(stride >= 1, "stride must be >= 1");
  CLEAR_CHECK_MSG(in + 2 * pad >= k, "kernel larger than padded input");
  return (in + 2 * pad - k) / stride + 1;
}

Tensor im2col(const Tensor& image, std::size_t kh, std::size_t kw,
              std::size_t stride, std::size_t pad) {
  Tensor cols;
  im2col_into(image, kh, kw, stride, pad, cols);
  return cols;
}

void im2col_into(const Tensor& image, std::size_t kh, std::size_t kw,
                 std::size_t stride, std::size_t pad, Tensor& cols) {
  CLEAR_CHECK_MSG(image.rank() == 3, "im2col expects [C,H,W]");
  const std::size_t c = image.extent(0);
  const std::size_t h = image.extent(1);
  const std::size_t w = image.extent(2);
  const std::size_t oh = conv_out_extent(h, kh, stride, pad);
  const std::size_t ow = conv_out_extent(w, kw, stride, pad);
  cols.resize({c * kh * kw, oh * ow});
  const float* src = image.data();
  float* dst = cols.data();
  const std::size_t ncols = oh * ow;
  // Each flattened (channel, ki, kj) row fills a disjoint slice of `cols`,
  // so row blocks can run on any thread with bit-identical output.
  const std::size_t n_rows = c * kh * kw;
  const auto fill_rows = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t row = lo; row < hi; ++row) {
      const std::size_t kj = row % kw;
      const std::size_t ki = (row / kw) % kh;
      const std::size_t ch = row / (kh * kw);
      float* drow = dst + row * ncols;
      for (std::size_t oi = 0; oi < oh; ++oi) {
        const std::ptrdiff_t ii =
            static_cast<std::ptrdiff_t>(oi * stride + ki) -
            static_cast<std::ptrdiff_t>(pad);
        for (std::size_t oj = 0; oj < ow; ++oj) {
          const std::ptrdiff_t jj =
              static_cast<std::ptrdiff_t>(oj * stride + kj) -
              static_cast<std::ptrdiff_t>(pad);
          float v = 0.0f;
          if (ii >= 0 && ii < static_cast<std::ptrdiff_t>(h) && jj >= 0 &&
              jj < static_cast<std::ptrdiff_t>(w)) {
            v = src[(ch * h + static_cast<std::size_t>(ii)) * w +
                    static_cast<std::size_t>(jj)];
          }
          drow[oi * ow + oj] = v;
        }
      }
    }
  };
  if (n_rows >= 2 && num_threads() > 1 && !in_parallel_region() &&
      n_rows * ncols >= kParallelFlopThreshold) {
    const std::size_t grain = std::max<std::size_t>(
        1, kParallelFlopThreshold / (8 * std::max<std::size_t>(1, ncols)));
    parallel_for(0, n_rows, grain, fill_rows);
  } else {
    fill_rows(0, n_rows);
  }
}

Tensor col2im(const Tensor& cols, std::size_t channels, std::size_t height,
              std::size_t width, std::size_t kh, std::size_t kw,
              std::size_t stride, std::size_t pad) {
  const std::size_t oh = conv_out_extent(height, kh, stride, pad);
  const std::size_t ow = conv_out_extent(width, kw, stride, pad);
  CLEAR_CHECK_MSG(cols.rank() == 2 && cols.extent(0) == channels * kh * kw &&
                      cols.extent(1) == oh * ow,
                  "col2im: cols shape does not match geometry");
  Tensor image({channels, height, width});
  float* dst = image.data();
  const float* src = cols.data();
  const std::size_t ncols = oh * ow;
  for (std::size_t ch = 0; ch < channels; ++ch) {
    for (std::size_t ki = 0; ki < kh; ++ki) {
      for (std::size_t kj = 0; kj < kw; ++kj) {
        const std::size_t row = (ch * kh + ki) * kw + kj;
        const float* srow = src + row * ncols;
        for (std::size_t oi = 0; oi < oh; ++oi) {
          const std::ptrdiff_t ii =
              static_cast<std::ptrdiff_t>(oi * stride + ki) -
              static_cast<std::ptrdiff_t>(pad);
          if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(height)) continue;
          for (std::size_t oj = 0; oj < ow; ++oj) {
            const std::ptrdiff_t jj =
                static_cast<std::ptrdiff_t>(oj * stride + kj) -
                static_cast<std::ptrdiff_t>(pad);
            if (jj < 0 || jj >= static_cast<std::ptrdiff_t>(width)) continue;
            dst[(ch * height + static_cast<std::size_t>(ii)) * width +
                static_cast<std::size_t>(jj)] += srow[oi * ow + oj];
          }
        }
      }
    }
  }
  return image;
}

}  // namespace clear::ops
