#include "nn/model.hpp"

#include "common/error.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "nn/pool.hpp"

namespace clear::nn {

std::unique_ptr<Sequential> build_cnn_lstm(const CnnLstmConfig& config,
                                           Rng& rng) {
  CLEAR_CHECK_MSG(config.pooled_feature_dim() >= 1 &&
                      config.pooled_window_count() >= 1,
                  "feature map too small for two 2x2 poolings");
  CLEAR_CHECK_MSG(config.n_classes >= 2, "need at least two classes");
  auto model = std::make_unique<Sequential>();
  // Feature extractor (frozen during fine-tuning): layers 0..6.
  model->add(std::make_unique<Conv2d>(1, config.conv1_channels, 3, 3, 1, 1,
                                      rng));          // 0
  model->add(std::make_unique<ReLU>());               // 1
  model->add(std::make_unique<MaxPool2d>(2, 2));      // 2
  model->add(std::make_unique<Conv2d>(config.conv1_channels,
                                      config.conv2_channels, 3, 3, 1, 1,
                                      rng));          // 3
  model->add(std::make_unique<ReLU>());               // 4
  model->add(std::make_unique<MaxPool2d>(2, 2));      // 5
  model->add(std::make_unique<Dropout>(config.dropout, rng));  // 6
  // Recurrent head (re-trained during fine-tuning): layers 7..9.
  model->add(std::make_unique<ToSequence>());         // 7
  model->add(std::make_unique<Lstm>(config.lstm_input_dim(),
                                    config.lstm_hidden, rng));  // 8
  model->add(std::make_unique<Dense>(config.lstm_hidden, config.n_classes,
                                     rng));           // 9
  return model;
}

std::size_t fine_tune_boundary() { return 7; }

std::unique_ptr<Sequential> build_cnn_only(const CnnLstmConfig& config,
                                           Rng& rng) {
  CLEAR_CHECK_MSG(config.pooled_feature_dim() >= 1 &&
                      config.pooled_window_count() >= 1,
                  "feature map too small for two 2x2 poolings");
  auto model = std::make_unique<Sequential>();
  model->add(std::make_unique<Conv2d>(1, config.conv1_channels, 3, 3, 1, 1,
                                      rng));
  model->add(std::make_unique<ReLU>());
  model->add(std::make_unique<MaxPool2d>(2, 2));
  model->add(std::make_unique<Conv2d>(config.conv1_channels,
                                      config.conv2_channels, 3, 3, 1, 1,
                                      rng));
  model->add(std::make_unique<ReLU>());
  model->add(std::make_unique<MaxPool2d>(2, 2));
  model->add(std::make_unique<Dropout>(config.dropout, rng));
  model->add(std::make_unique<Flatten>());
  const std::size_t flat = config.conv2_channels *
                           config.pooled_feature_dim() *
                           config.pooled_window_count();
  // Match the CNN-LSTM's head capacity for a fair comparison.
  model->add(std::make_unique<Dense>(flat, config.lstm_hidden, rng));
  model->add(std::make_unique<ReLU>());
  model->add(std::make_unique<Dense>(config.lstm_hidden, config.n_classes,
                                     rng));
  return model;
}

std::unique_ptr<Sequential> build_lstm_only(const CnnLstmConfig& config,
                                            Rng& rng) {
  auto model = std::make_unique<Sequential>();
  // [N, 1, F, W] -> [N, W, F]: each window column is one step.
  model->add(std::make_unique<ToSequence>());
  model->add(std::make_unique<Lstm>(config.feature_dim, config.lstm_hidden,
                                    rng));
  model->add(std::make_unique<Dense>(config.lstm_hidden, config.n_classes,
                                     rng));
  return model;
}

}  // namespace clear::nn
