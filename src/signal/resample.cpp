#include "signal/resample.hpp"

#include <cmath>

#include "common/error.hpp"

namespace clear::dsp {

std::vector<double> resample_to_length(std::span<const double> x,
                                       std::size_t out_len) {
  CLEAR_CHECK_MSG(!x.empty(), "resample of empty signal");
  CLEAR_CHECK_MSG(out_len >= 1, "resample target length must be >= 1");
  std::vector<double> y(out_len);
  if (x.size() == 1 || out_len == 1) {
    for (auto& v : y) v = x[0];
    return y;
  }
  const double step = static_cast<double>(x.size() - 1) /
                      static_cast<double>(out_len - 1);
  for (std::size_t i = 0; i < out_len; ++i) {
    const double pos = static_cast<double>(i) * step;
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const std::size_t hi = std::min(lo + 1, x.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    y[i] = x[lo] * (1.0 - frac) + x[hi] * frac;
  }
  return y;
}

std::vector<double> resample_rate(std::span<const double> x, double in_rate,
                                  double out_rate) {
  CLEAR_CHECK_MSG(in_rate > 0 && out_rate > 0, "rates must be positive");
  const double duration = static_cast<double>(x.size()) / in_rate;
  const auto out_len = static_cast<std::size_t>(
      std::max(1.0, std::round(duration * out_rate)));
  return resample_to_length(x, out_len);
}

}  // namespace clear::dsp
