#!/usr/bin/env python3
"""Benchmark-regression gate for the SIMD kernel library and the wire.

Two schemas share the gate:

clear-bench-kernels-v1 (bench_kernels --json). Compares *speedups relative
to the scalar oracle* — a same-host, same-run ratio — rather than absolute
throughput, so the committed baseline stays meaningful on machines of
different absolute speed and under CI noise. A vector kernel whose
advantage over scalar shrinks by more than --tolerance (default 15%) fails
the gate; that is exactly the "someone quietly broke the AVX2 GEMM" signal
the perf trajectory exists to catch. ISAs present in the baseline but not
runnable on this host are skipped with a note, never failed. The sweep's
built-in cross-ISA bit-identity check (`bit_identical`) is enforced
unconditionally.

clear-bench-loadgen-v1 (bench_loadgen --json / clear-cli loadgen --json).
Compares the `ratios` object. `answered_fraction` and `ok_fraction` are
deterministic functions of the hashed schedule — any drop below baseline
fails regardless of tolerance. `achieved_ratio` (achieved/offered req/s)
carries the machine's absolute speed, so it alone uses --tolerance; pass a
generous value (the ctest wiring uses 0.6) to keep the gate meaningful
across hosts while still catching a wedged event loop.

clear-bench-artifacts-v1 (bench_artifacts --json). Compares the `gains`
object (density gain of delta checkpoints over full checkpoints per serving
tier — a deterministic function of the workload, gated at --tolerance) and
`cold_load.p99_headroom` (full p99 / delta p99 — a timing ratio, gated at
max(--tolerance, 0.6) since it carries machine noise). The benchmark binary
additionally self-gates the absolute targets (int8 gain >= 5x, delta
cold-load p99 <= 1.2x).

Usage:
  bench_regress.py --bench PATH/bench_kernels --baseline BENCH_kernels.json
  bench_regress.py --current run.json --baseline BENCH_loadgen.json
Options:
  --tolerance FRAC   allowed fractional loss (default 0.15)
  --bench-args STR   extra whitespace-split args for --bench (e.g. "--quick")
  --update           rewrite the baseline from the current run and exit 0

Exit codes: 0 pass, 1 regression or malformed input, 2 usage error.
"""

import argparse
import json
import subprocess
import sys
import tempfile

SCHEMAS = ("clear-bench-kernels-v1", "clear-bench-loadgen-v1",
           "clear-bench-artifacts-v1")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if data.get("schema") not in SCHEMAS:
        sys.exit(f"error: {path}: schema is not one of {', '.join(SCHEMAS)}")
    return data


def run_bench(bench, extra_args):
    with tempfile.NamedTemporaryFile(mode="r", suffix=".json") as tmp:
        proc = subprocess.run([bench, *extra_args, f"--json={tmp.name}"],
                              stdout=subprocess.DEVNULL)
        if proc.returncode != 0:
            sys.exit(f"error: {bench} --json exited {proc.returncode}")
        return load(tmp.name)


def compare_kernels(current, baseline, tolerance):
    """Returns (failures, checked, skipped)."""
    host_isas = set(current.get("isas", []))
    cur_speedups = current.get("speedups", {})

    failures, checked, skipped = [], 0, []
    for bench_name, by_isa in sorted(baseline.get("speedups", {}).items()):
        for isa, base in sorted(by_isa.items()):
            if isa not in host_isas:
                skipped.append(f"{bench_name}/{isa}")
                continue
            cur = cur_speedups.get(bench_name, {}).get(isa)
            if cur is None:
                failures.append(
                    f"{bench_name}/{isa}: missing from current run "
                    f"(baseline {base:.2f}x)")
                continue
            checked += 1
            floor = base * (1.0 - tolerance)
            verdict = "ok" if cur >= floor else "REGRESSION"
            print(f"{bench_name:24s} {isa:6s} baseline {base:6.2f}x  "
                  f"current {cur:6.2f}x  floor {floor:6.2f}x  {verdict}")
            if cur < floor:
                failures.append(
                    f"{bench_name}/{isa}: {cur:.2f}x < floor {floor:.2f}x "
                    f"(baseline {base:.2f}x, tolerance {tolerance:.0%})")
    return failures, checked, skipped


def compare_loadgen(current, baseline, tolerance):
    """Returns (failures, checked, skipped)."""
    failures, checked = [], 0

    # Ratios are only comparable between identical offered workloads.
    cur_cfg, base_cfg = current.get("config", {}), baseline.get("config", {})
    if cur_cfg != base_cfg:
        failures.append(
            f"loadgen config mismatch: current {cur_cfg} vs baseline "
            f"{base_cfg} — ratios are not comparable")
        return failures, checked, []

    cur_ratios = current.get("ratios", {})
    base_ratios = baseline.get("ratios", {})
    # Delivery fractions are deterministic given the hashed schedule: no
    # tolerance. The achieved/offered rate carries machine speed: tolerance.
    gates = [("answered_fraction", 1e-9), ("ok_fraction", 1e-9),
             ("achieved_ratio", tolerance)]
    for name, tol in gates:
        base = base_ratios.get(name)
        if base is None:
            continue
        cur = cur_ratios.get(name)
        if cur is None:
            failures.append(f"ratios.{name}: missing from current run")
            continue
        checked += 1
        floor = base * (1.0 - tol)
        verdict = "ok" if cur >= floor else "REGRESSION"
        print(f"ratios.{name:20s} baseline {base:6.3f}  current {cur:6.3f}  "
              f"floor {floor:6.3f}  {verdict}")
        if cur < floor:
            failures.append(
                f"ratios.{name}: {cur:.3f} < floor {floor:.3f} "
                f"(baseline {base:.3f})")
    return failures, checked, []


def compare_artifacts(current, baseline, tolerance):
    """Returns (failures, checked, skipped)."""
    failures, checked = [], 0

    # Density gains are only comparable between identical workloads.
    cur_cfg, base_cfg = current.get("config", {}), baseline.get("config", {})
    if cur_cfg != base_cfg:
        failures.append(
            f"artifacts config mismatch: current {cur_cfg} vs baseline "
            f"{base_cfg} — density gains are not comparable")
        return failures, checked, []

    # Gain per tier is deterministic (the codec has no randomness): gate at
    # --tolerance. The cold-load headroom is a timing ratio: gate loosely.
    gates = [(f"gains.{tier}", tolerance)
             for tier in sorted(baseline.get("gains", {}))]
    gates.append(("cold_load.p99_headroom", max(tolerance, 0.6)))
    for name, tol in gates:
        obj, key = name.split(".", 1)
        base = baseline.get(obj, {}).get(key)
        if base is None:
            continue
        cur = current.get(obj, {}).get(key)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        checked += 1
        floor = base * (1.0 - tol)
        verdict = "ok" if cur >= floor else "REGRESSION"
        print(f"{name:24s} baseline {base:7.3f}  current {cur:7.3f}  "
              f"floor {floor:7.3f}  {verdict}")
        if cur < floor:
            failures.append(
                f"{name}: {cur:.3f} < floor {floor:.3f} "
                f"(baseline {base:.3f})")
    return failures, checked, []


def main():
    ap = argparse.ArgumentParser(allow_abbrev=False)
    ap.add_argument("--bench", help="benchmark binary to run with --json")
    ap.add_argument("--current", help="pre-recorded current-run JSON")
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--tolerance", type=float, default=0.15)
    ap.add_argument("--bench-args", default="",
                    help="extra args passed to the --bench binary")
    ap.add_argument("--update", action="store_true")
    args = ap.parse_args()
    if bool(args.bench) == bool(args.current):
        ap.error("exactly one of --bench / --current is required")

    current = (run_bench(args.bench, args.bench_args.split())
               if args.bench else load(args.current))
    schema = current["schema"]

    if schema == "clear-bench-kernels-v1" and \
            not current.get("bit_identical", False):
        print("FAIL: kernel outputs are not bit-identical across ISAs")
        return 1

    if args.update:
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(current, f, indent=2)
            f.write("\n")
        print(f"baseline {args.baseline} updated")
        return 0

    baseline = load(args.baseline)
    if baseline["schema"] != schema:
        sys.exit(f"error: schema mismatch: current is {schema}, baseline "
                 f"is {baseline['schema']}")

    if schema == "clear-bench-kernels-v1":
        failures, checked, skipped = compare_kernels(
            current, baseline, args.tolerance)
    elif schema == "clear-bench-artifacts-v1":
        failures, checked, skipped = compare_artifacts(
            current, baseline, args.tolerance)
    else:
        failures, checked, skipped = compare_loadgen(
            current, baseline, args.tolerance)

    if skipped:
        print(f"skipped (ISA not runnable here): {', '.join(skipped)}")
    if checked == 0 and not failures:
        # A gate that silently checks nothing is worse than no gate.
        print("FAIL: no baseline entry was checkable on this host")
        return 1
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nPASS: {checked} ratio(s) within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
