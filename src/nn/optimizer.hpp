// First-order optimizers over a parameter set. Frozen parameters are
// skipped by step() (their gradients are still zeroed), which implements
// partial fine-tuning.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace clear::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Apply one update from the accumulated gradients.
  virtual void step() = 0;

  /// Zero all gradient accumulators (frozen included).
  void zero_grad();

  /// Rescale gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  double clip_grad_norm(double max_norm);

 protected:
  std::vector<Param*> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, double lr, double momentum = 0.0,
      double weight_decay = 0.0);
  void step() override;

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Param*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);
  void step() override;

 private:
  double lr_, beta1_, beta2_, eps_, weight_decay_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace clear::nn
