#include "nn/lstm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "gradcheck.hpp"

namespace clear::nn {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

TEST(Lstm, OutputShapeIsLastHidden) {
  Rng rng(1);
  Lstm lstm(4, 3, rng);
  const Tensor y = lstm.forward(random_tensor({5, 7, 4}, 2));
  EXPECT_EQ(y.extent(0), 5u);
  EXPECT_EQ(y.extent(1), 3u);
}

TEST(Lstm, HiddenStateBounded) {
  Rng rng(3);
  Lstm lstm(4, 6, rng);
  Tensor x = random_tensor({2, 10, 4}, 4);
  for (float& v : x.flat()) v *= 10.0f;  // Large inputs.
  const Tensor y = lstm.forward(x);
  // h = o * tanh(c): |h| < 1 always.
  for (const float v : y.flat()) {
    EXPECT_LT(std::abs(v), 1.0f);
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Lstm, ForgetBiasInitializedToOne) {
  Rng rng(5);
  Lstm lstm(2, 4, rng);
  const auto params = lstm.parameters();
  const Tensor& b = params[2]->value;  // wx, wh, b.
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(b[j], 0.0f);           // input gate
    EXPECT_EQ(b[4 + j], 1.0f);       // forget gate
    EXPECT_EQ(b[8 + j], 0.0f);       // cell
    EXPECT_EQ(b[12 + j], 0.0f);      // output gate
  }
}

TEST(Lstm, SingleStepMatchesManualCell) {
  Rng rng(6);
  Lstm lstm(1, 1, rng);
  const auto params = lstm.parameters();
  // wx = [0.5, -0.3, 0.8, 0.2] (i, f, g, o), wh irrelevant (h0 = 0), b = 0.
  params[0]->value = Tensor({1, 4}, {0.5f, -0.3f, 0.8f, 0.2f});
  params[1]->value = Tensor({1, 4}, {0.9f, 0.9f, 0.9f, 0.9f});
  params[2]->value = Tensor({4}, {0.0f, 0.0f, 0.0f, 0.0f});
  const float xv = 0.7f;
  const Tensor y = lstm.forward(Tensor({1, 1, 1}, {xv}));
  auto sigmoid = [](float v) { return 1.0f / (1.0f + std::exp(-v)); };
  const float i = sigmoid(0.5f * xv);
  const float g = std::tanh(0.8f * xv);
  const float o = sigmoid(0.2f * xv);
  const float c = i * g;  // f * c_prev = 0.
  EXPECT_NEAR(y[0], o * std::tanh(c), 1e-6f);
}

TEST(Lstm, GradCheckSingleStep) {
  Rng rng(7);
  Lstm lstm(3, 2, rng);
  testing::check_layer_gradients(lstm, random_tensor({2, 1, 3}, 8), 9);
}

TEST(Lstm, GradCheckMultiStep) {
  Rng rng(10);
  Lstm lstm(3, 3, rng);
  testing::check_layer_gradients(lstm, random_tensor({2, 4, 3}, 11), 12);
}

TEST(Lstm, GradCheckLongerSequence) {
  Rng rng(13);
  Lstm lstm(2, 2, rng);
  testing::check_layer_gradients(lstm, random_tensor({1, 7, 2}, 14), 15);
}

TEST(Lstm, OrderSensitivity) {
  // An LSTM must distinguish the order of inputs — that is the point of
  // using it over pooled statistics (paper §III-A-3).
  Rng rng(16);
  Lstm lstm(1, 4, rng);
  Tensor ramp_up({1, 6, 1}, {0.1f, 0.2f, 0.4f, 0.6f, 0.8f, 1.0f});
  Tensor ramp_down({1, 6, 1}, {1.0f, 0.8f, 0.6f, 0.4f, 0.2f, 0.1f});
  const Tensor a = lstm.forward(ramp_up);
  const Tensor b = lstm.forward(ramp_down);
  float diff = 0.0f;
  for (std::size_t i = 0; i < a.numel(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 1e-3f);
}

TEST(Lstm, DeterministicForward) {
  Rng rng(17);
  Lstm lstm(3, 3, rng);
  const Tensor x = random_tensor({2, 5, 3}, 18);
  const Tensor a = lstm.forward(x);
  const Tensor b = lstm.forward(x);
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Lstm, RejectsWrongInputDim) {
  Rng rng(19);
  Lstm lstm(3, 2, rng);
  EXPECT_THROW(lstm.forward(Tensor({1, 4, 5})), Error);
  EXPECT_THROW(lstm.forward(Tensor({2, 3})), Error);
  EXPECT_THROW(lstm.backward(Tensor({1, 2})), Error);
}

TEST(Lstm, ParameterShapes) {
  Rng rng(20);
  Lstm lstm(5, 7, rng);
  const auto params = lstm.parameters();
  ASSERT_EQ(params.size(), 3u);
  EXPECT_EQ(params[0]->value.extent(0), 5u);
  EXPECT_EQ(params[0]->value.extent(1), 28u);
  EXPECT_EQ(params[1]->value.extent(0), 7u);
  EXPECT_EQ(params[1]->value.extent(1), 28u);
  EXPECT_EQ(params[2]->value.extent(0), 28u);
}

}  // namespace
}  // namespace clear::nn
