#include "clear/pipeline.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/obs.hpp"
#include "cluster/validity.hpp"
#include "nn/checkpoint.hpp"

namespace clear::core {

ClearPipeline::ClearPipeline(ClearConfig config) : config_(std::move(config)) {
  config_.finalize();
}

void ClearPipeline::fit(const wemac::WemacDataset& dataset,
                        const std::vector<std::size_t>& user_ids,
                        std::uint64_t seed_salt) {
  CLEAR_OBS_SPAN("pipeline.fit");
  CLEAR_OBS_COUNT("pipeline.fits", 1);
  CLEAR_CHECK_MSG(user_ids.size() >= 4, "need at least 4 users to fit");
  users_ = user_ids;
  Rng rng(config_.seed ^ (seed_salt * 0x9E3779B97F4A7C15ull));

  // 1. Normalizer on training users only.
  normalizer_ = fit_normalizer(dataset, users_);
  const std::vector<Tensor> normalized = normalize_all_maps(dataset, normalizer_);

  // 2. Global clustering over per-map observations of each user.
  std::vector<std::vector<cluster::Point>> user_obs(users_.size());
  for (std::size_t u = 0; u < users_.size(); ++u)
    user_obs[u] = map_observations(normalized, dataset.samples_of(users_[u]));

  cluster::GlobalClusteringConfig gc = config_.gc;
  if (gc.k == 0) {
    // Automatic K via silhouette over the user representations (paper
    // §III-A-2: "determine the optimal number of clusters K using standard
    // techniques").
    std::vector<cluster::Point> points(users_.size());
    for (std::size_t u = 0; u < users_.size(); ++u)
      points[u] = cluster::user_representation(user_obs[u]);
    const std::size_t k_max =
        std::min<std::size_t>(8, std::max<std::size_t>(2, users_.size() / 2));
    Rng sel_rng = rng.fork(0x5E1);
    const cluster::KSelection sel =
        cluster::select_k(points, 2, k_max, sel_rng, gc.kmeans);
    gc.k = sel.best_k;
    CLEAR_INFO("auto-selected K=" << gc.k << " by silhouette");
  }
  CLEAR_CHECK_MSG(users_.size() >= gc.k, "need at least K users to fit");
  Rng gc_rng = rng.fork(0x6C0);
  clustering_ = cluster::global_clustering(user_obs, gc, gc_rng);

  // 3. Per-cluster pre-training.
  {
    CLEAR_OBS_SPAN("pretrain");
    models_.clear();
    for (std::size_t k = 0; k < clustering_.clusters.size(); ++k) {
      std::vector<std::size_t> sample_indices;
      for (const std::size_t member : clustering_.clusters[k].members)
        for (const std::size_t s : dataset.samples_of(users_[member]))
          sample_indices.push_back(s);
      Rng model_rng = rng.fork(0x300 + k);
      auto model = nn::build_cnn_lstm(config_.model, model_rng);
      if (sample_indices.size() >= 4) {
        const nn::MapDataset train_set =
            make_map_dataset(dataset, normalized, sample_indices);
        nn::TrainConfig tc = config_.train;
        tc.seed = config_.seed ^ (seed_salt << 8) ^ (k + 1);
        nn::train_classifier(*model, train_set, tc);
      } else {
        CLEAR_WARN("cluster " << k << " has only " << sample_indices.size()
                              << " maps; keeping untrained model");
      }
      models_.push_back(std::move(model));
    }
  }

  // 4. Optional population-general fallback model over all training users.
  //    Uses fresh RNG streams (fork() never advances the parent), so the
  //    cluster models above are bit-identical whether or not this runs.
  general_model_.reset();
  fallback_clusters_.clear();
  if (config_.general_fallback) {
    std::vector<std::size_t> all_samples;
    for (const std::size_t user : users_)
      for (const std::size_t s : dataset.samples_of(user))
        all_samples.push_back(s);
    Rng general_rng = rng.fork(0x9E0);
    auto general = nn::build_cnn_lstm(config_.model, general_rng);
    if (all_samples.size() >= 4) {
      const nn::MapDataset train_set =
          make_map_dataset(dataset, normalized, all_samples);
      nn::TrainConfig tc = config_.train;
      tc.seed = config_.seed ^ (seed_salt << 8) ^ 0x9E9E9E9Full;
      nn::train_classifier(*general, train_set, tc);
    } else {
      CLEAR_WARN("too few maps for the general fallback model; "
                 "keeping it untrained");
    }
    general_model_ = std::move(general);
  }
}

nn::Sequential& ClearPipeline::cluster_model(std::size_t k) {
  CLEAR_CHECK_MSG(k < models_.size(), "cluster index out of range");
  return *models_[k];
}

nn::Sequential& ClearPipeline::general_model() {
  CLEAR_CHECK_MSG(general_model_ != nullptr, "no general fallback model");
  return *general_model_;
}

cluster::AssignmentResult ClearPipeline::assign_user(
    const wemac::WemacDataset& dataset, std::size_t user_id, double fraction,
    cluster::AssignStrategy strategy) const {
  CLEAR_CHECK_MSG(fraction > 0.0 && fraction <= 1.0,
                  "assignment fraction must lie in (0, 1]");
  const std::vector<std::size_t>& all = dataset.samples_of(user_id);
  const auto n = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(all.size()) +
                                  0.5));
  const std::vector<std::size_t> prefix(all.begin(),
                                        all.begin() + std::min(n, all.size()));
  const std::vector<Tensor> maps = normalize_samples(dataset, prefix);
  std::vector<cluster::Point> obs;
  obs.reserve(maps.size());
  for (const Tensor& m : maps) obs.push_back(features::feature_map_mean(m));
  return assign_observations(obs, strategy);
}

cluster::AssignmentResult ClearPipeline::assign_observations(
    const std::vector<cluster::Point>& observations,
    cluster::AssignStrategy strategy) const {
  CLEAR_CHECK_MSG(fitted(), "pipeline not fitted");
  return cluster::assign_new_user(observations, clustering_, strategy);
}

std::vector<Tensor> ClearPipeline::normalize_samples(
    const wemac::WemacDataset& dataset,
    const std::vector<std::size_t>& sample_indices) const {
  CLEAR_CHECK_MSG(normalizer_.fitted(), "pipeline not fitted");
  std::vector<Tensor> maps;
  maps.reserve(sample_indices.size());
  for (const std::size_t s : sample_indices) {
    Tensor m = dataset.samples()[s].feature_map;
    normalizer_.apply_map(m);
    maps.push_back(std::move(m));
  }
  return maps;
}

nn::BinaryMetrics ClearPipeline::evaluate_on(
    const wemac::WemacDataset& dataset, std::size_t k,
    const std::vector<std::size_t>& sample_indices) {
  const std::vector<Tensor> maps = normalize_samples(dataset, sample_indices);
  nn::MapDataset set;
  for (std::size_t i = 0; i < maps.size(); ++i) {
    set.maps.push_back(&maps[i]);
    set.labels.push_back(
        static_cast<std::size_t>(dataset.samples()[sample_indices[i]].label));
  }
  return nn::evaluate(cluster_model(k), set);
}

std::unique_ptr<nn::Sequential> ClearPipeline::clone_cluster_model(
    std::size_t k) {
  return model_from_bytes(serialize_cluster_model(k));
}

nn::TrainHistory ClearPipeline::fine_tune_on(
    nn::Sequential& model, const wemac::WemacDataset& dataset,
    const std::vector<std::size_t>& sample_indices,
    std::uint64_t seed_salt) const {
  CLEAR_OBS_SPAN("finetune");
  CLEAR_OBS_COUNT("finetune.runs", 1);
  CLEAR_OBS_COUNT("finetune.samples", sample_indices.size());
  const std::vector<Tensor> maps = normalize_samples(dataset, sample_indices);
  nn::MapDataset set;
  for (std::size_t i = 0; i < maps.size(); ++i) {
    set.maps.push_back(&maps[i]);
    set.labels.push_back(
        static_cast<std::size_t>(dataset.samples()[sample_indices[i]].label));
  }
  model.freeze_below(nn::fine_tune_boundary());
  nn::TrainConfig tc = config_.finetune;
  tc.seed = config_.seed ^ 0xF1 ^ (seed_salt * 0x2545F4914F6CDD1Dull);
  nn::TrainHistory history = nn::train_classifier(model, set, tc);
  model.freeze_below(0);
  return history;
}

std::string ClearPipeline::serialize_cluster_model(std::size_t k) {
  std::ostringstream os(std::ios::binary);
  nn::save_checkpoint(os, cluster_model(k));
  return os.str();
}

std::string ClearPipeline::serialize_general_model() {
  if (!has_general_model()) return {};
  std::ostringstream os(std::ios::binary);
  nn::save_checkpoint(os, *general_model_);
  return os.str();
}

std::unique_ptr<nn::Sequential> ClearPipeline::model_from_bytes(
    const std::string& bytes) const {
  Rng rng(1);  // Weights are overwritten by the checkpoint.
  auto model = nn::build_cnn_lstm(config_.model, rng);
  std::istringstream is(bytes, std::ios::binary);
  nn::load_checkpoint(is, *model);
  return model;
}

ClearPipeline::State ClearPipeline::export_state() {
  CLEAR_CHECK_MSG(fitted(), "cannot export an unfitted pipeline");
  State state;
  state.users = users_;
  state.normalizer = normalizer_;
  state.clustering = clustering_;
  for (std::size_t k = 0; k < models_.size(); ++k)
    state.checkpoints.push_back(serialize_cluster_model(k));
  state.general_checkpoint = serialize_general_model();
  return state;
}

void ClearPipeline::import_state(State state) {
  CLEAR_CHECK_MSG(!state.checkpoints.empty(), "state has no checkpoints");
  CLEAR_CHECK_MSG(state.clustering.clusters.size() == state.checkpoints.size(),
                  "state cluster/checkpoint count mismatch");
  CLEAR_CHECK_MSG(state.normalizer.fitted(), "state normalizer not fitted");

  // Validate the general fallback blob first: a corrupt fallback must never
  // be silently substituted for anything, so it is dropped with a warning.
  std::unique_ptr<nn::Sequential> general;
  if (!state.general_checkpoint.empty()) {
    try {
      general = model_from_bytes(state.general_checkpoint);
    } catch (const Error& e) {
      CLEAR_WARN("general fallback checkpoint unusable (" << e.what()
                                                          << "); dropping it");
      state.general_checkpoint.clear();
    }
  }

  std::vector<std::unique_ptr<nn::Sequential>> models;
  std::vector<std::size_t> fallbacks;
  for (std::size_t k = 0; k < state.checkpoints.size(); ++k) {
    const std::string& bytes = state.checkpoints[k];
    if (!bytes.empty()) {
      try {
        models.push_back(model_from_bytes(bytes));
        continue;
      } catch (const Error& e) {
        CLEAR_CHECK_MSG(general != nullptr,
                        "cluster " << k << " checkpoint unusable ("
                                   << e.what()
                                   << ") and no general fallback available");
        CLEAR_WARN("cluster " << k << " checkpoint unusable (" << e.what()
                              << "); degrading to the general model");
      }
    } else {
      CLEAR_CHECK_MSG(general != nullptr,
                      "cluster " << k
                                 << " checkpoint missing and no general "
                                    "fallback available");
      CLEAR_WARN("cluster " << k
                            << " checkpoint missing; degrading to the "
                               "general model");
    }
    models.push_back(model_from_bytes(state.general_checkpoint));
    fallbacks.push_back(k);
  }

  users_ = std::move(state.users);
  normalizer_ = std::move(state.normalizer);
  clustering_ = std::move(state.clustering);
  models_ = std::move(models);
  general_model_ = std::move(general);
  fallback_clusters_ = std::move(fallbacks);
}

}  // namespace clear::core
