#include "clear/evaluation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace clear::core {
namespace {

ClearConfig eval_config() {
  ClearConfig c = smoke_config();
  c.data.seed = 31;
  c.data.n_volunteers = 10;
  c.data.trials_per_volunteer = 6;
  c.train.epochs = 2;
  c.finetune.epochs = 3;
  c.general_model_users = 4;
  c.finalize();
  return c;
}

const wemac::WemacDataset& eval_dataset() {
  static const wemac::WemacDataset d = wemac::generate_wemac(eval_config().data);
  return d;
}

TEST(Aggregate, MeanStdOverFolds) {
  Aggregate a;
  a.add_percent(80.0, 70.0);
  a.add_percent(90.0, 80.0);
  a.finalize();
  EXPECT_DOUBLE_EQ(a.accuracy.mean, 85.0);
  EXPECT_DOUBLE_EQ(a.f1.mean, 75.0);
  EXPECT_NEAR(a.accuracy.stddev, std::sqrt(50.0), 1e-9);
  EXPECT_EQ(a.folds(), 2u);
}

TEST(Aggregate, AddConvertsToPercent) {
  Aggregate a;
  nn::BinaryMetrics m;
  m.tp = 3;
  m.tn = 1;
  m.fp = 0;
  m.fn = 0;
  m.accuracy = 1.0;
  m.f1 = 1.0;
  a.add(m);
  a.finalize();
  EXPECT_DOUBLE_EQ(a.accuracy.mean, 100.0);
}

TEST(ClearValidation, SmokeRunProducesAllRows) {
  ClearOptions options;
  options.max_folds = 3;
  options.run_finetune = true;
  const ClearValidationResult r =
      run_clear_validation(eval_dataset(), eval_config(), options);
  EXPECT_EQ(r.no_ft.folds(), 3u);
  EXPECT_EQ(r.rt.folds(), 3u);
  EXPECT_EQ(r.with_ft.folds(), 3u);
  for (const double acc : r.no_ft.fold_accuracy) {
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 100.0);
  }
  EXPECT_GE(r.ca_consistency, 0.0);
  EXPECT_LE(r.ca_consistency, 1.0);
}

TEST(ClearValidation, ArtifactsCaptureFoldState) {
  ClearOptions options;
  options.max_folds = 2;
  options.keep_artifacts = true;
  options.run_finetune = false;
  const ClearConfig config = eval_config();
  const ClearValidationResult r =
      run_clear_validation(eval_dataset(), config, options);
  ASSERT_EQ(r.artifacts.size(), 2u);
  for (const ClearFoldArtifacts& a : r.artifacts) {
    EXPECT_EQ(a.checkpoints.size(), config.gc.k);
    EXPECT_LT(a.assigned_cluster, config.gc.k);
    EXPECT_TRUE(a.normalizer.fitted());
    EXPECT_EQ(a.fitted_users.size(), eval_dataset().n_volunteers() - 1);
    // The test user is excluded from the fitted users.
    for (const std::size_t u : a.fitted_users) EXPECT_NE(u, a.test_user);
    EXPECT_FALSE(a.split.test.empty());
    for (const std::string& blob : a.checkpoints)
      EXPECT_GT(blob.size(), 100u);
  }
  EXPECT_EQ(r.artifacts[0].test_user, 0u);
  EXPECT_EQ(r.artifacts[1].test_user, 1u);
}

TEST(ClearValidation, SkipFinetuneLeavesRowEmpty) {
  ClearOptions options;
  options.max_folds = 1;
  options.run_finetune = false;
  const ClearValidationResult r =
      run_clear_validation(eval_dataset(), eval_config(), options);
  EXPECT_EQ(r.with_ft.folds(), 0u);
  EXPECT_EQ(r.no_ft.folds(), 1u);
}

TEST(ClearValidation, ProgressCallbackFires) {
  ClearOptions options;
  options.max_folds = 2;
  options.run_finetune = false;
  std::vector<std::size_t> seen;
  options.progress = [&seen](std::size_t fold, std::size_t total) {
    seen.push_back(fold);
    EXPECT_EQ(total, 2u);
  };
  run_clear_validation(eval_dataset(), eval_config(), options);
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1}));
}

// Golden per-fold metrics for the fixed seed above (printed with %.17g from
// a reference run). Pins the full numeric pipeline — dataset synthesis,
// normalization, clustering, training, evaluation — so that any change to
// reduction order or chunking that silently shifts results fails here, at
// any thread count (the parallel runtime guarantees thread-count-invariant
// numbers; see DESIGN.md "Threading model & determinism").
TEST(ClearValidation, PerFoldMetricsMatchGoldenSeed) {
  ClearOptions options;
  options.max_folds = 3;
  options.run_finetune = false;
  const ClearValidationResult r =
      run_clear_validation(eval_dataset(), eval_config(), options);
  const std::vector<double> golden_acc = {33.333333333333329, 100.0,
                                          33.333333333333329};
  const std::vector<double> golden_f1 = {0.0, 100.0, 50.0};
  EXPECT_EQ(r.no_ft.fold_accuracy, golden_acc);
  EXPECT_EQ(r.no_ft.fold_f1, golden_f1);
  EXPECT_EQ(r.ca_consistency, 1.0);
}

// A shorter sweep must be an exact prefix of a longer one: folds are
// self-contained (per-fold seed salts), so fold i's numbers cannot depend
// on how many folds run after it.
TEST(ClearValidation, ShorterSweepIsPrefixOfLonger) {
  ClearOptions short_opts;
  short_opts.max_folds = 2;
  short_opts.run_finetune = false;
  ClearOptions long_opts;
  long_opts.max_folds = 3;
  long_opts.run_finetune = false;
  const auto s = run_clear_validation(eval_dataset(), eval_config(), short_opts);
  const auto l = run_clear_validation(eval_dataset(), eval_config(), long_opts);
  ASSERT_EQ(s.no_ft.fold_accuracy.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(s.no_ft.fold_accuracy[i], l.no_ft.fold_accuracy[i]);
    EXPECT_EQ(s.no_ft.fold_f1[i], l.no_ft.fold_f1[i]);
  }
}

TEST(ClearValidation, DeterministicAcrossRuns) {
  ClearOptions options;
  options.max_folds = 2;
  options.run_finetune = false;
  const auto a = run_clear_validation(eval_dataset(), eval_config(), options);
  const auto b = run_clear_validation(eval_dataset(), eval_config(), options);
  EXPECT_EQ(a.no_ft.fold_accuracy, b.no_ft.fold_accuracy);
  EXPECT_EQ(a.rt.fold_accuracy, b.rt.fold_accuracy);
}

TEST(GeneralModel, RunsLosoOverChosenUsers) {
  const Aggregate a = run_general_model(eval_dataset(), eval_config());
  EXPECT_EQ(a.folds(), eval_config().general_model_users);
  EXPECT_GE(a.accuracy.mean, 0.0);
  EXPECT_LE(a.accuracy.mean, 100.0);
}

TEST(GeneralModel, ValidatesUserCount) {
  ClearConfig bad = eval_config();
  bad.general_model_users = 99;
  EXPECT_THROW(run_general_model(eval_dataset(), bad), Error);
}

TEST(ClValidation, ProducesClustersAndMetrics) {
  const ClValidationResult r = run_cl_validation(eval_dataset(), eval_config());
  EXPECT_EQ(r.cluster_sizes.size(), eval_config().gc.k);
  std::size_t total = 0;
  for (const std::size_t s : r.cluster_sizes) total += s;
  EXPECT_EQ(total, eval_dataset().n_volunteers());
  // Intra-cluster LOSO: one fold per user in clusters of size >= 2.
  EXPECT_GT(r.cl.folds(), 0u);
  EXPECT_EQ(r.rt.folds(), r.cl.folds());
  EXPECT_GE(r.silhouette, -1.0);
  EXPECT_LE(r.silhouette, 1.0);
}

TEST(DominantArchetype, MatchesGroundTruthMajority) {
  const auto& d = eval_dataset();
  std::vector<std::size_t> fitted;
  for (std::size_t u = 0; u < d.n_volunteers(); ++u) fitted.push_back(u);
  cluster::ClusterModel fake;
  fake.members = {0, 1, 2};
  const std::size_t result = dominant_archetype(d, fitted, fake);
  // Must be the archetype of one of the members.
  std::vector<std::size_t> counts(wemac::kNumArchetypes, 0);
  for (const std::size_t m : fake.members)
    ++counts[d.volunteers()[m].archetype_id];
  EXPECT_EQ(counts[result],
            *std::max_element(counts.begin(), counts.end()));
}

}  // namespace
}  // namespace clear::core
