#include "common/fault.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace clear::fault {
namespace {

std::vector<double> ramp(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i) * 0.01;
  return v;
}

TEST(FaultSpec, DefaultInjectsNothing) {
  FaultSpec spec;
  EXPECT_FALSE(spec.any());
  std::vector<double> x = ramp(256);
  const std::vector<double> clean = x;
  const FaultStats s = inject(x, 64.0, 42, spec);
  EXPECT_EQ(x, clean);  // Bit-identical, not just close.
  EXPECT_EQ(s.faulted(), 0u);
  EXPECT_EQ(s.total_samples, 256u);
}

TEST(FaultInject, DeterministicAcrossCalls) {
  FaultSpec spec;
  spec.seed = 7;
  spec.dropout_rate = 0.1;
  spec.corrupt_rate = 0.05;
  spec.jitter_rate = 0.02;
  std::vector<double> a = ramp(512);
  std::vector<double> b = ramp(512);
  const FaultStats sa = inject(a, 64.0, 3, spec);
  const FaultStats sb = inject(b, 64.0, 3, spec);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i]))
      EXPECT_TRUE(std::isnan(b[i])) << "at " << i;
    else
      EXPECT_EQ(a[i], b[i]) << "at " << i;
  }
  EXPECT_EQ(sa.dropped, sb.dropped);
  EXPECT_EQ(sa.corrupted, sb.corrupted);
  EXPECT_EQ(sa.jittered, sb.jittered);
}

TEST(FaultInject, DeterministicAcrossThreadCounts) {
  // Decisions are pure hashes of (seed, stream, kind, index), so injecting
  // many streams in parallel must match the serial result exactly.
  FaultSpec spec;
  spec.seed = 11;
  spec.dropout_rate = 0.1;
  spec.corrupt_rate = 0.02;
  constexpr std::size_t kStreams = 16;
  auto run_with_threads = [&](std::size_t threads) {
    NumThreadsGuard guard(threads);
    std::vector<std::vector<double>> streams(kStreams, ramp(256));
    parallel_for(0, kStreams, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end; ++s)
        inject(streams[s], 64.0, s, spec);
    });
    return streams;
  };
  const auto serial = run_with_threads(1);
  const auto threaded = run_with_threads(8);
  for (std::size_t s = 0; s < kStreams; ++s)
    for (std::size_t i = 0; i < serial[s].size(); ++i) {
      if (std::isnan(serial[s][i]))
        EXPECT_TRUE(std::isnan(threaded[s][i]));
      else
        EXPECT_EQ(serial[s][i], threaded[s][i]);
    }
}

TEST(FaultInject, StreamsAreIndependent) {
  FaultSpec spec;
  spec.corrupt_rate = 0.2;
  std::vector<double> a = ramp(256);
  std::vector<double> b = ramp(256);
  inject(a, 64.0, 1, spec);
  inject(b, 64.0, 2, spec);
  EXPECT_NE(a, b);  // Different stream ids draw different decisions.
}

TEST(FaultInject, DropoutBlanksWholeBlocks) {
  FaultSpec spec;
  spec.dropout_rate = 1.0;  // Every block drops.
  spec.dropout_seconds = 0.25;
  std::vector<double> x = ramp(256);
  const FaultStats s = inject(x, 64.0, 5, spec);
  EXPECT_EQ(s.dropped, 256u);
  for (const double v : x) EXPECT_TRUE(std::isnan(v));
}

TEST(FaultInject, CorruptionRateIsRoughlyHonored) {
  FaultSpec spec;
  spec.corrupt_rate = 0.10;
  std::vector<double> x = ramp(20000);
  const FaultStats s = inject(x, 64.0, 9, spec);
  const double frac =
      static_cast<double>(s.corrupted) / static_cast<double>(x.size());
  EXPECT_NEAR(frac, 0.10, 0.02);
}

TEST(FaultInject, JitterRepeatsPreviousSample) {
  FaultSpec spec;
  spec.jitter_rate = 1.0;
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const FaultStats s = inject(x, 4.0, 1, spec);
  EXPECT_EQ(s.jittered, 3u);  // Sample 0 has no predecessor.
  for (const double v : x) EXPECT_EQ(v, 1.0);
}

TEST(FaultStats, MergeAndFractions) {
  FaultStats a;
  a.total_samples = 100;
  a.dropped = 5;
  FaultStats b;
  b.total_samples = 100;
  b.corrupted = 10;
  b.jittered = 5;
  a.merge(b);
  EXPECT_EQ(a.total_samples, 200u);
  EXPECT_EQ(a.faulted(), 20u);
  EXPECT_DOUBLE_EQ(a.faulted_fraction(), 0.1);
  EXPECT_DOUBLE_EQ(FaultStats{}.faulted_fraction(), 0.0);
}

TEST(Sanitize, CleanSignalUntouched) {
  std::vector<double> x = ramp(64);
  const std::vector<double> clean = x;
  const SanitizeStats s = sanitize(x, GapFill::kHoldLast, -100.0, 100.0);
  EXPECT_EQ(x, clean);
  EXPECT_EQ(s.filled, 0u);
  EXPECT_EQ(s.clamped, 0u);
}

TEST(Sanitize, HoldLastFillsGap) {
  const double nan = std::nan("");
  std::vector<double> x = {1.0, 2.0, nan, nan, 5.0};
  const SanitizeStats s = sanitize(x, GapFill::kHoldLast, -10.0, 10.0);
  EXPECT_EQ(x, (std::vector<double>{1.0, 2.0, 2.0, 2.0, 5.0}));
  EXPECT_EQ(s.filled, 2u);
}

TEST(Sanitize, LinearInterpBridgesGap) {
  const double nan = std::nan("");
  std::vector<double> x = {1.0, nan, nan, 4.0};
  sanitize(x, GapFill::kLinearInterp, -10.0, 10.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(Sanitize, LeadingGapBackfills) {
  const double nan = std::nan("");
  std::vector<double> x = {nan, nan, 3.0, 4.0};
  sanitize(x, GapFill::kLinearInterp, -10.0, 10.0);
  EXPECT_EQ(x, (std::vector<double>{3.0, 3.0, 3.0, 4.0}));
}

TEST(Sanitize, TrailingGapHoldsEvenUnderInterp) {
  const double nan = std::nan("");
  std::vector<double> x = {1.0, 2.0, nan, nan};
  sanitize(x, GapFill::kLinearInterp, -10.0, 10.0);
  EXPECT_EQ(x, (std::vector<double>{1.0, 2.0, 2.0, 2.0}));
}

TEST(Sanitize, AllBadBecomesZeros) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> x = {std::nan(""), inf, -inf};
  const SanitizeStats s = sanitize(x, GapFill::kHoldLast, -1.0, 1.0);
  EXPECT_EQ(x, (std::vector<double>{0.0, 0.0, 0.0}));
  EXPECT_EQ(s.filled, 3u);
}

TEST(Sanitize, ClampsOutOfRange) {
  std::vector<double> x = {-50.0, 0.5, 50.0};
  const SanitizeStats s = sanitize(x, GapFill::kHoldLast, -1.0, 1.0);
  EXPECT_EQ(x, (std::vector<double>{-1.0, 0.5, 1.0}));
  EXPECT_EQ(s.clamped, 2u);
}

TEST(Sanitize, InjectThenSanitizeLeavesFiniteInRange) {
  FaultSpec spec;
  spec.dropout_rate = 0.2;
  spec.corrupt_rate = 0.1;
  std::vector<double> x = ramp(1024);
  inject(x, 64.0, 77, spec);
  sanitize(x, GapFill::kHoldLast, -5.0, 15.0);
  for (const double v : x) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, -5.0);
    EXPECT_LE(v, 15.0);
  }
}

TEST(IoFailure, CountdownFiresOnNthOperation) {
  disarm_io_failure();
  EXPECT_FALSE(io_failure_armed());
  arm_io_failure(3);
  EXPECT_TRUE(io_failure_armed());
  EXPECT_NO_THROW(maybe_fail_io("op1"));
  EXPECT_NO_THROW(maybe_fail_io("op2"));
  try {
    maybe_fail_io("op3");
    FAIL() << "expected injected IO failure";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("injected IO failure at op3"),
              std::string::npos);
  }
  // Fires once, then self-disarms.
  EXPECT_FALSE(io_failure_armed());
  EXPECT_NO_THROW(maybe_fail_io("op4"));
}

TEST(IoFailure, DisarmCancels) {
  arm_io_failure(1);
  disarm_io_failure();
  EXPECT_NO_THROW(maybe_fail_io("op"));
}

TEST(ShardFaults, DropHeartbeatFiresExactlyOnceAtCountdown) {
  arm_shard_drop_heartbeat(2);
  EXPECT_FALSE(shard_drop_heartbeat_fires());  // countdown 2 -> 1
  EXPECT_TRUE(shard_drop_heartbeat_fires());   // fires
  EXPECT_FALSE(shard_drop_heartbeat_fires());  // spent, never re-fires
  EXPECT_FALSE(shard_drop_heartbeat_fires());
  disarm_shard_drop_heartbeat();
}

TEST(ShardFaults, DropHeartbeatDisarmedNeverFires) {
  disarm_shard_drop_heartbeat();
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(shard_drop_heartbeat_fires());
  arm_shard_drop_heartbeat(3);
  disarm_shard_drop_heartbeat();
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(shard_drop_heartbeat_fires());
}

TEST(ShardFaults, MigrateIoFailThrowsOnceAtCountdownWithSite) {
  arm_migrate_io_fail(2);
  EXPECT_NO_THROW(maybe_fail_migrate_io("import checkpoint build"));
  try {
    maybe_fail_migrate_io("import checkpoint store");
    FAIL() << "armed migration IO fault did not fire";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("import checkpoint store"),
              std::string::npos)
        << e.what();
  }
  EXPECT_NO_THROW(maybe_fail_migrate_io("import checkpoint build"));
  disarm_migrate_io_fail();
}

TEST(ShardFaults, MigrateIoFailDisarmedIsANoOp) {
  disarm_migrate_io_fail();
  for (int i = 0; i < 8; ++i)
    EXPECT_NO_THROW(maybe_fail_migrate_io("import checkpoint build"));
}

TEST(MixAndUniform, StableAndWellDistributed) {
  // Pin the decision function: changing it would silently re-roll every
  // recorded robustness sweep.
  EXPECT_EQ(mix(1, 2, 3, 4), mix(1, 2, 3, 4));
  EXPECT_NE(mix(1, 2, 3, 4), mix(1, 2, 3, 5));
  EXPECT_NE(mix(1, 2, 3, 4), mix(2, 1, 3, 4));
  double lo = 1.0;
  double hi = 0.0;
  double sum = 0.0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    const double u = uniform01(mix(1, 2, 3, static_cast<std::uint64_t>(i)));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

}  // namespace
}  // namespace clear::fault
