#include "cluster/kmeans.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"

namespace clear::cluster {
namespace {

/// Three well-separated Gaussian blobs in 2-D.
std::vector<Point> blobs(std::size_t per_blob, std::uint64_t seed,
                         double spread = 0.3) {
  Rng rng(seed);
  const std::vector<Point> centers = {{0, 0}, {10, 0}, {0, 10}};
  std::vector<Point> points;
  for (const Point& c : centers)
    for (std::size_t i = 0; i < per_blob; ++i)
      points.push_back({c[0] + rng.normal(0.0, spread),
                        c[1] + rng.normal(0.0, spread)});
  return points;
}

TEST(Distance, KnownValues) {
  EXPECT_DOUBLE_EQ(squared_distance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_THROW(squared_distance({1}, {1, 2}), Error);
}

TEST(MeanPoint, Averages) {
  const Point a = {0, 2};
  const Point b = {4, 6};
  const Point m = mean_point({&a, &b});
  EXPECT_DOUBLE_EQ(m[0], 2.0);
  EXPECT_DOUBLE_EQ(m[1], 4.0);
  EXPECT_THROW(mean_point({}), Error);
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  const auto points = blobs(20, 1);
  Rng rng(2);
  const KMeansResult r = kmeans(points, 3, rng);
  // All points of one blob share one label, and the three labels differ.
  std::set<std::size_t> labels;
  for (std::size_t b = 0; b < 3; ++b) {
    const std::size_t first = r.assignment[b * 20];
    labels.insert(first);
    for (std::size_t i = 0; i < 20; ++i)
      EXPECT_EQ(r.assignment[b * 20 + i], first);
  }
  EXPECT_EQ(labels.size(), 3u);
}

TEST(KMeans, CentroidsNearTrueCenters) {
  const auto points = blobs(50, 3, 0.2);
  Rng rng(4);
  const KMeansResult r = kmeans(points, 3, rng);
  const std::vector<Point> truth = {{0, 0}, {10, 0}, {0, 10}};
  for (const Point& t : truth) {
    double best = 1e18;
    for (const Point& c : r.centroids) best = std::min(best, distance(t, c));
    EXPECT_LT(best, 0.5);
  }
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  const auto points = blobs(20, 5, 1.0);
  Rng rng(6);
  const double i2 = kmeans(points, 2, rng).inertia;
  const double i3 = kmeans(points, 3, rng).inertia;
  const double i6 = kmeans(points, 6, rng).inertia;
  EXPECT_GT(i2, i3);
  EXPECT_GT(i3, i6);
}

TEST(KMeans, KEqualsOneGivesGrandMean) {
  const std::vector<Point> points = {{0, 0}, {2, 2}, {4, 4}};
  Rng rng(7);
  const KMeansResult r = kmeans(points, 1, rng);
  EXPECT_DOUBLE_EQ(r.centroids[0][0], 2.0);
  EXPECT_DOUBLE_EQ(r.centroids[0][1], 2.0);
}

TEST(KMeans, KEqualsNPutsEachPointAlone) {
  const std::vector<Point> points = {{0, 0}, {5, 0}, {0, 5}};
  Rng rng(8);
  const KMeansResult r = kmeans(points, 3, rng);
  std::set<std::size_t> labels(r.assignment.begin(), r.assignment.end());
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_NEAR(r.inertia, 0.0, 1e-12);
}

TEST(KMeans, HandlesDuplicatePoints) {
  std::vector<Point> points(10, Point{1.0, 1.0});
  points.push_back({5.0, 5.0});
  Rng rng(9);
  const KMeansResult r = kmeans(points, 2, rng);
  EXPECT_EQ(r.assignment.size(), points.size());
  // The duplicates end up together.
  for (std::size_t i = 1; i < 10; ++i)
    EXPECT_EQ(r.assignment[i], r.assignment[0]);
}

TEST(KMeans, Validation) {
  Rng rng(10);
  EXPECT_THROW(kmeans({}, 1, rng), Error);
  EXPECT_THROW(kmeans({{1.0}}, 2, rng), Error);
  EXPECT_THROW(kmeans({{1.0}, {2.0}}, 0, rng), Error);
  EXPECT_THROW(kmeans({{1.0}, {1.0, 2.0}}, 1, rng), Error);  // Ragged.
}

TEST(KMeans, DeterministicGivenSeed) {
  const auto points = blobs(15, 11);
  Rng r1(12), r2(12);
  const KMeansResult a = kmeans(points, 3, r1);
  const KMeansResult b = kmeans(points, 3, r2);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, MoreRestartsNeverWorse) {
  const auto points = blobs(10, 13, 2.0);
  Rng r1(14), r2(14);
  KMeansOptions one;
  one.restarts = 1;
  KMeansOptions many;
  many.restarts = 10;
  const double i1 = kmeans(points, 3, r1, one).inertia;
  const double i10 = kmeans(points, 3, r2, many).inertia;
  EXPECT_LE(i10, i1 + 1e-9);
}

TEST(KMeans, EmptyPointSetThrows) {
  Rng rng(1);
  EXPECT_THROW(kmeans({}, 1, rng), Error);
  EXPECT_THROW(kmeans({}, 3, rng), Error);
}

TEST(KMeans, AllCoincidentPointsSeedUniformly) {
  // Every point identical: after the first centroid the k-means++ weights
  // are all exactly zero, which used to bias the weighted pick toward the
  // last index (and could index out of bounds on fp residue). The fallback
  // now draws uniformly via the deterministic Rng.
  const std::vector<Point> points(8, Point{2.0, -3.0});
  Rng r1(7), r2(7);
  const KMeansResult a = kmeans(points, 3, r1);
  const KMeansResult b = kmeans(points, 3, r2);
  ASSERT_EQ(a.centroids.size(), 3u);
  for (const Point& c : a.centroids) {
    EXPECT_DOUBLE_EQ(c[0], 2.0);
    EXPECT_DOUBLE_EQ(c[1], -3.0);
  }
  EXPECT_DOUBLE_EQ(a.inertia, 0.0);
  EXPECT_EQ(a.assignment, b.assignment);  // Fallback stays deterministic.
}

TEST(KMeans, MostlyCoincidentPointsStillPickValidCentroids) {
  // One outlier among duplicates: the weighted pick has a single non-zero
  // slot, so any fp residue in the cumulative walk used to land on a
  // zero-weight trailing duplicate. All centroids must be actual points.
  std::vector<Point> points(9, Point{1.0, 1.0});
  points[4] = {100.0, 100.0};
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const KMeansResult res = kmeans(points, 2, rng);
    ASSERT_EQ(res.centroids.size(), 2u);
    for (const Point& c : res.centroids) {
      const bool is_dup = c[0] == 1.0 && c[1] == 1.0;
      const bool is_outlier = c[0] == 100.0 && c[1] == 100.0;
      EXPECT_TRUE(is_dup || is_outlier)
          << "seed " << seed << ": centroid (" << c[0] << ", " << c[1]
          << ") is not one of the input points";
    }
    EXPECT_NEAR(res.inertia, 0.0, 1e-12);
  }
}

TEST(NearestCentroid, PicksClosest) {
  const std::vector<Point> centroids = {{0, 0}, {10, 10}};
  EXPECT_EQ(nearest_centroid({1, 1}, centroids), 0u);
  EXPECT_EQ(nearest_centroid({9, 9}, centroids), 1u);
  EXPECT_THROW(nearest_centroid({1, 1}, {}), Error);
}

}  // namespace
}  // namespace clear::cluster
