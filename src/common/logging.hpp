// Leveled stderr logging. Benches and examples use INFO for progress; the
// libraries themselves stay silent below WARN so that library consumers
// control their own output.
#pragma once

#include <sstream>
#include <string>

namespace clear::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Default: kInfo.
void set_level(Level level);
Level level();

/// Emit a message (adds timestamp + level prefix, writes to stderr).
void emit(Level level, const std::string& message);

namespace detail {
struct Sink {
  Level level;
  std::ostringstream os;
  ~Sink() { emit(level, os.str()); }
};
}  // namespace detail

}  // namespace clear::log

#define CLEAR_LOG(lvl, expr)                                        \
  do {                                                              \
    if (static_cast<int>(lvl) >= static_cast<int>(clear::log::level())) { \
      clear::log::detail::Sink sink_{lvl, {}};                      \
      sink_.os << expr;                                             \
    }                                                               \
  } while (0)

#define CLEAR_DEBUG(expr) CLEAR_LOG(clear::log::Level::kDebug, expr)
#define CLEAR_INFO(expr) CLEAR_LOG(clear::log::Level::kInfo, expr)
#define CLEAR_WARN(expr) CLEAR_LOG(clear::log::Level::kWarn, expr)
#define CLEAR_ERROR(expr) CLEAR_LOG(clear::log::Level::kError, expr)
