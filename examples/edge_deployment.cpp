// Edge deployment walkthrough: take one pre-trained cluster checkpoint and
// deploy it to the three simulated platforms, comparing
//   - numerical behaviour (fp32 vs fp16 vs int8 logits on real maps),
//   - classification accuracy on a held-out user,
//   - latency / power from the device cost model,
// then run the on-device fine-tuning session on each device.
//
// Run:  ./edge_deployment [--volunteers=14] [--seed=42]
#include <cstdio>

#include "clear/pipeline.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "edge/cost_model.hpp"
#include "edge/finetune.hpp"

using namespace clear;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  core::ClearConfig config = core::smoke_config();
  config.data.n_volunteers =
      static_cast<std::size_t>(args.get_int("volunteers", 14));
  config.data.trials_per_volunteer = 10;
  config.data.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  config.train.epochs = static_cast<std::size_t>(args.get_int("epochs", 4));
  config.finalize();

  std::printf("== CLEAR edge deployment walkthrough ==\n");
  const wemac::WemacDataset dataset = wemac::generate_wemac(config.data);

  // Cloud stage on all but the last volunteer.
  const std::size_t new_user = dataset.n_volunteers() - 1;
  std::vector<std::size_t> initial_users;
  for (std::size_t u = 0; u + 1 < dataset.n_volunteers(); ++u)
    initial_users.push_back(u);
  core::ClearPipeline pipeline(config);
  pipeline.fit(dataset, initial_users);

  // Cold start for the new user.
  const auto assignment = pipeline.assign_user(dataset, new_user,
                                               config.ca_fraction);
  const std::size_t k = assignment.cluster;
  std::printf("new user %zu assigned to cluster %zu\n\n", new_user, k);
  const core::UserSplit split = core::split_user_samples(
      dataset, new_user, config.ca_fraction, config.ft_fraction);

  // Materialize the user's normalized maps once.
  const std::vector<Tensor> test_maps =
      pipeline.normalize_samples(dataset, split.test);
  nn::MapDataset test_set;
  for (std::size_t i = 0; i < test_maps.size(); ++i) {
    test_set.maps.push_back(&test_maps[i]);
    test_set.labels.push_back(
        static_cast<std::size_t>(dataset.samples()[split.test[i]].label));
  }
  const std::vector<Tensor> ft_maps =
      pipeline.normalize_samples(dataset, split.ft);
  nn::MapDataset ft_set;
  for (std::size_t i = 0; i < ft_maps.size(); ++i) {
    ft_set.maps.push_back(&ft_maps[i]);
    ft_set.labels.push_back(
        static_cast<std::size_t>(dataset.samples()[split.ft[i]].label));
  }
  // Calibration maps: the assigned cluster's training data.
  std::vector<Tensor> calib_maps;
  for (const std::size_t member : pipeline.clustering().clusters[k].members) {
    const std::size_t user = initial_users[member];
    for (const std::size_t s : dataset.samples_of(user)) {
      calib_maps.push_back(pipeline.normalize_samples(dataset, {s})[0]);
      if (calib_maps.size() >= 24) break;
    }
    if (calib_maps.size() >= 24) break;
  }
  std::vector<const Tensor*> calib_ptrs;
  for (const Tensor& m : calib_maps) calib_ptrs.push_back(&m);

  const double macs = edge::model_inference_macs(config.model);
  std::printf("model: %.2f M MAC per inference, %zu parameters\n\n",
              macs / 1e6, pipeline.cluster_model(k).parameter_count());

  AsciiTable table({"platform", "precision", "acc w/o FT", "acc w FT",
                    "test latency", "test power", "FT session", "FT power"});
  table.set_title("Deployment of the assigned cluster checkpoint");

  for (const auto device : {edge::DeviceKind::kGpu, edge::DeviceKind::kCoralTpu,
                            edge::DeviceKind::kPiNcs2}) {
    const edge::DeviceSpec spec = edge::device_spec(device);
    edge::EngineConfig ec;
    ec.precision = spec.precision;
    edge::EdgeEngine engine(pipeline.clone_cluster_model(k), ec);
    engine.calibrate(calib_ptrs);
    const double before = engine.evaluate(test_set).accuracy * 100.0;

    edge::EdgeFinetuneConfig fc;
    fc.train = config.finetune;
    edge::edge_finetune(engine, ft_set, fc);
    const double after = engine.evaluate(test_set).accuracy * 100.0;

    const edge::CostEstimate infer = edge::estimate_inference(spec, macs);
    const edge::CostEstimate ft = edge::estimate_finetuning(
        spec, macs, ft_set.size(), config.finetune.epochs,
        config.finetune.batch_size);
    table.add_row({spec.name, edge::precision_name(spec.precision),
                   AsciiTable::num(before, 1) + "%",
                   AsciiTable::num(after, 1) + "%",
                   AsciiTable::num(infer.seconds * 1e3, 1) + " ms",
                   AsciiTable::num(infer.power_w) + " W",
                   AsciiTable::num(ft.seconds, 1) + " s",
                   AsciiTable::num(ft.power_w) + " W"});
  }
  table.print();
  std::printf(
      "\nlatency/power come from the calibrated device cost model; the\n"
      "int8/fp16 engines emulate each accelerator's arithmetic exactly.\n");
  return 0;
}
