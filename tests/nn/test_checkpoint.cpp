#include "nn/checkpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "nn/model.hpp"

namespace clear::nn {
namespace {

CnnLstmConfig tiny_model_config() {
  CnnLstmConfig c;
  c.feature_dim = 16;
  c.window_count = 8;
  c.conv1_channels = 2;
  c.conv2_channels = 3;
  c.lstm_hidden = 4;
  return c;
}

TEST(Checkpoint, StreamRoundTripRestoresWeights) {
  Rng r1(1), r2(2);
  auto a = build_cnn_lstm(tiny_model_config(), r1);
  auto b = build_cnn_lstm(tiny_model_config(), r2);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  save_checkpoint(ss, *a);
  load_checkpoint(ss, *b);
  const auto pa = a->parameters();
  const auto pb = b->parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::size_t j = 0; j < pa[i]->value.numel(); ++j)
      EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

TEST(Checkpoint, RestoredModelGivesIdenticalOutputs) {
  Rng r1(3), r2(4), rx(5);
  auto a = build_cnn_lstm(tiny_model_config(), r1);
  auto b = build_cnn_lstm(tiny_model_config(), r2);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  save_checkpoint(ss, *a);
  load_checkpoint(ss, *b);
  a->set_training(false);
  b->set_training(false);
  Tensor x({2, 1, 16, 8});
  x.fill_normal(rx, 0.0f, 1.0f);
  const Tensor ya = a->forward(x);
  const Tensor yb = b->forward(x);
  for (std::size_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(Checkpoint, FileRoundTrip) {
  namespace fs = std::filesystem;
  Rng r1(6), r2(7);
  auto a = build_cnn_lstm(tiny_model_config(), r1);
  auto b = build_cnn_lstm(tiny_model_config(), r2);
  const std::string path =
      (fs::temp_directory_path() / "clear_ckpt_test.bin").string();
  save_checkpoint_file(path, *a);
  load_checkpoint_file(path, *b);
  EXPECT_EQ(a->parameters()[0]->value[0], b->parameters()[0]->value[0]);
  fs::remove(path);
}

TEST(Checkpoint, ArchitectureMismatchRejected) {
  Rng r1(8), r2(9);
  auto a = build_cnn_lstm(tiny_model_config(), r1);
  CnnLstmConfig other = tiny_model_config();
  other.lstm_hidden = 5;  // Different shape.
  auto b = build_cnn_lstm(other, r2);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  save_checkpoint(ss, *a);
  EXPECT_THROW(load_checkpoint(ss, *b), Error);
}

TEST(Checkpoint, GarbageStreamRejected) {
  Rng rng(10);
  auto m = build_cnn_lstm(tiny_model_config(), rng);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ss << "definitely not a checkpoint";
  EXPECT_THROW(load_checkpoint(ss, *m), Error);
}

TEST(Checkpoint, MissingFileThrows) {
  Rng rng(11);
  auto m = build_cnn_lstm(tiny_model_config(), rng);
  EXPECT_THROW(load_checkpoint_file("/nonexistent/ckpt.bin", *m), Error);
}

// ---------------------------------------------------------------------------
// Corruption taxonomy: every way a checkpoint file can rot must produce a
// distinct, descriptive error — never silently wrong weights.

std::string serialized_checkpoint(Sequential& model,
                                  CheckpointFormat format) {
  std::ostringstream os(std::ios::binary);
  save_checkpoint(os, model, format);
  return os.str();
}

void expect_load_error(const std::string& bytes, Sequential& model,
                       const std::string& needle) {
  std::istringstream is(bytes, std::ios::binary);
  try {
    load_checkpoint(is, model);
    FAIL() << "expected error containing '" << needle << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual error: " << e.what();
  }
}

TEST(CheckpointIntegrity, LegacyV1StillLoads) {
  Rng r1(20), r2(21);
  auto a = build_cnn_lstm(tiny_model_config(), r1);
  auto b = build_cnn_lstm(tiny_model_config(), r2);
  const std::string bytes =
      serialized_checkpoint(*a, CheckpointFormat::kLegacyV1);
  std::istringstream is(bytes, std::ios::binary);
  load_checkpoint(is, *b);
  EXPECT_EQ(a->parameters()[0]->value[0], b->parameters()[0]->value[0]);
}

TEST(CheckpointIntegrity, EveryFlippedByteIsCaught) {
  Rng r1(22), r2(23);
  auto a = build_cnn_lstm(tiny_model_config(), r1);
  auto b = build_cnn_lstm(tiny_model_config(), r2);
  const std::string bytes =
      serialized_checkpoint(*a, CheckpointFormat::kCrcV2);
  // Flipping any byte anywhere in the file must throw — magic, version,
  // length, payload, or CRC footer. Stride keeps the test fast while still
  // covering every region, and the first 32 header bytes are covered densely.
  for (std::size_t i = 0; i < bytes.size();
       i += (i < 32 ? 1 : std::max<std::size_t>(1, bytes.size() / 97))) {
    std::string bad = bytes;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    std::istringstream is(bad, std::ios::binary);
    EXPECT_THROW(load_checkpoint(is, *b), Error) << "flip at byte " << i;
  }
  // And the undamaged bytes still load (the model was never half-written).
  std::istringstream is(bytes, std::ios::binary);
  load_checkpoint(is, *b);
  EXPECT_EQ(a->parameters()[0]->value[0], b->parameters()[0]->value[0]);
}

TEST(CheckpointIntegrity, PayloadBitFlipReportsCrcMismatch) {
  Rng r1(24), r2(25);
  auto a = build_cnn_lstm(tiny_model_config(), r1);
  auto b = build_cnn_lstm(tiny_model_config(), r2);
  std::string bytes = serialized_checkpoint(*a, CheckpointFormat::kCrcV2);
  bytes[bytes.size() / 2] ^= 0x01;  // Single bit, middle of the weights.
  expect_load_error(bytes, *b, "CRC mismatch");
}

TEST(CheckpointIntegrity, TruncationReportsTruncation) {
  Rng r1(26), r2(27);
  auto a = build_cnn_lstm(tiny_model_config(), r1);
  auto b = build_cnn_lstm(tiny_model_config(), r2);
  const std::string bytes =
      serialized_checkpoint(*a, CheckpointFormat::kCrcV2);
  // Cut inside the payload.
  expect_load_error(bytes.substr(0, bytes.size() / 2), *b,
                    "truncated checkpoint");
  // Cut inside the CRC footer.
  expect_load_error(bytes.substr(0, bytes.size() - 3), *b,
                    "missing CRC footer");
}

TEST(CheckpointIntegrity, WrongVersionReportsVersion) {
  Rng r1(28), r2(29);
  auto a = build_cnn_lstm(tiny_model_config(), r1);
  auto b = build_cnn_lstm(tiny_model_config(), r2);
  std::string bytes = serialized_checkpoint(*a, CheckpointFormat::kCrcV2);
  bytes[8] = 99;  // Version field follows the 8-byte magic.
  expect_load_error(bytes, *b, "unsupported checkpoint version");
}

TEST(CheckpointIntegrity, InjectedCrashLeavesOnlyStaleTempFile) {
  namespace fs = std::filesystem;
  Rng r1(30), r2(31);
  auto a = build_cnn_lstm(tiny_model_config(), r1);
  auto b = build_cnn_lstm(tiny_model_config(), r2);
  const std::string path =
      (fs::temp_directory_path() / "clear_ckpt_crash.bin").string();
  fs::remove(path);
  fs::remove(path + ".tmp");
  // Crash at the commit point: temp file written, rename never happens.
  fault::arm_io_failure(2);  // 1 = open guard, 2 = rename guard.
  EXPECT_THROW(save_checkpoint_file(path, *a), Error);
  fault::disarm_io_failure();
  EXPECT_FALSE(fs::exists(path));  // Never committed...
  ASSERT_TRUE(fs::exists(path + ".tmp"));  // ...but the temp file remains.
  // The stale temp file itself is a complete v2 blob, so a recovery tool
  // may load it; the *final* path simply does not exist.
  EXPECT_THROW(load_checkpoint_file(path, *b), Error);
  load_checkpoint_file(path + ".tmp", *b);
  EXPECT_EQ(a->parameters()[0]->value[0], b->parameters()[0]->value[0]);
  fs::remove(path + ".tmp");
}

TEST(CheckpointIntegrity, SaveRetriesCleanlyAfterInjectedFailure) {
  namespace fs = std::filesystem;
  Rng r1(32), r2(33);
  auto a = build_cnn_lstm(tiny_model_config(), r1);
  auto b = build_cnn_lstm(tiny_model_config(), r2);
  const std::string path =
      (fs::temp_directory_path() / "clear_ckpt_retry.bin").string();
  fault::arm_io_failure(1);  // Fail the open itself.
  EXPECT_THROW(save_checkpoint_file(path, *a), Error);
  fault::disarm_io_failure();
  save_checkpoint_file(path, *a);  // Retry succeeds.
  load_checkpoint_file(path, *b);
  EXPECT_EQ(a->parameters()[0]->value[0], b->parameters()[0]->value[0]);
  fs::remove(path);
}

TEST(Snapshot, RestoreBringsWeightsBack) {
  Rng rng(12);
  auto m = build_cnn_lstm(tiny_model_config(), rng);
  const std::vector<Tensor> snap = snapshot_parameters(*m);
  // Clobber all weights.
  for (Param* p : m->parameters()) p->value.fill(9.0f);
  restore_parameters(*m, snap);
  const auto params = m->parameters();
  for (std::size_t i = 0; i < params.size(); ++i)
    for (std::size_t j = 0; j < params[i]->value.numel(); ++j)
      EXPECT_EQ(params[i]->value[j], snap[i][j]);
}

TEST(Snapshot, SizeMismatchRejected) {
  Rng rng(13);
  auto m = build_cnn_lstm(tiny_model_config(), rng);
  EXPECT_THROW(restore_parameters(*m, {}), Error);
}

}  // namespace
}  // namespace clear::nn
