#include "edge/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "tensor/kernels/kernels.hpp"

namespace clear::edge {

QuantParams calibrate_max_abs(std::span<const float> data) {
  CLEAR_CHECK_MSG(!data.empty(), "calibration on empty data");
  float m = 0.0f;
  for (const float v : data) m = std::max(m, std::abs(v));
  QuantParams p;
  p.scale = m > 0.0f ? m / 127.0f : 1.0f;
  return p;
}

QuantParams calibrate_percentile(std::span<const float> data,
                                 double percentile) {
  CLEAR_CHECK_MSG(!data.empty(), "calibration on empty data");
  CLEAR_CHECK_MSG(percentile > 0.0 && percentile <= 100.0,
                  "percentile out of range");
  std::vector<float> mags(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) mags[i] = std::abs(data[i]);
  std::sort(mags.begin(), mags.end());
  const double idx =
      percentile / 100.0 * static_cast<double>(mags.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, mags.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  const double m = mags[lo] * (1.0 - frac) + mags[hi] * frac;
  QuantParams p;
  p.scale = m > 0.0 ? static_cast<float>(m / 127.0) : 1.0f;
  return p;
}

std::int8_t quantize_value(float v, const QuantParams& params) {
  const float q = std::nearbyint(v / params.scale);
  return static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
}

float dequantize_value(std::int8_t q, const QuantParams& params) {
  return static_cast<float>(q) * params.scale;
}

std::vector<std::int8_t> quantize_tensor(const Tensor& t,
                                         const QuantParams& params) {
  std::vector<std::int8_t> q(t.numel());
  kernels::active().quantize_i8(t.data(), params.scale, q.data(), q.size());
  return q;
}

void fake_quantize_inplace(Tensor& t, const QuantParams& params) {
  kernels::active().fake_quant_f32(t.data(), params.scale, t.numel());
}

float round_fp16(float v) {
  // The software fp32 -> fp16 -> fp32 round trip (RNE) lives in the scalar
  // kernel table; the vector tables are bit-compatible (F16C / NEON vcvt),
  // so a single-element dispatch through the active table is exact too.
  kernels::active().fp16_round_f32(&v, 1);
  return v;
}

void fp16_inplace(Tensor& t) {
  kernels::active().fp16_round_f32(t.data(), t.numel());
}

}  // namespace clear::edge
