#include "clear/pseudo_label.hpp"

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace clear::core {

PseudoLabelResult pseudo_label_adapt(
    nn::Sequential& model, const std::vector<const Tensor*>& unlabeled_maps,
    const PseudoLabelConfig& config,
    const std::vector<std::size_t>* true_labels) {
  CLEAR_CHECK_MSG(!unlabeled_maps.empty(), "no unlabeled maps");
  CLEAR_CHECK_MSG(config.confidence_threshold > 0.5 &&
                      config.confidence_threshold < 1.0,
                  "confidence threshold must lie in (0.5, 1)");
  CLEAR_CHECK_MSG(config.rounds >= 1, "need at least one round");
  if (true_labels) {
    CLEAR_CHECK_MSG(true_labels->size() == unlabeled_maps.size(),
                    "diagnostic label count mismatch");
  }

  PseudoLabelResult result;
  nn::MapDataset probe;
  probe.maps = unlabeled_maps;
  probe.labels.assign(unlabeled_maps.size(), 0);  // Ignored by predict.

  for (std::size_t round = 0; round < config.rounds; ++round) {
    result.rounds_run = round + 1;
    const Tensor proba = nn::predict_probabilities(model, probe);
    // Select confidently predicted maps.
    nn::MapDataset adopted;
    std::vector<std::size_t> adopted_src;
    bool has_class[2] = {false, false};
    for (std::size_t i = 0; i < unlabeled_maps.size(); ++i) {
      const float p1 = proba.at2(i, 1);
      const float conf = std::max(p1, 1.0f - p1);
      if (conf < static_cast<float>(config.confidence_threshold)) continue;
      const std::size_t label = p1 > 0.5f ? 1 : 0;
      adopted.maps.push_back(unlabeled_maps[i]);
      adopted.labels.push_back(label);
      adopted_src.push_back(i);
      has_class[label] = true;
    }
    result.adopted_last_round = adopted.size();
    if (true_labels) {
      result.adopted_correct = 0;
      for (std::size_t j = 0; j < adopted.size(); ++j)
        if (adopted.labels[j] == (*true_labels)[adopted_src[j]])
          ++result.adopted_correct;
    }
    if (adopted.size() < 2) break;
    if (config.require_both_classes && !(has_class[0] && has_class[1])) break;

    model.freeze_below(config.freeze_boundary);
    nn::TrainConfig tc = config.train;
    tc.seed ^= round + 1;
    nn::train_classifier(model, adopted, tc);
    model.freeze_below(0);
    result.adapted = true;
  }
  return result;
}

}  // namespace clear::core
