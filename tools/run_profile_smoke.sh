#!/bin/sh
# Profile smoke test: run a tiny LOSO slice through `clear-cli profile` with
# observability on, validate the emitted snapshot against the checked-in
# schema (tools/metrics_schema.json), check the trace covers the paper's
# pipeline phases, and assert the numeric results on stdout are byte-
# identical with observability off (metrics must be purely observational).
# Usage: run_profile_smoke.sh <path-to-clear-cli> <path-to-schema>
set -eu

CLI="$1"
SCHEMA="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

SLICE="--volunteers=6 --trials=4 --epochs=1 --ft-epochs=1 --seed=11"

# 1. Metrics on: numeric results to stdout, snapshot to metrics.json.
"$CLI" profile $SLICE --metrics-out=metrics.json >on.txt 2>on.err
test -s metrics.json

# 2. The snapshot must satisfy the schema.
python3 - "$SCHEMA" metrics.json <<'EOF'
import json, sys
import jsonschema
with open(sys.argv[1]) as f:
    schema = json.load(f)
with open(sys.argv[2]) as f:
    snapshot = json.load(f)
jsonschema.validate(snapshot, schema)
EOF

# 3. The trace must cover every pipeline phase named in the paper tables.
for phase in feature-extract cluster assign finetune eval; do
  jq -e --arg p "$phase" \
    '[.traceEvents[] | select(.name == $p)] | length > 0' metrics.json \
    >/dev/null || { echo "missing phase span: $phase" >&2; exit 1; }
done

# 4. Edge kernel timings must be present per precision.
for h in edge.forward_us.fp32 edge.forward_us.fp16 edge.forward_us.int8; do
  jq -e --arg h "$h" '.histograms[$h].count > 0' metrics.json >/dev/null ||
    { echo "missing edge histogram: $h" >&2; exit 1; }
done

# 5. Nothing silently dropped on this tiny slice.
jq -e '.droppedTraceEvents == 0' metrics.json >/dev/null

# 6. Metrics off: stdout must be byte-identical (observability never
#    changes a numeric result).
"$CLI" profile $SLICE --no-metrics >off.txt 2>off.err
test ! -e clear_profile.json
cmp on.txt off.txt

echo "profile smoke OK"
