// Process-wide observability: counters, gauges, histograms, trace spans.
//
// This is the measurement substrate for every performance claim the repro
// makes (paper Table II: per-platform re-training and inference cost). It is
// deliberately *not* a statistics library — values are monotonic counters,
// last-write gauges, fixed log-scale histograms, and wall-clock trace spans,
// all exportable as one JSON object that doubles as a Chrome trace-event
// file (chrome://tracing / Perfetto accept an object with a "traceEvents"
// key and ignore the sibling metric keys).
//
// Determinism contract: metrics are strictly *observational*. Nothing in the
// library reads a metric to make a decision, so enabling or disabling
// observability never changes a numeric result — only timings and counts are
// collected, and they live outside the golden-seed outputs.
//
// Overhead contract: the registry is disabled by default. Every
// instrumentation macro guards on one relaxed atomic load
// (`clear::obs::enabled()`) before doing any work — no clock reads, no
// allocation, no registry lookup on the disabled path. Defining
// CLEAR_OBS_DISABLED at compile time removes even that branch (the macros
// expand to nothing; the registry API itself stays available so exporters
// still link).
//
// Thread safety: all recording operations are safe to call from parallel
// runtime workers. Counters/gauges/histogram cells are lock-free atomics;
// the trace-event buffer takes a mutex per completed span (spans are coarse
// — phases, epochs, batched forwards — never per-element work).
//
// Span naming convention (DESIGN.md §11): the paper's pipeline phases use
// their table names verbatim — "feature-extract", "cluster", "assign",
// "finetune", "eval" — so traces line up with Table I/II rows. Everything
// else is dotted lowercase, `<subsystem>.<operation>` (e.g. "train.epoch",
// "edge.forward.int8"). Counter/gauge/histogram names follow the same
// dotted scheme; duration histograms end in "_us".
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace clear::obs {

/// True while the registry is recording. One relaxed atomic load.
bool enabled();

/// Turn recording on/off process-wide. Off is the default.
void set_enabled(bool on);

/// Reset every metric value and drop all buffered trace events. Registered
/// metric objects stay valid (pointers held by call sites never dangle).
void reset();

/// Microseconds since the process-wide trace epoch (first registry use).
std::uint64_t now_us();

// ---------------------------------------------------------------------------
// Metric kinds
// ---------------------------------------------------------------------------

/// Monotonic event count. `add` is unconditional — call sites guard with
/// `enabled()` (the CLEAR_OBS_* macros do this for you).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value (e.g. current thread count, buffered windows).
class Gauge {
 public:
  void set(double v);
  double value() const;
  void reset() { set(0.0); }

 private:
  std::atomic<std::uint64_t> bits_{0};
};

/// Histogram over fixed log-scale buckets. Bucket b holds values in
/// [2^(b-1), 2^b) with bucket 0 catching everything below 1.0 — the layout
/// is a pure function of the value, never of the data seen so far, so two
/// runs that record the same values produce identical bucket vectors.
///
/// Degenerate inputs are pinned rather than left to libm edge cases: zero,
/// negatives, -inf, and NaN land in the underflow bucket 0; +inf lands in
/// the top bucket. Non-finite values still bump count and a bucket but are
/// excluded from sum/min/max, so one bad sample can never poison the
/// summary statistics of a raw-measurement histogram (the drift monitor
/// records unclamped distance ratios here).
struct HistogramSnapshot;

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  void record(double v);
  /// Fold another histogram's exported summary into this one. Exact: the
  /// snapshot carries per-bucket upper bounds, which map 1:1 onto this
  /// fixed layout, so merged bucket vectors equal what one process
  /// recording both streams would have produced.
  void merge(const HistogramSnapshot& other);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double min() const;
  double max() const;
  double mean() const;
  std::uint64_t bucket(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Upper bound (exclusive) of bucket b: 2^b, with bucket 0 = [0, 1).
  static double bucket_limit(std::size_t b);
  /// Deterministic bucket index for a value.
  static std::size_t bucket_index(double v);
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};   // double bits, CAS-accumulated
  std::atomic<std::uint64_t> min_bits_;      // init in ctor
  std::atomic<std::uint64_t> max_bits_;
  std::atomic<std::uint64_t> buckets_[kBuckets]{};

 public:
  Histogram();
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Look up (creating on first use) the named metric. Returned references
/// stay valid for the process lifetime; hot call sites cache them in a
/// function-local static. Names are stable identifiers, not display text.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// Every metric name currently registered, per kind, in sorted order.
/// Registration happens lazily at first use, so this reflects the code
/// paths exercised so far — docs/METRICS.md is cross-checked against it
/// (tests/common/test_metrics_doc.cpp) so the reference cannot rot.
struct RegisteredNames {
  std::vector<std::string> counters;
  std::vector<std::string> gauges;
  std::vector<std::string> histograms;
};
RegisteredNames registered_names();

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

/// One completed span, Chrome trace-event "X" (complete) phase.
struct TraceEvent {
  std::string name;
  std::uint64_t ts_us = 0;   ///< Start, microseconds since trace epoch.
  std::uint64_t dur_us = 0;  ///< Duration in microseconds.
  std::uint32_t tid = 0;     ///< Dense per-thread id (0 = first thread seen).
};

/// RAII wall-clock span. When the registry is disabled the constructor is a
/// single branch — no clock read, nothing recorded. On destruction the span
/// is appended to the trace buffer and its duration is recorded into the
/// histogram "span.<name>_us".
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (enabled()) begin(name);
  }
  ~ScopedSpan() {
    if (active_) end();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void begin(const char* name);
  void end();

  const char* name_ = nullptr;
  std::uint64_t start_us_ = 0;
  bool active_ = false;
};

/// Copy of the buffered trace events (oldest first). The buffer is capped at
/// `trace_capacity()`; spans completed past the cap are counted in
/// `dropped_trace_events()` instead of buffered.
std::vector<TraceEvent> trace_events();
std::size_t trace_capacity();
std::uint64_t dropped_trace_events();

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

/// Full registry snapshot as one JSON object:
///   { "traceEvents": [...Chrome trace-event "X" records...],
///     "displayTimeUnit": "ms",
///     "counters": {name: value},
///     "gauges": {name: value},
///     "histograms": {name: {count, sum, min, max, mean, buckets: [...]}} }
/// The object is a valid Chrome trace file (extra keys are ignored by the
/// viewer) and a valid metrics snapshot at the same time.
std::string snapshot_json();

/// Write snapshot_json() to `path` atomically (temp file + rename).
void write_snapshot(const std::string& path);

/// snapshot_json() with an empty traceEvents array: the metrics half only,
/// bounded in size, for crossing the wire (kMetricsJson frames must fit the
/// 1 MiB payload bound; a trace buffer would not).
std::string metrics_json();

// ---------------------------------------------------------------------------
// Snapshot merge (multi-process aggregation; see src/shard)
// ---------------------------------------------------------------------------

/// One exported histogram, parsed back. `buckets` is indexed by the fixed
/// bucket layout (buckets[b] counts values in [2^(b-1), 2^b)); trailing
/// zero buckets may be omitted, exactly as snapshot_json() writes them.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> buckets;
};

/// One metrics snapshot parsed back from snapshot_json()/metrics_json()
/// bytes (traceEvents are per-process and are not carried across). Names
/// keep the exporter's sorted order.
struct ParsedSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Parse snapshot JSON. Throws clear::Error on malformed input — including
/// a histogram bucket bound that is not a power of two, which cannot map
/// onto the fixed layout (a snapshot from a foreign implementation).
ParsedSnapshot parse_snapshot(const std::string& json);

/// Prefix-remap helper: the same snapshot with every metric name prefixed
/// (e.g. "serve.requests" -> "coord.serve.requests"), so one process can
/// fold another's metrics into its registry without name collisions.
ParsedSnapshot with_prefix(ParsedSnapshot snapshot, std::string_view prefix);

/// Fold a parsed snapshot into this process's registry: counters add,
/// gauges last-write, histograms merge bucket-exactly. Folding N shard
/// snapshots then exporting produces the same counters/histograms one
/// process observing all N streams would have written.
void merge_snapshot(const ParsedSnapshot& snapshot);

}  // namespace clear::obs

// ---------------------------------------------------------------------------
// Instrumentation macros (the only API hot paths should touch)
// ---------------------------------------------------------------------------

#define CLEAR_OBS_CONCAT_INNER_(a, b) a##b
#define CLEAR_OBS_CONCAT_(a, b) CLEAR_OBS_CONCAT_INNER_(a, b)

#ifndef CLEAR_OBS_DISABLED

/// RAII trace span for the enclosing scope.
#define CLEAR_OBS_SPAN(name) \
  ::clear::obs::ScopedSpan CLEAR_OBS_CONCAT_(clear_obs_span_, __LINE__)(name)

/// Bump a named counter by n. The registry lookup happens once per call
/// site (function-local static); the disabled path is a single branch.
#define CLEAR_OBS_COUNT(name, n)                                        \
  do {                                                                  \
    if (::clear::obs::enabled()) {                                      \
      static ::clear::obs::Counter& clear_obs_c_ =                      \
          ::clear::obs::counter(name);                                  \
      clear_obs_c_.add(static_cast<std::uint64_t>(n));                  \
    }                                                                   \
  } while (0)

/// Set a named gauge.
#define CLEAR_OBS_GAUGE(name, v)                                        \
  do {                                                                  \
    if (::clear::obs::enabled()) {                                      \
      static ::clear::obs::Gauge& clear_obs_g_ = ::clear::obs::gauge(name); \
      clear_obs_g_.set(static_cast<double>(v));                         \
    }                                                                   \
  } while (0)

/// Record a value into a named histogram.
#define CLEAR_OBS_RECORD(name, v)                                       \
  do {                                                                  \
    if (::clear::obs::enabled()) {                                      \
      static ::clear::obs::Histogram& clear_obs_h_ =                    \
          ::clear::obs::histogram(name);                                \
      clear_obs_h_.record(static_cast<double>(v));                      \
    }                                                                   \
  } while (0)

#else  // CLEAR_OBS_DISABLED: compile the instrumentation out entirely.

#define CLEAR_OBS_SPAN(name) \
  do {                       \
  } while (0)
#define CLEAR_OBS_COUNT(name, n) \
  do {                           \
  } while (0)
#define CLEAR_OBS_GAUGE(name, v) \
  do {                           \
  } while (0)
#define CLEAR_OBS_RECORD(name, v) \
  do {                            \
  } while (0)

#endif  // CLEAR_OBS_DISABLED
