#include "common/crc32.hpp"

#include <array>
#include <cstring>

namespace clear {

namespace {

// Slice-by-8: table[0] is the classic byte-at-a-time table; table[k]
// advances a byte through k additional zero bytes, so eight lookups fold
// eight input bytes per iteration. Bit-identical to the byte-wise loop.
std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i)
    for (std::size_t k = 1; k < 8; ++k)
      t[k][i] = t[0][t[k - 1][i] & 0xFFu] ^ (t[k - 1][i] >> 8);
  return t;
}

const std::array<std::array<std::uint32_t, 256>, 8>& tables() {
  static const std::array<std::array<std::uint32_t, 256>, 8> t = make_tables();
  return t;
}

}  // namespace

void Crc32::update(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& t = tables();
  std::uint32_t c = state_;
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    c ^= lo;
    c = t[7][c & 0xFFu] ^ t[6][(c >> 8) & 0xFFu] ^ t[5][(c >> 16) & 0xFFu] ^
        t[4][c >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (std::size_t i = 0; i < n; ++i)
    c = t[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  state_ = c;
}

std::uint32_t crc32(const void* data, std::size_t n) {
  Crc32 c;
  c.update(data, n);
  return c.value();
}

}  // namespace clear
