// Softmax cross-entropy with integer class labels.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace clear::nn {

struct LossResult {
  double loss = 0.0;     ///< Mean cross-entropy over the batch.
  Tensor grad_logits;    ///< d(mean loss)/d(logits), [N, C].
  Tensor probabilities;  ///< Softmax outputs, [N, C].
};

/// Compute softmax + cross-entropy + gradient for logits [N, C] and labels
/// of length N with values < C.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::size_t>& labels);

}  // namespace clear::nn
