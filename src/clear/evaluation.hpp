// LOSO evaluation drivers reproducing Table I of the paper:
//
//   General model     — x randomly chosen users, no clustering, LOSO.
//   CL validation     — GC on the complete population, intra-cluster LOSO.
//   RT CL             — CL fold models tested on users *outside* the cluster.
//   CLEAR w/o FT      — full pipeline LOSO: cluster+train without V_x, then
//                       unsupervised cluster assignment, test on V_x.
//   RT CLEAR          — V_x tested with the models of the *other* clusters.
//   CLEAR w FT        — plus fine-tuning on a small labelled share of V_x.
#pragma once

#include <functional>
#include <string>

#include "clear/pipeline.hpp"
#include "cluster/assignment.hpp"
#include "nn/metrics.hpp"

namespace clear::core {

/// Per-fold (accuracy, F1) pairs plus their mean/std, in percent.
struct Aggregate {
  std::vector<double> fold_accuracy;  ///< Percent.
  std::vector<double> fold_f1;        ///< Percent.
  nn::MeanStd accuracy;
  nn::MeanStd f1;

  void add(const nn::BinaryMetrics& m);
  void add_percent(double acc_pct, double f1_pct);
  void finalize();
  std::size_t folds() const { return fold_accuracy.size(); }
};

// ---------------------------------------------------------------------------
// CL validation (clustering on the full population + intra-cluster LOSO).
struct ClValidationResult {
  Aggregate cl;                          ///< "CL validation" row.
  Aggregate rt;                          ///< "RT CL" row.
  std::vector<std::size_t> cluster_sizes;
  double silhouette = 0.0;               ///< GC quality diagnostic.
};
ClValidationResult run_cl_validation(const wemac::WemacDataset& dataset,
                                     const ClearConfig& config);

// ---------------------------------------------------------------------------
// General model (no clustering): LOSO over x randomly selected users.
// `factory` selects the architecture (default: the paper's CNN-LSTM); the
// architecture ablation passes build_cnn_only / build_lstm_only here.
Aggregate run_general_model(const wemac::WemacDataset& dataset,
                            const ClearConfig& config,
                            nn::ModelFactory factory = nn::build_cnn_lstm);

// ---------------------------------------------------------------------------
// Full CLEAR validation.
struct ClearFoldArtifacts {
  std::size_t test_user = 0;
  std::size_t assigned_cluster = 0;
  features::FeatureNormalizer normalizer;
  cluster::GlobalClusteringResult clustering;
  std::vector<std::size_t> fitted_users;   ///< Users the fold trained on.
  std::vector<std::string> checkpoints;    ///< One blob per cluster.
  UserSplit split;                         ///< CA / FT / test samples of V_x.
};

struct ClearValidationResult {
  Aggregate no_ft;    ///< "CLEAR w/o FT" row.
  Aggregate rt;       ///< "RT CLEAR" row.
  Aggregate with_ft;  ///< "CLEAR w FT" row (empty if FT disabled).
  /// Fraction of folds whose CA choice matches the cluster dominated by the
  /// test user's ground-truth archetype (diagnostic; uses generator truth).
  double ca_consistency = 0.0;
  std::vector<ClearFoldArtifacts> artifacts;  ///< When keep_artifacts.
};

struct ClearOptions {
  bool keep_artifacts = false;
  bool run_finetune = true;
  std::size_t max_folds = 0;  ///< 0 = every volunteer serves as V_x.
  cluster::AssignStrategy strategy = cluster::AssignStrategy::kSubCentroidSum;
  std::function<void(std::size_t fold, std::size_t total)> progress;
};

ClearValidationResult run_clear_validation(const wemac::WemacDataset& dataset,
                                           const ClearConfig& config,
                                           const ClearOptions& options = {});

/// Majority ground-truth archetype among a cluster's member users (ties ->
/// lowest id). Diagnostic helper shared with the benches.
std::size_t dominant_archetype(const wemac::WemacDataset& dataset,
                               const std::vector<std::size_t>& fitted_users,
                               const cluster::ClusterModel& cluster);

}  // namespace clear::core
