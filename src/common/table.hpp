// ASCII table rendering for the bench harnesses: each reproduced paper table
// is printed in a layout mirroring the publication, with a paper-reference
// column next to the measured one.
#pragma once

#include <string>
#include <vector>

namespace clear {

/// Column-aligned ASCII table with an optional title and section separators.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Append a full-width section label (rendered between rule lines).
  void add_section(std::string label);

  void set_title(std::string title);

  /// Render to a string (trailing newline included).
  std::string str() const;

  /// Render to stdout.
  void print() const;

  /// Format helper: fixed-precision double.
  static std::string num(double v, int precision = 2);

 private:
  struct Entry {
    bool is_section = false;
    std::string section;
    std::vector<std::string> cells;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Entry> entries_;
};

}  // namespace clear
