// Single-layer LSTM over [N, T, D] batches, returning the last hidden state
// [N, H] (the classification head only needs the final summary, as in the
// paper's CNN-LSTM of Fig. 2).
//
// Gate order in the packed weight matrices is (input, forget, cell, output).
// The forget-gate bias is initialized to 1, the standard trick that prevents
// early gradient vanishing on short sequences.
#pragma once

#include <functional>

#include "nn/layer.hpp"

namespace clear::nn {

class Lstm : public Layer {
 public:
  Lstm(std::size_t input_dim, std::size_t hidden_dim, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override;
  std::string name() const override { return "Lstm"; }
  LayerPtr clone() const override { return std::make_unique<Lstm>(*this); }

  std::size_t input_dim() const { return in_; }
  std::size_t hidden_dim() const { return hidden_; }

  /// Optional transform applied to the hidden and cell state after every
  /// step. The edge runtime uses this to emulate accelerators whose
  /// recurrent state lives in a reduced numeric format (int8 / fp16);
  /// backward treats it as straight-through (standard QAT practice).
  void set_state_transform(std::function<void(Tensor&)> transform) {
    state_transform_ = std::move(transform);
  }

 private:
  std::size_t in_;
  std::size_t hidden_;
  Param wx_;  ///< [D, 4H]
  Param wh_;  ///< [H, 4H]
  Param b_;   ///< [4H]

  // Forward caches (per step).
  struct StepCache {
    Tensor x;       ///< [N, D]
    Tensor h_prev;  ///< [N, H]
    Tensor c_prev;  ///< [N, H]
    Tensor i, f, g, o;  ///< Gate activations, each [N, H].
    Tensor c;       ///< [N, H]
    Tensor tanh_c;  ///< [N, H]
  };
  std::vector<StepCache> steps_;
  std::size_t cached_batch_ = 0;
  std::size_t cached_time_ = 0;
  std::function<void(Tensor&)> state_transform_;

  // Per-step gate pre-activation workspaces ([N, 4H]), reused across time
  // steps and forward calls to keep the recurrent hot loop off the
  // allocator. Contents are transient within one step.
  Tensor z_ws_;
  Tensor zh_ws_;
};

}  // namespace clear::nn
