// Max pooling over NCHW batches. Non-overlapping windows (stride == kernel);
// trailing rows/columns that do not fill a window are dropped, matching the
// common "valid" pooling convention.
#pragma once

#include "nn/layer.hpp"

namespace clear::nn {

class MaxPool2d : public Layer {
 public:
  MaxPool2d(std::size_t kh, std::size_t kw);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2d"; }
  LayerPtr clone() const override {
    return std::make_unique<MaxPool2d>(*this);
  }

 private:
  std::size_t kh_, kw_;
  std::vector<std::size_t> cached_in_shape_;
  std::vector<std::size_t> argmax_;  ///< Flat input index per output element.
};

}  // namespace clear::nn
