#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace clear::ops {
namespace {

TEST(Ops, ElementwiseAddSubMul) {
  const Tensor a({2}, {1, 2});
  const Tensor b({2}, {3, 5});
  EXPECT_EQ(add(a, b)[1], 7.0f);
  EXPECT_EQ(sub(b, a)[0], 2.0f);
  EXPECT_EQ(mul(a, b)[1], 10.0f);
}

TEST(Ops, ShapeMismatchThrows) {
  const Tensor a({2});
  const Tensor b({3});
  EXPECT_THROW(add(a, b), Error);
  Tensor c = a;
  EXPECT_THROW(axpy_inplace(c, 1.0f, b), Error);
}

TEST(Ops, Axpy) {
  Tensor a({2}, {1, 1});
  const Tensor b({2}, {2, 4});
  axpy_inplace(a, 0.5f, b);
  EXPECT_EQ(a[0], 2.0f);
  EXPECT_EQ(a[1], 3.0f);
}

TEST(Ops, ScaleAndAddScalar) {
  const Tensor a({2}, {2, 4});
  EXPECT_EQ(scale(a, 0.5f)[1], 2.0f);
  EXPECT_EQ(add_scalar(a, 1.0f)[0], 3.0f);
}

TEST(Ops, Map) {
  const Tensor a({3}, {-1, 0, 2});
  const Tensor r = map(a, [](float v) { return v * v; });
  EXPECT_EQ(r[0], 1.0f);
  EXPECT_EQ(r[2], 4.0f);
}

TEST(Ops, MatmulKnownValues) {
  const Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.at2(0, 0), 58.0f);
  EXPECT_EQ(c.at2(0, 1), 64.0f);
  EXPECT_EQ(c.at2(1, 0), 139.0f);
  EXPECT_EQ(c.at2(1, 1), 154.0f);
}

TEST(Ops, MatmulInnerMismatchThrows) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({2, 2})), Error);
}

TEST(Ops, MatmulIdentity) {
  Rng rng(3);
  Tensor a({4, 4});
  a.fill_normal(rng, 0.0f, 1.0f);
  Tensor eye({4, 4});
  for (std::size_t i = 0; i < 4; ++i) eye.at2(i, i) = 1.0f;
  const Tensor c = matmul(a, eye);
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(c[i], a[i]);
}

TEST(Ops, MatmulAccumAddsIntoExisting) {
  const Tensor a({1, 1}, {2});
  const Tensor b({1, 1}, {3});
  Tensor c({1, 1}, {10});
  matmul_accum(a, b, c);
  EXPECT_EQ(c[0], 16.0f);
}

TEST(Ops, Transpose2d) {
  const Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor t = transpose2d(a);
  EXPECT_EQ(t.extent(0), 3u);
  EXPECT_EQ(t.at2(0, 1), 4.0f);
  EXPECT_EQ(t.at2(2, 0), 3.0f);
}

TEST(Ops, TransposeTwiceIsIdentity) {
  Rng rng(9);
  Tensor a({5, 7});
  a.fill_normal(rng, 0.0f, 1.0f);
  const Tensor tt = transpose2d(transpose2d(a));
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_EQ(tt[i], a[i]);
}

TEST(Ops, Matvec) {
  const Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor x({3}, {1, 0, -1});
  const Tensor y = matvec(a, x);
  EXPECT_EQ(y[0], -2.0f);
  EXPECT_EQ(y[1], -2.0f);
}

TEST(Ops, AddRowBias) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  const Tensor bias({2}, {10, 20});
  add_row_bias_inplace(a, bias);
  EXPECT_EQ(a.at2(0, 0), 11.0f);
  EXPECT_EQ(a.at2(1, 1), 24.0f);
}

TEST(Ops, Reductions) {
  const Tensor a({4}, {-3, 1, 2, 4});
  EXPECT_EQ(sum(a), 4.0f);
  EXPECT_EQ(mean(a), 1.0f);
  EXPECT_EQ(max_abs(a), 4.0f);
  EXPECT_EQ(min_value(a), -3.0f);
  EXPECT_EQ(max_value(a), 4.0f);
  EXPECT_FLOAT_EQ(l2_norm(a), std::sqrt(30.0f));
}

TEST(Ops, Argmax) {
  const Tensor a({4}, {1, 5, 3, 5});
  EXPECT_EQ(argmax(a), 1u);  // First maximum wins.
  const Tensor m({2, 3}, {1, 9, 2, 8, 3, 4});
  const auto rows = argmax_rows(m);
  EXPECT_EQ(rows[0], 1u);
  EXPECT_EQ(rows[1], 0u);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  const Tensor a({2, 3}, {1, 2, 3, -1, 0, 1});
  const Tensor s = softmax_rows(a);
  for (std::size_t i = 0; i < 2; ++i) {
    float total = 0.0f;
    for (std::size_t j = 0; j < 3; ++j) total += s.at2(i, j);
    EXPECT_NEAR(total, 1.0f, 1e-6f);
  }
  EXPECT_GT(s.at2(0, 2), s.at2(0, 0));
}

TEST(Ops, SoftmaxNumericallyStable) {
  const Tensor a({1, 2}, {1000.0f, 1001.0f});
  const Tensor s = softmax_rows(a);
  EXPECT_FALSE(std::isnan(s[0]));
  EXPECT_NEAR(s[0] + s[1], 1.0f, 1e-6f);
}

TEST(Ops, ConvOutExtent) {
  EXPECT_EQ(conv_out_extent(5, 3, 1, 0), 3u);
  EXPECT_EQ(conv_out_extent(5, 3, 1, 1), 5u);
  EXPECT_EQ(conv_out_extent(6, 2, 2, 0), 3u);
  EXPECT_THROW(conv_out_extent(2, 5, 1, 0), Error);
}

TEST(Ops, Im2colIdentityKernel) {
  // 1x1 kernel: im2col is just a reshape.
  const Tensor img({1, 2, 2}, {1, 2, 3, 4});
  const Tensor cols = im2col(img, 1, 1, 1, 0);
  EXPECT_EQ(cols.extent(0), 1u);
  EXPECT_EQ(cols.extent(1), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(cols[i], img[i]);
}

TEST(Ops, Im2colWithPaddingZeros) {
  const Tensor img({1, 1, 1}, {5});
  const Tensor cols = im2col(img, 3, 3, 1, 1);
  EXPECT_EQ(cols.extent(0), 9u);
  EXPECT_EQ(cols.extent(1), 1u);
  // Only the centre tap sees the pixel.
  for (std::size_t r = 0; r < 9; ++r)
    EXPECT_EQ(cols.at2(r, 0), r == 4 ? 5.0f : 0.0f);
}

TEST(Ops, Im2colMatchesDirectConvolution) {
  Rng rng(11);
  Tensor img({2, 5, 4});
  img.fill_normal(rng, 0.0f, 1.0f);
  Tensor kernel({1, 2 * 3 * 3});
  kernel.fill_normal(rng, 0.0f, 1.0f);
  const Tensor cols = im2col(img, 3, 3, 1, 1);
  const Tensor out = matmul(kernel, cols);  // [1, 5*4]
  // Direct convolution at a few positions.
  auto direct = [&](std::size_t oi, std::size_t oj) {
    float s = 0.0f;
    for (std::size_t c = 0; c < 2; ++c)
      for (int ki = 0; ki < 3; ++ki)
        for (int kj = 0; kj < 3; ++kj) {
          const int ii = static_cast<int>(oi) + ki - 1;
          const int jj = static_cast<int>(oj) + kj - 1;
          if (ii < 0 || ii >= 5 || jj < 0 || jj >= 4) continue;
          s += kernel[(c * 3 + ki) * 3 + kj] *
               img.at3(c, static_cast<std::size_t>(ii),
                       static_cast<std::size_t>(jj));
        }
    return s;
  };
  EXPECT_NEAR(out[0], direct(0, 0), 1e-4f);
  EXPECT_NEAR(out.at2(0, 2 * 4 + 3), direct(2, 3), 1e-4f);
  EXPECT_NEAR(out.at2(0, 4 * 4 + 3), direct(4, 3), 1e-4f);
}

TEST(Ops, Col2imIsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining property
  // of the gradient scatter.
  Rng rng(13);
  Tensor x({2, 4, 4});
  x.fill_normal(rng, 0.0f, 1.0f);
  const Tensor cols = im2col(x, 3, 3, 1, 1);
  Tensor y(cols.shape());
  y.fill_normal(rng, 0.0f, 1.0f);
  const Tensor back = col2im(y, 2, 4, 4, 3, 3, 1, 1);
  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.numel(); ++i)
    lhs += static_cast<double>(cols[i]) * y[i];
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.numel(); ++i)
    rhs += static_cast<double>(x[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Ops, Col2imRejectsWrongGeometry) {
  const Tensor cols({9, 4});
  EXPECT_THROW(col2im(cols, 2, 4, 4, 3, 3, 1, 1), Error);
}

}  // namespace
}  // namespace clear::ops
