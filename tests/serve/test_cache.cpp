#include "serve/cache.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/model.hpp"

namespace clear::serve {
namespace {

// The loaders and engine builder are injected, so the cache's eviction
// order, byte accounting, and corrupt-blob fallback are all testable with a
// tiny throwaway model — no training involved. Blob *contents* encode the
// test scenario: "corrupt..." blobs make the builder throw (standing in for
// a CRC failure), anything else builds. The budget accounting sees the
// *materialized engine's* resident bytes, never the blob size — blobs may
// be delta-encoded and bear no relation to the memory the engine occupies.
nn::CnnLstmConfig tiny_config() {
  nn::CnnLstmConfig c;
  c.feature_dim = 8;
  c.window_count = 4;
  c.conv1_channels = 2;
  c.conv2_channels = 2;
  c.lstm_hidden = 3;
  c.dropout = 0.0;
  return c;
}

struct Harness {
  std::map<std::size_t, std::string> cluster_blobs;
  std::string general_blob = std::string(100, 'g');
  std::size_t builds = 0;

  /// Resident size of the (identical) engine every build produces — the
  /// unit all byte-accounting expectations are phrased in.
  static std::size_t engine_bytes() {
    Rng rng(1);
    edge::EdgeEngine e(nn::build_cnn_lstm(tiny_config(), rng),
                       edge::EngineConfig{});
    return e.resident_bytes();
  }

  CheckpointCache make(std::size_t budget) {
    return CheckpointCache(
        [this](std::size_t k) {
          const auto it = cluster_blobs.find(k);
          return it == cluster_blobs.end() ? std::string() : it->second;
        },
        [this]() { return general_blob; },
        [this](const std::string& blob, edge::Precision p) {
          CLEAR_CHECK_MSG(blob.rfind("corrupt", 0) != 0,
                          "synthetic checkpoint CRC mismatch");
          ++builds;
          Rng rng(1);
          edge::EngineConfig ec;
          ec.precision = p;
          return std::make_unique<edge::EdgeEngine>(
              nn::build_cnn_lstm(tiny_config(), rng), ec);
        },
        budget);
  }
};

BatchKey cluster(std::size_t id) {
  BatchKey k;
  k.kind = BatchKey::Kind::kCluster;
  k.id = id;
  return k;
}

BatchKey general() { return BatchKey{}; }

TEST(CheckpointCache, MissBuildsThenHitReuses) {
  Harness h;
  h.cluster_blobs[0] = std::string(40, 'a');
  CheckpointCache cache = h.make(1 << 20);
  const auto first = cache.acquire(cluster(0));
  EXPECT_EQ(h.builds, 1u);
  EXPECT_EQ(first->bytes, Harness::engine_bytes());
  EXPECT_FALSE(first->fallback);
  const auto second = cache.acquire(cluster(0));
  EXPECT_EQ(second.get(), first.get());
  EXPECT_EQ(h.builds, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().bytes_in_use, Harness::engine_bytes());
}

TEST(CheckpointCache, EvictsLeastRecentlyUsedFirst) {
  Harness h;
  h.cluster_blobs[0] = std::string(40, 'a');
  h.cluster_blobs[1] = std::string(40, 'b');
  h.cluster_blobs[2] = std::string(40, 'c');
  // Room for exactly two resident engines.
  CheckpointCache cache = h.make(2 * Harness::engine_bytes());
  cache.acquire(cluster(0));
  cache.acquire(cluster(1));
  // Touch 0 so 1 becomes the eviction victim.
  cache.acquire(cluster(0));
  cache.acquire(cluster(2));
  EXPECT_EQ(cache.stats().evictions, 1u);
  const std::vector<BatchKey> lru = cache.resident_lru();
  ASSERT_EQ(lru.size(), 2u);
  EXPECT_EQ(lru[0], cluster(0));
  EXPECT_EQ(lru[1], cluster(2));
  EXPECT_EQ(cache.stats().bytes_in_use, 2 * Harness::engine_bytes());
  // Re-acquiring the victim is a fresh miss.
  cache.acquire(cluster(1));
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(CheckpointCache, ByteAccountingTracksResidentEngineSizes) {
  Harness h;
  h.cluster_blobs[0] = std::string(30, 'a');
  h.cluster_blobs[1] = std::string(50, 'b');
  CheckpointCache cache = h.make(1 << 20);
  cache.acquire(cluster(0));
  cache.acquire(cluster(1));
  cache.acquire(general());
  // Three different blob sizes, one engine architecture: the budget charges
  // what is resident, so all three entries cost the same.
  EXPECT_EQ(cache.stats().bytes_in_use, 3 * Harness::engine_bytes());
  EXPECT_EQ(cache.size(), 3u);
}

// Regression: the cache used to charge the on-disk blob size. A delta
// checkpoint is ~40x smaller than the model it reconstructs, so blob-size
// accounting would quietly hold ~40x the configured budget in memory.
TEST(CheckpointCache, TinyBlobsAreChargedAtResidentSize) {
  Harness h;
  h.cluster_blobs[0] = std::string(10, 'a');  // Delta-sized blob.
  h.cluster_blobs[1] = std::string(10, 'b');
  h.cluster_blobs[2] = std::string(10, 'c');
  CheckpointCache cache = h.make(2 * Harness::engine_bytes());
  const auto e = cache.acquire(cluster(0));
  EXPECT_GT(e->bytes, 10u) << "charged the blob size, not the engine size";
  EXPECT_EQ(e->bytes, Harness::engine_bytes());
  cache.acquire(cluster(1));
  cache.acquire(cluster(2));
  // Under blob-size accounting 30 bytes would all fit; under resident
  // accounting only two engines do.
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_LE(cache.stats().bytes_in_use, 2 * Harness::engine_bytes());
}

TEST(CheckpointCache, SingleOverBudgetEntryStillServes) {
  Harness h;
  h.cluster_blobs[0] = std::string(500, 'a');
  h.cluster_blobs[1] = std::string(500, 'b');
  CheckpointCache cache = h.make(1);
  const auto a = cache.acquire(cluster(0));
  ASSERT_TRUE(a->engine);
  EXPECT_EQ(cache.stats().bytes_in_use, Harness::engine_bytes());
  // The next insert evicts the previous over-budget tenant, never itself.
  const auto b = cache.acquire(cluster(1));
  ASSERT_TRUE(b->engine);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().bytes_in_use, Harness::engine_bytes());
  // The in-flight shared_ptr keeps the evicted engine alive for its batch.
  EXPECT_TRUE(a->engine);
  EXPECT_EQ(a->key, cluster(0));
}

TEST(CheckpointCache, CorruptClusterBlobFallsBackToGeneral) {
  Harness h;
  h.cluster_blobs[0] = "corrupt-checkpoint-bytes";
  CheckpointCache cache = h.make(1 << 20);
  const auto e = cache.acquire(cluster(0));
  ASSERT_TRUE(e->engine);
  EXPECT_TRUE(e->fallback);
  // Accounting still charges the materialized engine.
  EXPECT_EQ(e->bytes, Harness::engine_bytes());
  EXPECT_EQ(cache.stats().fallbacks, 1u);
}

TEST(CheckpointCache, MissingClusterBlobFallsBackToGeneral) {
  Harness h;  // No cluster blobs registered at all.
  CheckpointCache cache = h.make(1 << 20);
  const auto e = cache.acquire(cluster(7));
  EXPECT_TRUE(e->fallback);
  EXPECT_EQ(cache.stats().fallbacks, 1u);
}

TEST(CheckpointCache, NoFallbackAvailableIsAnAddressedError) {
  Harness h;
  h.general_blob.clear();
  CheckpointCache cache = h.make(1 << 20);
  try {
    cache.acquire(cluster(3));
    FAIL() << "expected acquire to refuse";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("cluster 3"), std::string::npos)
        << "actual error: " << e.what();
    EXPECT_NE(std::string(e.what()).find("no general fallback"),
              std::string::npos)
        << "actual error: " << e.what();
  }
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CheckpointCache, MissingGeneralBlobRejected) {
  Harness h;
  h.general_blob.clear();
  CheckpointCache cache = h.make(1 << 20);
  EXPECT_THROW(cache.acquire(general()), Error);
}

TEST(CheckpointCache, PersonalKeysAreSessionOwned) {
  Harness h;
  CheckpointCache cache = h.make(1 << 20);
  BatchKey k;
  k.kind = BatchKey::Kind::kPersonal;
  k.id = 9;
  EXPECT_THROW(cache.acquire(k), Error);
}

TEST(CheckpointCache, PrecisionIsPartOfTheKey) {
  Harness h;
  h.cluster_blobs[0] = std::string(40, 'a');
  CheckpointCache cache = h.make(1 << 20);
  BatchKey fp32 = cluster(0);
  BatchKey fp16 = cluster(0);
  fp16.precision = edge::Precision::kFp16;
  cache.acquire(fp32);
  cache.acquire(fp16);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(CheckpointCache, RejectsZeroBudgetAndNullHooks) {
  Harness h;
  EXPECT_THROW(h.make(0), Error);
  EXPECT_THROW(CheckpointCache(nullptr, nullptr, nullptr, 1), Error);
}

}  // namespace
}  // namespace clear::serve
