#include "serve/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "tensor/serialize.hpp"

namespace clear::serve {
namespace {

namespace fs = std::filesystem;

/// Fresh journal directory per test, removed on teardown.
struct JournalTest : ::testing::Test {
  std::string dir;

  void SetUp() override {
    dir = (fs::temp_directory_path() /
           ("clear_journal_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name())))
              .string();
    fs::remove_all(dir);
  }

  void TearDown() override {
    fault::disarm_io_failure();
    fault::disarm_journal_io_fail();
    fault::disarm_journal_torn_write();
    fs::remove_all(dir);
  }
};

JournalRecord request_record(std::uint64_t user, std::uint64_t t,
                             double quality = 0.9) {
  JournalRecord r;
  r.type = RecordType::kRequest;
  r.user_id = user;
  r.time_us = t;
  r.quality = quality;
  return r;
}

TEST_F(JournalTest, EveryRecordTypeRoundTrips) {
  std::vector<JournalRecord> written;
  written.push_back(request_record(7, 1000, 0.8125));
  {
    JournalRecord r;
    r.type = RecordType::kObservation;
    r.user_id = 7;
    r.point = {0.25, -1.5, 3.0};
    written.push_back(r);
  }
  {
    JournalRecord r;
    r.type = RecordType::kAssign;
    r.user_id = 7;
    r.cluster = 2;
    written.push_back(r);
  }
  {
    JournalRecord r;
    r.type = RecordType::kLabelled;
    r.user_id = 7;
    r.label = 1;
    r.map = Tensor({2, 3});
    auto flat = r.map.flat();
    for (std::size_t i = 0; i < flat.size(); ++i)
      flat[i] = static_cast<float>(i) * 0.5f - 1.0f;
    written.push_back(r);
  }
  {
    JournalRecord r;
    r.type = RecordType::kFinetune;
    r.user_id = 7;
    r.ckpt_bytes = 12345;
    r.ckpt_crc = 0xDEADBEEF;
    written.push_back(r);
  }
  {
    JournalRecord r;
    r.type = RecordType::kFinetuneAbort;
    r.user_id = 9;
    written.push_back(r);
  }
  {
    JournalRecord r;
    r.type = RecordType::kShed;
    r.user_id = 9;
    r.shed_charged = true;
    written.push_back(r);
  }
  {
    JournalRecord r;
    r.type = RecordType::kShed;
    r.user_id = 10;
    r.shed_unadmitted = true;  // Table-full: no session, counts a request.
    written.push_back(r);
  }
  {
    JournalRecord r;
    r.type = RecordType::kPredict;
    r.user_id = 7;
    r.time_us = 4000;
    written.push_back(r);
  }

  {
    Journal journal({dir});
    for (const JournalRecord& r : written) EXPECT_GT(journal.append(r), 0u);
    EXPECT_EQ(journal.records_appended(), written.size());
    EXPECT_EQ(journal.next_seq(), written.size() + 1);
  }

  const JournalReadResult read = read_journal(dir);
  EXPECT_FALSE(read.missing);
  EXPECT_EQ(read.tail_bytes_dropped, 0u);
  ASSERT_EQ(read.records.size(), written.size());
  for (std::size_t i = 0; i < written.size(); ++i) {
    const JournalRecord& a = written[i];
    const JournalRecord& b = read.records[i];
    EXPECT_EQ(b.seq, i + 1) << "record " << i;
    EXPECT_EQ(b.type, a.type) << "record " << i;
    EXPECT_EQ(b.user_id, a.user_id) << "record " << i;
    EXPECT_EQ(b.time_us, a.time_us) << "record " << i;
    EXPECT_EQ(b.quality, a.quality) << "record " << i;  // Bit-exact.
    EXPECT_EQ(b.point, a.point) << "record " << i;
    EXPECT_EQ(b.cluster, a.cluster) << "record " << i;
    EXPECT_EQ(b.label, a.label) << "record " << i;
    EXPECT_EQ(b.ckpt_bytes, a.ckpt_bytes) << "record " << i;
    EXPECT_EQ(b.ckpt_crc, a.ckpt_crc) << "record " << i;
    EXPECT_EQ(b.shed_charged, a.shed_charged) << "record " << i;
    EXPECT_EQ(b.shed_unadmitted, a.shed_unadmitted) << "record " << i;
    ASSERT_EQ(b.map.flat().size(), a.map.flat().size()) << "record " << i;
    for (std::size_t j = 0; j < a.map.flat().size(); ++j)
      EXPECT_EQ(b.map.flat()[j], a.map.flat()[j])
          << "record " << i << " map[" << j << "]";
  }
}

TEST_F(JournalTest, MissingDirectoryReadsAsMissingNotError) {
  const JournalReadResult read = read_journal(dir);
  EXPECT_TRUE(read.missing);
  EXPECT_TRUE(read.records.empty());
  EXPECT_FALSE(journal_state_exists(dir));
}

TEST_F(JournalTest, TruncatedTailRecordIsDroppedNotFatal) {
  {
    Journal journal({dir});
    for (int i = 0; i < 3; ++i)
      journal.append(request_record(1, 1000 * (i + 1)));
  }
  // Chop the last record mid-frame, like a crash between write() and disk.
  const std::string log = journal_log_path(dir);
  const std::uintmax_t full = fs::file_size(log);
  fs::resize_file(log, full - 5);

  const JournalReadResult read = read_journal(dir);
  EXPECT_FALSE(read.missing);
  ASSERT_EQ(read.records.size(), 2u);
  EXPECT_GT(read.tail_bytes_dropped, 0u);
  EXPECT_EQ(read.records[1].seq, 2u);
}

TEST_F(JournalTest, CorruptRecordStopsReplayAtTheDamage) {
  std::size_t first_bytes = 0;
  {
    Journal journal({dir});
    first_bytes = journal.append(request_record(1, 1000));
    journal.append(request_record(1, 2000));
    journal.append(request_record(1, 3000));
  }
  // Flip one payload byte inside record 2; its frame CRC must catch it and
  // nothing after the damage may be trusted.
  const std::string log = journal_log_path(dir);
  std::fstream f(log, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekp(static_cast<std::streamoff>(16 + first_bytes + 12));
  char byte = 0;
  f.seekg(f.tellp());
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(16 + first_bytes + 12));
  f.write(&byte, 1);
  f.close();

  const JournalReadResult read = read_journal(dir);
  ASSERT_EQ(read.records.size(), 1u);
  EXPECT_EQ(read.records[0].seq, 1u);
  EXPECT_GT(read.tail_bytes_dropped, 0u);
}

TEST_F(JournalTest, BadHeaderDropsTheWholeFile) {
  {
    Journal journal({dir});
    journal.append(request_record(1, 1000));
  }
  std::fstream f(journal_log_path(dir),
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(0);
  f.write("GARBAGE!", 8);
  f.close();
  const JournalReadResult read = read_journal(dir);
  EXPECT_TRUE(read.records.empty());
  EXPECT_EQ(read.tail_bytes_dropped, fs::file_size(journal_log_path(dir)));
}

TEST_F(JournalTest, TornWriteFaultLeavesAPrefixThatReadsClean) {
  Journal journal({dir});
  journal.append(request_record(1, 1000));
  fault::arm_journal_torn_write(1, 7);
  EXPECT_THROW(journal.append(request_record(1, 2000)), Error);
  fault::disarm_journal_torn_write();

  const JournalReadResult read = read_journal(dir);
  ASSERT_EQ(read.records.size(), 1u);  // The intact first record survives.
  EXPECT_EQ(read.tail_bytes_dropped, 7u);
}

TEST_F(JournalTest, JournalIoFaultThrowsBeforeWritingAnything) {
  Journal journal({dir});
  journal.append(request_record(1, 1000));
  const std::uintmax_t before = fs::file_size(journal_log_path(dir));
  fault::arm_journal_io_fail(1);
  EXPECT_THROW(journal.append(request_record(1, 2000)), Error);
  fault::disarm_journal_io_fail();
  EXPECT_EQ(fs::file_size(journal_log_path(dir)), before);
  const JournalReadResult read = read_journal(dir);
  EXPECT_EQ(read.records.size(), 1u);
  EXPECT_EQ(read.tail_bytes_dropped, 0u);
}

SnapshotData sample_snapshot() {
  SnapshotData snap;
  snap.last_seq = 42;
  snap.last_arrival_us = 99000;
  snap.counters.requests = 10;
  snap.counters.ok = 8;
  snap.counters.shed = 2;
  snap.counters.assignments = 1;
  SessionImage image;
  image.user_id = 3;
  image.state = SessionState::kAssigned;
  image.saved_state = SessionState::kAssigned;
  image.cluster = 1;
  image.observations = {{0.5, 1.5}, {-2.0, 0.25}};
  image.requests = 10;
  image.predictions = 8;
  image.first_arrival_us = 1000;
  image.first_prediction_us = 3000;
  snap.sessions.push_back(image);
  return snap;
}

TEST_F(JournalTest, SnapshotRoundTripsAndCompactsTheLog) {
  Journal journal({dir});
  for (int i = 0; i < 5; ++i) journal.append(request_record(3, 1000 * i));

  SnapshotData snap = sample_snapshot();
  snap.last_seq = 5;
  journal.write_snapshot(snap);

  // The log was truncated back to its header; new records continue the
  // sequence numbering past the snapshot.
  journal.append(request_record(3, 9000));
  const JournalReadResult read = read_journal(dir);
  ASSERT_EQ(read.records.size(), 1u);
  EXPECT_EQ(read.records[0].seq, 6u);

  const std::optional<SnapshotData> loaded = read_snapshot(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->last_seq, 5u);
  EXPECT_EQ(loaded->last_arrival_us, snap.last_arrival_us);
  EXPECT_EQ(loaded->counters.requests, snap.counters.requests);
  EXPECT_EQ(loaded->counters.shed, snap.counters.shed);
  ASSERT_EQ(loaded->sessions.size(), 1u);
  const SessionImage& image = loaded->sessions[0];
  EXPECT_EQ(image.user_id, 3u);
  EXPECT_EQ(image.state, SessionState::kAssigned);
  EXPECT_EQ(image.cluster, 1u);
  ASSERT_EQ(image.observations.size(), 2u);
  EXPECT_EQ(image.observations[1], (cluster::Point{-2.0, 0.25}));
  ASSERT_TRUE(image.first_prediction_us.has_value());
  EXPECT_EQ(*image.first_prediction_us, 3000u);
}

TEST_F(JournalTest, SnapshotDueEverySnapshotEveryRecords) {
  JournalConfig config{dir};
  config.snapshot_every = 3;
  Journal journal(config);
  journal.append(request_record(1, 0));
  journal.append(request_record(1, 1000));
  EXPECT_FALSE(journal.due_for_snapshot());
  journal.append(request_record(1, 2000));
  EXPECT_TRUE(journal.due_for_snapshot());
  journal.write_snapshot(sample_snapshot());
  EXPECT_FALSE(journal.due_for_snapshot());
}

TEST_F(JournalTest, SnapshotWriteIsAtomicUnderInjectedIoFailure) {
  Journal journal({dir});
  journal.append(request_record(3, 1000));
  journal.write_snapshot(sample_snapshot());

  // Fault each guarded site in turn: write, fsync, rename. Whichever step
  // dies, the previous snapshot must stay intact and loadable.
  for (std::uint64_t countdown = 1; countdown <= 3; ++countdown) {
    SnapshotData next = sample_snapshot();
    next.last_seq = 100 + countdown;
    fault::arm_io_failure(countdown);
    EXPECT_THROW(write_snapshot_file(dir, next, true), Error);
    fault::disarm_io_failure();
    const std::optional<SnapshotData> loaded = read_snapshot(dir);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->last_seq, 42u) << "countdown " << countdown;
  }
}

TEST_F(JournalTest, CorruptSnapshotThrowsOnRead) {
  Journal journal({dir});
  journal.write_snapshot(sample_snapshot());
  std::fstream f(snapshot_path(dir),
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(24);
  char byte = 0;
  f.seekg(24);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x01);
  f.seekp(24);
  f.write(&byte, 1);
  f.close();
  EXPECT_THROW(read_snapshot(dir), Error);
}

TEST_F(JournalTest, UserCheckpointsRoundTripAndReportAbsence) {
  EXPECT_TRUE(read_user_checkpoint(dir, 5).empty());
  fs::create_directories(dir);
  const std::string blob = "not a real checkpoint, any bytes round-trip";
  write_user_checkpoint(dir, 5, blob, false);
  EXPECT_EQ(read_user_checkpoint(dir, 5), blob);
  EXPECT_TRUE(read_user_checkpoint(dir, 6).empty());
}

TEST_F(JournalTest, StateExistsAfterAnyDurableArtifact) {
  EXPECT_FALSE(journal_state_exists(dir));
  { Journal journal({dir}); }
  EXPECT_TRUE(journal_state_exists(dir));
}

// -- Format versioning (v1 compat, future refusal, unknown kinds) ------------

void put_le32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

/// CRC-frame a payload exactly like Journal::append does.
std::string framed(const std::string& payload) {
  std::string f;
  put_le32(f, static_cast<std::uint32_t>(payload.size()));
  put_le32(f, crc32(payload));
  f += payload;
  return f;
}

/// The 16-byte log header an arbitrary-version writer would emit.
std::string log_header(std::uint64_t version) {
  std::string h = "CLRWAL";
  h.push_back(static_cast<char>('0' + (version / 10) % 10));
  h.push_back(static_cast<char>('0' + version % 10));
  put_le32(h, static_cast<std::uint32_t>(version));
  put_le32(h, 0);
  return h;
}

TEST_F(JournalTest, AdaptationRecordKindsRoundTrip) {
  std::vector<JournalRecord> written;
  {
    JournalRecord r;
    r.type = RecordType::kDriftTick;
    r.user_id = 7;
    r.drifting = true;
    written.push_back(r);
  }
  {
    JournalRecord r;
    r.type = RecordType::kReassessObs;
    r.user_id = 7;
    r.point = {1.25, -0.5};
    written.push_back(r);
  }
  {
    JournalRecord r;
    r.type = RecordType::kReassign;
    r.user_id = 7;
    r.cluster = 3;
    written.push_back(r);
  }
  {
    JournalRecord r;
    r.type = RecordType::kShadowTick;
    r.user_id = 7;
    r.shadow_won = true;
    written.push_back(r);
  }
  {
    JournalRecord r;
    r.type = RecordType::kPromote;
    r.user_id = 7;
    r.cluster = 3;
    written.push_back(r);
  }
  {
    JournalRecord r;
    r.type = RecordType::kDemote;
    r.user_id = 9;
    written.push_back(r);
  }
  {
    Journal journal({dir});
    for (const JournalRecord& r : written) EXPECT_GT(journal.append(r), 0u);
  }
  const JournalReadResult read = read_journal(dir);
  EXPECT_TRUE(read.header_error.empty());
  ASSERT_EQ(read.records.size(), written.size());
  for (std::size_t i = 0; i < written.size(); ++i) {
    const JournalRecord& a = written[i];
    const JournalRecord& b = read.records[i];
    EXPECT_EQ(b.type, a.type) << "record " << i;
    EXPECT_EQ(b.user_id, a.user_id) << "record " << i;
    EXPECT_EQ(b.drifting, a.drifting) << "record " << i;
    EXPECT_EQ(b.shadow_won, a.shadow_won) << "record " << i;
    EXPECT_EQ(b.cluster, a.cluster) << "record " << i;
    EXPECT_EQ(b.point, a.point) << "record " << i;
  }
}

TEST_F(JournalTest, ReadsFormatV1FilesFromOldWriters) {
  // A v1 log, byte-for-byte what a pre-adaptation binary wrote: "CLRWAL01"
  // header and only the v1 record kinds. The v2 reader must accept it.
  std::ostringstream p1(std::ios::binary);
  io::write_u64(p1, 1);  // seq
  io::write_u64(p1, static_cast<std::uint64_t>(RecordType::kRequest));
  io::write_u64(p1, 7);  // user_id
  io::write_u64(p1, 1000);
  io::write_f64(p1, 0.875);
  std::ostringstream p2(std::ios::binary);
  io::write_u64(p2, 2);
  io::write_u64(p2, static_cast<std::uint64_t>(RecordType::kAssign));
  io::write_u64(p2, 7);
  io::write_u64(p2, 2);  // cluster
  fs::create_directories(dir);
  {
    std::ofstream os(journal_log_path(dir), std::ios::binary);
    const std::string bytes =
        log_header(1) + framed(p1.str()) + framed(p2.str());
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  const JournalReadResult read = read_journal(dir);
  EXPECT_TRUE(read.header_error.empty());
  EXPECT_EQ(read.tail_bytes_dropped, 0u);
  ASSERT_EQ(read.records.size(), 2u);
  EXPECT_EQ(read.records[0].type, RecordType::kRequest);
  EXPECT_EQ(read.records[0].user_id, 7u);
  EXPECT_EQ(read.records[0].time_us, 1000u);
  EXPECT_EQ(read.records[0].quality, 0.875);
  EXPECT_EQ(read.records[1].type, RecordType::kAssign);
  EXPECT_EQ(read.records[1].cluster, 2u);
}

TEST_F(JournalTest, ReadsFormatV1SnapshotsWithoutAdaptationFields) {
  // A v1 snapshot payload simply ends after has_personal; the v2 reader must
  // leave every adaptation field at its zero default.
  std::ostringstream os(std::ios::binary);
  io::write_u64(os, 5);     // last_seq
  io::write_u64(os, 9000);  // last_arrival_us
  for (int i = 0; i < 9; ++i) io::write_u64(os, 10 + i);  // v1 counters
  io::write_u64(os, 1);  // one session
  io::write_u64(os, 3);  // user_id
  io::write_u64(os, static_cast<std::uint64_t>(SessionState::kAssigned));
  io::write_u64(os, static_cast<std::uint64_t>(SessionState::kAssigned));
  io::write_u64(os, 0);  // bad_streak
  io::write_u64(os, 0);  // good_streak
  io::write_u64(os, 1);  // cluster
  io::write_u64(os, 0);  // no observations
  io::write_u64(os, 0);  // no labelled maps
  io::write_u64(os, 1);  // finetune_enabled
  io::write_u64(os, 10);  // requests
  io::write_u64(os, 0);   // shed
  io::write_u64(os, 8);   // predictions
  io::write_u64(os, 1000);  // first_arrival_us
  io::write_u64(os, 0);     // no first_prediction
  io::write_u64(os, 0);
  io::write_u64(os, 0);  // has_personal
  const std::string payload = os.str();
  std::string bytes = "CLRSNP01";
  put_le32(bytes, 1);
  put_le32(bytes, static_cast<std::uint32_t>(payload.size()));
  put_le32(bytes, crc32(payload));
  bytes += payload;
  fs::create_directories(dir);
  {
    std::ofstream f(snapshot_path(dir), std::ios::binary);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  const std::optional<SnapshotData> snap = read_snapshot(dir);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->last_seq, 5u);
  EXPECT_EQ(snap->counters.requests, 10u);
  EXPECT_EQ(snap->counters.drift_ticks, 0u);
  EXPECT_EQ(snap->counters.promotions, 0u);
  ASSERT_EQ(snap->sessions.size(), 1u);
  const SessionImage& img = snap->sessions[0];
  EXPECT_EQ(img.state, SessionState::kAssigned);
  EXPECT_EQ(img.drift_streak, 0u);
  EXPECT_EQ(img.reassess_from, SessionState::kAssigned);
  EXPECT_EQ(img.shadow_seen, 0u);
}

TEST_F(JournalTest, RefusesFutureFormatVersionsAtTheHeader) {
  // A v3 writer may have changed the framing itself, so a v2 reader must
  // refuse the whole file with a versioned error — the exact behavior a v1
  // reader shows a v2 log.
  std::ostringstream p(std::ios::binary);
  io::write_u64(p, 1);
  io::write_u64(p, static_cast<std::uint64_t>(RecordType::kRequest));
  io::write_u64(p, 7);
  io::write_u64(p, 1000);
  io::write_f64(p, 1.0);
  fs::create_directories(dir);
  {
    std::ofstream os(journal_log_path(dir), std::ios::binary);
    const std::string bytes = log_header(3) + framed(p.str());
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  const JournalReadResult read = read_journal(dir);
  EXPECT_FALSE(read.missing);
  EXPECT_TRUE(read.records.empty());
  EXPECT_EQ(read.tail_bytes_dropped, fs::file_size(journal_log_path(dir)));
  EXPECT_NE(read.header_error.find("format version 3"), std::string::npos)
      << read.header_error;
  EXPECT_NE(read.header_error.find("v1-v2"), std::string::npos)
      << read.header_error;
}

TEST_F(JournalTest, UnknownKindRecordsSurfaceAsSentinelsAndReadingContinues) {
  // A CRC-intact record of a kind 99 (hypothetically written by a newer
  // minor revision that kept the framing): the reader must surface it as
  // kUnknown with diagnostics and keep trusting the records after it —
  // corruption stops the replay, an unknown kind only quarantines a session.
  std::size_t first_bytes = 0;
  {
    Journal journal({dir});
    first_bytes = journal.append(request_record(7, 1000));
  }
  std::ostringstream unknown(std::ios::binary);
  io::write_u64(unknown, 2);   // seq
  io::write_u64(unknown, 99);  // kind this reader has never heard of
  io::write_u64(unknown, 42);  // user_id (stable prefix across versions)
  io::write_u64(unknown, 0xFEEDFACE);  // opaque payload bytes
  std::ostringstream after(std::ios::binary);
  io::write_u64(after, 3);
  io::write_u64(after, static_cast<std::uint64_t>(RecordType::kPredict));
  io::write_u64(after, 8);
  io::write_u64(after, 5000);
  {
    std::ofstream os(journal_log_path(dir),
                     std::ios::binary | std::ios::app);
    const std::string bytes = framed(unknown.str()) + framed(after.str());
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  const JournalReadResult read = read_journal(dir);
  EXPECT_TRUE(read.header_error.empty());
  EXPECT_EQ(read.tail_bytes_dropped, 0u);
  ASSERT_EQ(read.records.size(), 3u);
  EXPECT_EQ(read.records[0].type, RecordType::kRequest);
  const JournalRecord& u = read.records[1];
  EXPECT_EQ(u.type, RecordType::kUnknown);
  EXPECT_EQ(u.raw_kind, 99u);
  EXPECT_EQ(u.user_id, 42u);  // Recovery quarantines exactly this session.
  EXPECT_EQ(u.file_offset, 16u + first_bytes);
  EXPECT_EQ(read.records[2].type, RecordType::kPredict);
  EXPECT_EQ(read.records[2].user_id, 8u);
}

TEST_F(JournalTest, SnapshotRoundTripsAdaptationState) {
  SnapshotData snap = sample_snapshot();
  snap.counters.drift_ticks = 40;
  snap.counters.drift_detected = 2;
  snap.counters.reassessments = 2;
  snap.counters.drift_false_alarms = 1;
  snap.counters.shadow_ticks = 5;
  snap.counters.promotions = 1;
  snap.counters.demotions = 0;
  SessionImage& img = snap.sessions[0];
  img.state = SessionState::kShadowing;
  img.saved_state = SessionState::kShadowing;
  img.reassess_from = SessionState::kPersonalized;
  img.drift_streak = 0;
  img.candidate_cluster = 2;
  img.shadow_wins = 3;
  img.shadow_seen = 5;
  Journal journal({dir});
  journal.write_snapshot(snap);

  const std::optional<SnapshotData> loaded = read_snapshot(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->counters.drift_ticks, 40u);
  EXPECT_EQ(loaded->counters.drift_detected, 2u);
  EXPECT_EQ(loaded->counters.reassessments, 2u);
  EXPECT_EQ(loaded->counters.drift_false_alarms, 1u);
  EXPECT_EQ(loaded->counters.shadow_ticks, 5u);
  EXPECT_EQ(loaded->counters.promotions, 1u);
  ASSERT_EQ(loaded->sessions.size(), 1u);
  const SessionImage& got = loaded->sessions[0];
  EXPECT_EQ(got.state, SessionState::kShadowing);
  EXPECT_EQ(got.reassess_from, SessionState::kPersonalized);
  EXPECT_EQ(got.candidate_cluster, 2u);
  EXPECT_EQ(got.shadow_wins, 3u);
  EXPECT_EQ(got.shadow_seen, 5u);
}

}  // namespace
}  // namespace clear::serve
