#include "tensor/tensor.hpp"

#include <numeric>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace clear {

namespace {
std::size_t shape_product(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (const std::size_t e : shape) {
    CLEAR_CHECK_MSG(e > 0, "tensor extents must be positive");
    n *= e;
  }
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_product(shape_), 0.0f) {}

Tensor::Tensor(std::initializer_list<std::size_t> shape)
    : Tensor(std::vector<std::size_t>(shape)) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  CLEAR_CHECK_MSG(data_.size() == shape_product(shape_),
                  "data size " << data_.size() << " does not match shape "
                               << shape_str());
}

std::size_t Tensor::extent(std::size_t dim) const {
  CLEAR_CHECK_MSG(dim < shape_.size(), "extent dim out of range");
  return shape_[dim];
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  Tensor out = *this;
  out.reshape(std::move(new_shape));
  return out;
}

void Tensor::resize(std::vector<std::size_t> new_shape) {
  const std::size_t n = shape_product(new_shape);
  if (n != data_.size()) data_.resize(n);
  shape_ = std::move(new_shape);
}

void Tensor::reshape(std::vector<std::size_t> new_shape) {
  CLEAR_CHECK_MSG(shape_product(new_shape) == data_.size(),
                  "reshape to incompatible element count");
  shape_ = std::move(new_shape);
}

std::size_t Tensor::linear_index(std::span<const std::size_t> idx) const {
  CLEAR_CHECK_MSG(idx.size() == shape_.size(),
                  "index rank " << idx.size() << " != tensor rank "
                                << shape_.size());
  std::size_t lin = 0;
  for (std::size_t d = 0; d < idx.size(); ++d) {
    CLEAR_CHECK_MSG(idx[d] < shape_[d], "index out of bounds at dim " << d);
    lin = lin * shape_[d] + idx[d];
  }
  return lin;
}

float& Tensor::at(std::span<const std::size_t> idx) {
  return data_[linear_index(idx)];
}

float Tensor::at(std::span<const std::size_t> idx) const {
  return data_[linear_index(idx)];
}

float& Tensor::at2(std::size_t i, std::size_t j) {
  const std::size_t idx[] = {i, j};
  return data_[linear_index(idx)];
}
float Tensor::at2(std::size_t i, std::size_t j) const {
  const std::size_t idx[] = {i, j};
  return data_[linear_index(idx)];
}
float& Tensor::at3(std::size_t i, std::size_t j, std::size_t k) {
  const std::size_t idx[] = {i, j, k};
  return data_[linear_index(idx)];
}
float Tensor::at3(std::size_t i, std::size_t j, std::size_t k) const {
  const std::size_t idx[] = {i, j, k};
  return data_[linear_index(idx)];
}
float& Tensor::at4(std::size_t i, std::size_t j, std::size_t k,
                   std::size_t l) {
  const std::size_t idx[] = {i, j, k, l};
  return data_[linear_index(idx)];
}
float Tensor::at4(std::size_t i, std::size_t j, std::size_t k,
                  std::size_t l) const {
  const std::size_t idx[] = {i, j, k, l};
  return data_[linear_index(idx)];
}

void Tensor::fill(float value) {
  for (float& x : data_) x = value;
}

void Tensor::fill_normal(Rng& rng, float mean, float stddev) {
  for (float& x : data_)
    x = static_cast<float>(rng.normal(mean, stddev));
}

void Tensor::fill_uniform(Rng& rng, float lo, float hi) {
  for (float& x : data_)
    x = static_cast<float>(rng.uniform(lo, hi));
}

Tensor Tensor::zeros(std::vector<std::size_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::ones(std::vector<std::size_t> shape) {
  return full(std::move(shape), 1.0f);
}

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

}  // namespace clear
