#include "common/crc32.hpp"

#include <gtest/gtest.h>

#include <string>

namespace clear {
namespace {

// Published IEEE 802.3 check value: CRC-32 of "123456789".
TEST(Crc32, MatchesKnownCheckValue) {
  EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyInputIsZero) { EXPECT_EQ(crc32(std::string()), 0u); }

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string payload = "the quick brown fox jumps over the lazy dog";
  Crc32 acc;
  for (const char c : payload) acc.update(&c, 1);
  EXPECT_EQ(acc.value(), crc32(payload));
}

TEST(Crc32, SplitPointsDoNotMatter) {
  const std::string payload(1000, 'x');
  for (const std::size_t split : {std::size_t{1}, std::size_t{7},
                                  std::size_t{500}, std::size_t{999}}) {
    Crc32 acc;
    acc.update(payload.substr(0, split));
    acc.update(payload.substr(split));
    EXPECT_EQ(acc.value(), crc32(payload));
  }
}

TEST(Crc32, SingleBitFlipChangesValue) {
  std::string payload(64, '\0');
  const std::uint32_t clean = crc32(payload);
  for (std::size_t byte = 0; byte < payload.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = payload;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_NE(crc32(flipped), clean)
          << "flip of byte " << byte << " bit " << bit << " went undetected";
    }
  }
}

TEST(Crc32, ResetStartsFresh) {
  Crc32 acc;
  acc.update(std::string("garbage"));
  acc.reset();
  acc.update(std::string("123456789"));
  EXPECT_EQ(acc.value(), 0xCBF43926u);
}

TEST(Crc32, ValueDoesNotConsume) {
  Crc32 acc;
  acc.update(std::string("1234"));
  (void)acc.value();
  acc.update(std::string("56789"));
  EXPECT_EQ(acc.value(), 0xCBF43926u);
}

}  // namespace
}  // namespace clear
