#include "serve/workload.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace clear::serve {

namespace {

// Hash-stream tags keeping every decision on an independent stream.
constexpr std::uint64_t kTagDegradedUser = 0xD6u;
constexpr std::uint64_t kTagSpanStart = 0x57u;
constexpr std::uint64_t kTagGap = 0xA1u;
constexpr std::uint64_t kTagLabel = 0x1Au;
constexpr std::uint64_t kTagCorrupt = 0xC0u;
constexpr std::uint64_t kTagDriftUser = 0x5Du;

double u01(std::uint64_t a, std::uint64_t b, std::uint64_t c,
           std::uint64_t d) {
  return fault::uniform01(fault::mix(a, b, c, d));
}

}  // namespace

std::vector<ServeRequest> make_workload(const wemac::WemacDataset& dataset,
                                        const WorkloadConfig& config) {
  CLEAR_CHECK_MSG(dataset.n_volunteers() >= 1, "empty dataset");
  CLEAR_CHECK_MSG(config.n_users >= 1 && config.requests_per_user >= 1,
                  "workload needs users and requests");

  std::vector<ServeRequest> requests;
  requests.reserve(config.n_users * config.requests_per_user);

  for (std::size_t u = 0; u < config.n_users; ++u) {
    const std::size_t volunteer = u % dataset.n_volunteers();
    const std::vector<std::size_t>& samples = dataset.samples_of(volunteer);
    CLEAR_CHECK_MSG(!samples.empty(), "volunteer without samples");

    const bool degraded_user =
        u01(config.seed, u, kTagDegradedUser, 0) <
        config.degraded_user_fraction;
    std::size_t span_begin = config.requests_per_user;  // Off by default.
    if (degraded_user && config.degraded_span > 0) {
      const std::size_t latest =
          config.requests_per_user > config.degraded_span
              ? config.requests_per_user - config.degraded_span
              : 0;
      span_begin = static_cast<std::size_t>(
          u01(config.seed, u, kTagSpanStart, 0) *
          static_cast<double>(latest + 1));
    }

    // Distribution drift: past the onset request a drifting user's maps are
    // blended toward a different volunteer's — the assigned cluster stops
    // fitting and the serve-side drift monitor should notice.
    const bool drift_user =
        u01(config.seed, u, kTagDriftUser, 0) < config.drift_user_fraction;
    const std::size_t drift_at =
        drift_user ? static_cast<std::size_t>(
                         config.drift_at_fraction *
                         static_cast<double>(config.requests_per_user))
                   : config.requests_per_user;
    const std::size_t drift_volunteer =
        dataset.n_volunteers() > 1
            ? (volunteer + 1 + fault::mix(config.seed, u, kTagDriftUser, 1) %
                                   (dataset.n_volunteers() - 1)) %
                  dataset.n_volunteers()
            : volunteer;

    // Each user starts in one of the first few slots, then walks forward by
    // a hashed number of slots per request (0 = same-slot burst).
    std::uint64_t arrival_slot =
        fault::mix(config.seed, u, kTagGap, ~0ull) % 4;
    for (std::size_t i = 0; i < config.requests_per_user; ++i) {
      const wemac::Sample& sample =
          dataset.samples()[samples[i % samples.size()]];

      ServeRequest r;
      r.user_id = u;
      r.request_id = i;
      r.arrival_us = arrival_slot * config.slot_us;
      r.map = sample.feature_map;
      arrival_slot += static_cast<std::uint64_t>(
          2.0 * config.mean_slots_between * u01(config.seed, u, kTagGap, i) +
          0.5);

      if (i >= drift_at && drift_volunteer != volunteer) {
        const std::vector<std::size_t>& target_samples =
            dataset.samples_of(drift_volunteer);
        const Tensor& target =
            dataset.samples()[target_samples[i % target_samples.size()]]
                .feature_map;
        const float blend = static_cast<float>(config.drift_blend);
        for (std::size_t j = 0; j < r.map.numel(); ++j)
          r.map[j] = (1.0f - blend) * r.map[j] + blend * target[j];
      }

      if (u01(config.seed, u, kTagLabel, i) < config.labeled_fraction)
        r.label = sample.label;

      const bool in_span =
          i >= span_begin && i < span_begin + config.degraded_span;
      if (in_span) {
        r.quality = config.bad_quality;
        // Corrupt individual samples to NaN — what a dropped radio link
        // looks like after demodulation; the server's sanitizer gap-fills.
        for (std::size_t j = 0; j < r.map.numel(); ++j)
          if (u01(config.seed, u, kTagCorrupt,
                  i * r.map.numel() + j) < config.corrupt_rate)
            r.map[j] = std::numeric_limits<float>::quiet_NaN();
      }
      requests.push_back(std::move(r));
    }
  }

  std::sort(requests.begin(), requests.end(),
            [](const ServeRequest& a, const ServeRequest& b) {
              if (a.arrival_us != b.arrival_us)
                return a.arrival_us < b.arrival_us;
              if (a.user_id != b.user_id) return a.user_id < b.user_id;
              return a.request_id < b.request_id;
            });
  return requests;
}

}  // namespace clear::serve
