#include "nn/activations.hpp"

#include "common/error.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/ops.hpp"

namespace clear::nn {

Tensor ReLU::forward(const Tensor& input) {
  mask_ = Tensor(input.shape());
  Tensor out(input.shape());
  kernels::active().relu_f32(input.data(), out.data(), mask_.data(),
                             input.numel());
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  CLEAR_CHECK_MSG(grad_output.same_shape(mask_), "ReLU backward shape mismatch");
  return ops::mul(grad_output, mask_);
}

Dropout::Dropout(double rate, Rng& rng) : rate_(rate), rng_(rng.fork(0xD09)) {
  CLEAR_CHECK_MSG(rate >= 0.0 && rate < 1.0, "dropout rate must be in [0,1)");
}

Tensor Dropout::forward(const Tensor& input) {
  if (!training_ || rate_ == 0.0) {
    identity_pass_ = true;
    return input;
  }
  identity_pass_ = false;
  mask_ = Tensor(input.shape());
  const float keep_inv = 1.0f / static_cast<float>(1.0 - rate_);
  Tensor out = input;
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const bool keep = !rng_.bernoulli(rate_);
    mask_[i] = keep ? keep_inv : 0.0f;
    out[i] *= mask_[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (identity_pass_) return grad_output;
  CLEAR_CHECK_MSG(grad_output.same_shape(mask_),
                  "Dropout backward shape mismatch");
  return ops::mul(grad_output, mask_);
}

Tensor Flatten::forward(const Tensor& input) {
  CLEAR_CHECK_MSG(input.rank() >= 2, "Flatten expects batched input");
  cached_shape_ = input.shape();
  const std::size_t n = input.extent(0);
  return input.reshaped({n, input.numel() / n});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  CLEAR_CHECK_MSG(!cached_shape_.empty(), "backward before forward");
  return grad_output.reshaped(cached_shape_);
}

Tensor ToSequence::forward(const Tensor& input) {
  CLEAR_CHECK_MSG(input.rank() == 4, "ToSequence expects [N, C, H, W]");
  cached_shape_ = input.shape();
  const std::size_t n = input.extent(0);
  const std::size_t c = input.extent(1);
  const std::size_t h = input.extent(2);
  const std::size_t w = input.extent(3);
  Tensor out({n, w, c * h});
  for (std::size_t b = 0; b < n; ++b)
    for (std::size_t ch = 0; ch < c; ++ch)
      for (std::size_t i = 0; i < h; ++i)
        for (std::size_t j = 0; j < w; ++j)
          out.at3(b, j, ch * h + i) = input.at4(b, ch, i, j);
  return out;
}

Tensor ToSequence::backward(const Tensor& grad_output) {
  CLEAR_CHECK_MSG(!cached_shape_.empty(), "backward before forward");
  const std::size_t n = cached_shape_[0];
  const std::size_t c = cached_shape_[1];
  const std::size_t h = cached_shape_[2];
  const std::size_t w = cached_shape_[3];
  CLEAR_CHECK_MSG(grad_output.rank() == 3 && grad_output.extent(0) == n &&
                      grad_output.extent(1) == w &&
                      grad_output.extent(2) == c * h,
                  "ToSequence backward shape mismatch");
  Tensor grad(cached_shape_);
  for (std::size_t b = 0; b < n; ++b)
    for (std::size_t ch = 0; ch < c; ++ch)
      for (std::size_t i = 0; i < h; ++i)
        for (std::size_t j = 0; j < w; ++j)
          grad.at4(b, ch, i, j) = grad_output.at3(b, j, ch * h + i);
  return grad;
}

}  // namespace clear::nn
