// Crash-recovery suite: journaled serving, deterministic replay, and the
// per-session fallback paths. The "crash" in these tests is dropping a
// journaled Server without any graceful shutdown — exactly what SIGKILL
// leaves behind on disk (the chaos gate, tools/run_chaos_soak.sh, does the
// same thing at the process level against the wire front end).
#include "serve/recovery.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "clear/config.hpp"
#include "clear/pipeline.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/parallel.hpp"
#include "tensor/serialize.hpp"
#include "serve/delta.hpp"
#include "serve/journal.hpp"
#include "serve/server.hpp"
#include "wemac/dataset.hpp"

namespace clear::serve {
namespace {

namespace fs = std::filesystem;

core::ClearConfig recovery_config() {
  core::ClearConfig c = core::smoke_config();
  c.data.seed = 77;
  c.data.n_volunteers = 8;
  c.data.trials_per_volunteer = 5;
  c.train.epochs = 2;
  c.finetune.epochs = 1;
  c.finalize();
  return c;
}

struct SharedFixture {
  wemac::WemacDataset dataset;
  core::ClearPipeline pipeline;
  ModelSource source;

  SharedFixture()
      : dataset(wemac::generate_wemac(recovery_config().data)),
        pipeline(recovery_config()) {
    std::vector<std::size_t> users;
    for (std::size_t u = 0; u + 2 < dataset.n_volunteers(); ++u)
      users.push_back(u);
    pipeline.fit(dataset, users);
    source = ModelSource::from_pipeline(pipeline);
  }
};

SharedFixture& fixture() {
  static SharedFixture f;
  return f;
}

ServeRequest req(std::uint64_t user, std::uint64_t id, std::uint64_t t,
                 std::optional<int> label = std::nullopt,
                 double quality = 1.0) {
  auto& f = fixture();
  const auto& samples = f.dataset.samples_of(f.dataset.n_volunteers() - 1);
  const std::size_t s = samples[id % samples.size()];
  ServeRequest r;
  r.user_id = user;
  r.request_id = id;
  r.arrival_us = t;
  r.map = f.dataset.samples()[s].feature_map;
  r.quality = quality;
  r.label = label;
  return r;
}

void expect_identical(const std::vector<ServeResult>& a,
                      const std::vector<ServeResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user_id, b[i].user_id) << "result " << i;
    EXPECT_EQ(a[i].request_id, b[i].request_id) << "result " << i;
    EXPECT_EQ(a[i].status, b[i].status) << "result " << i;
    EXPECT_EQ(a[i].error, b[i].error) << "result " << i;
    EXPECT_EQ(a[i].predicted, b[i].predicted) << "result " << i;
    // Bit-identical, not approximately equal — the recovery contract.
    EXPECT_EQ(a[i].fear_probability, b[i].fear_probability) << "result " << i;
    EXPECT_EQ(a[i].route, b[i].route) << "result " << i;
    EXPECT_EQ(a[i].session_state, b[i].session_state) << "result " << i;
    EXPECT_EQ(a[i].batch_rows, b[i].batch_rows) << "result " << i;
    EXPECT_EQ(a[i].exec_us, b[i].exec_us) << "result " << i;
  }
}

ServeConfig journaled_config(const std::string& dir) {
  ServeConfig sc;
  sc.session.ca_windows = 2;
  sc.session.ft_maps = 2;
  sc.journal.directory = dir;
  return sc;
}

/// Phase 1: drives users 1 and 2 from COLD through assignment and a
/// fine-tune — both end PERSONALIZED. A third user stays mid-lifecycle
/// (observations buffered, not yet assigned).
std::vector<ServeRequest> phase1() {
  std::vector<ServeRequest> s;
  s.push_back(req(1, 0, 0));
  s.push_back(req(2, 0, 100));
  s.push_back(req(1, 1, 1000));
  s.push_back(req(2, 1, 1100));
  s.push_back(req(1, 2, 2000, 0));
  s.push_back(req(2, 2, 2100, 1));
  s.push_back(req(1, 3, 3000, 1));
  s.push_back(req(2, 3, 3100, 0));
  s.push_back(req(3, 0, 3200));
  return s;
}

/// Phase 2: the continuation stream served after the crash (or, for the
/// golden run, after an uneventful phase 1).
std::vector<ServeRequest> phase2() {
  std::vector<ServeRequest> s;
  s.push_back(req(1, 4, 4000));
  s.push_back(req(2, 4, 4100));
  s.push_back(req(3, 1, 4200));
  s.push_back(req(1, 5, 5000));
  s.push_back(req(2, 5, 5100, 0));
  s.push_back(req(3, 2, 5200, 1));
  return s;
}

struct RecoveryTest : ::testing::Test {
  std::string dir;

  void SetUp() override {
    dir = (fs::temp_directory_path() /
           ("clear_recovery_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name())))
              .string();
    fs::remove_all(dir);
  }

  void TearDown() override {
    fault::disarm_io_failure();
    fault::disarm_journal_io_fail();
    fault::disarm_journal_torn_write();
    fs::remove_all(dir);
  }

  /// Run phase 1 on a journaled server and "crash" it (destroy with no
  /// snapshot, like SIGKILL). Returns its counters for later comparison.
  ServeCounters crash_after_phase1(ServeConfig sc) {
    auto& f = fixture();
    Server server(f.source, sc);
    server.open_journal();
    server.run(phase1());
    EXPECT_EQ(server.counters().finetunes, 2u);
    EXPECT_TRUE(server.journaling());
    return server.counters();
  }
};

TEST_F(RecoveryTest, ReplayRestoresSessionsAndCountersBitIdentically) {
  auto& f = fixture();
  const ServeCounters crashed = crash_after_phase1(journaled_config(dir));

  Server restored(f.source, journaled_config(dir));
  const RecoveryReport report = restored.recover();
  EXPECT_TRUE(report.clean()) << report.str();
  EXPECT_EQ(report.sessions, 3u);
  EXPECT_EQ(report.personalized, 2u);
  EXPECT_EQ(report.personalized_expected, 2u);
  EXPECT_EQ(report.session_fallbacks, 0u);
  EXPECT_EQ(report.tail_bytes_dropped, 0u);
  EXPECT_FALSE(report.snapshot_corrupt);
  EXPECT_TRUE(restored.journaling());  // Recovery reopens the journal.

  // The deterministic counters survive the crash exactly.
  EXPECT_EQ(restored.counters().requests, crashed.requests);
  EXPECT_EQ(restored.counters().ok, crashed.ok);
  EXPECT_EQ(restored.counters().shed, crashed.shed);
  EXPECT_EQ(restored.counters().assignments, crashed.assignments);
  EXPECT_EQ(restored.counters().finetunes, crashed.finetunes);

  for (const Session* s : restored.sessions().sessions()) {
    if (s->user_id() == 3) {
      EXPECT_NE(s->state(), SessionState::kPersonalized);
    } else {
      EXPECT_EQ(s->state(), SessionState::kPersonalized)
          << "user " << s->user_id();
      EXPECT_TRUE(s->has_personal_engine());
    }
  }
}

TEST_F(RecoveryTest, PostRecoveryServingMatchesUninterruptedGoldenRun) {
  auto& f = fixture();
  // Golden: same two-phase cadence, no crash in between.
  Server golden(f.source, ServeConfig(journaled_config("")));
  golden.run(phase1());
  const std::vector<ServeResult> golden_tail = golden.run(phase2());

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const NumThreadsGuard guard(threads);
    const std::string d = dir + "_t" + std::to_string(threads);
    fs::remove_all(d);
    crash_after_phase1(journaled_config(d));
    Server restored(f.source, journaled_config(d));
    const RecoveryReport report = restored.recover();
    EXPECT_TRUE(report.clean()) << report.str();
    const std::vector<ServeResult> tail = restored.run(phase2());
    expect_identical(golden_tail, tail);
    fs::remove_all(d);
  }
}

// Delta storage (the default) must be invisible end-to-end: the persisted
// personal checkpoints are CLRART01 delta artifacts, and a crash + recovery
// over them serves bit-identically to a full-checkpoint golden run.
TEST_F(RecoveryTest, DeltaStorageRecoversBitIdenticallyToFullStorage) {
  auto& f = fixture();
  ServeConfig full_sc = journaled_config("");
  full_sc.delta_checkpoints = false;
  Server golden(f.source, full_sc);
  golden.run(phase1());
  const std::vector<ServeResult> golden_tail = golden.run(phase2());

  const ServeCounters crashed = crash_after_phase1(journaled_config(dir));
  EXPECT_EQ(crashed.delta_encoded, crashed.finetunes);
  EXPECT_EQ(crashed.delta_full_fallbacks, 0u);
  EXPECT_GT(crashed.delta_bytes_saved, 0u);
  for (const std::uint64_t user : {1ull, 2ull}) {
    const std::string stored = read_user_checkpoint(dir, user);
    ASSERT_FALSE(stored.empty()) << "user " << user;
    EXPECT_TRUE(delta::is_delta(stored)) << "user " << user;
  }

  Server restored(f.source, journaled_config(dir));
  const RecoveryReport report = restored.recover();
  EXPECT_TRUE(report.clean()) << report.str();
  EXPECT_EQ(report.personalized, 2u);
  EXPECT_GE(restored.counters().delta_loads, 2u);
  expect_identical(golden_tail, restored.run(phase2()));
}

// The docs/OPERATIONS.md migration runbook: a directory written with full
// checkpoints recovers under delta config unchanged, and
// rewrite_user_checkpoints() converts it in place — after which recovery
// still serves bit-identically.
TEST_F(RecoveryTest, RewriteMigratesFullCheckpointsToDeltas) {
  auto& f = fixture();
  ServeConfig golden_sc = journaled_config("");
  golden_sc.delta_checkpoints = false;
  Server golden(f.source, golden_sc);
  golden.run(phase1());
  const std::vector<ServeResult> golden_tail = golden.run(phase2());

  ServeConfig legacy_sc = journaled_config(dir);
  legacy_sc.delta_checkpoints = false;
  crash_after_phase1(legacy_sc);
  EXPECT_FALSE(delta::is_delta(read_user_checkpoint(dir, 1)));

  {
    // Recover with delta storage on: the legacy full files load unchanged.
    Server restored(f.source, journaled_config(dir));
    EXPECT_TRUE(restored.recover().clean());
    EXPECT_EQ(restored.counters().delta_loads, 0u);
    EXPECT_EQ(restored.rewrite_user_checkpoints(), 2u);
    EXPECT_TRUE(delta::is_delta(read_user_checkpoint(dir, 1)));
    EXPECT_TRUE(delta::is_delta(read_user_checkpoint(dir, 2)));
    // Idempotent: the second pass finds everything already converted.
    EXPECT_EQ(restored.rewrite_user_checkpoints(), 0u);
  }

  Server again(f.source, journaled_config(dir));
  const RecoveryReport report = again.recover();
  EXPECT_TRUE(report.clean()) << report.str();
  EXPECT_EQ(report.personalized, 2u);
  EXPECT_GE(again.counters().delta_loads, 2u);
  expect_identical(golden_tail, again.run(phase2()));
}

TEST_F(RecoveryTest, RecoversFromSnapshotPlusJournalTail) {
  auto& f = fixture();
  ServeConfig sc = journaled_config(dir);
  sc.journal.snapshot_every = 4;  // Force mid-run compactions.
  crash_after_phase1(sc);
  ASSERT_TRUE(fs::exists(snapshot_path(dir)));

  Server restored(f.source, sc);
  const RecoveryReport report = restored.recover();
  EXPECT_TRUE(report.clean()) << report.str();
  EXPECT_TRUE(report.snapshot_loaded);
  EXPECT_GT(report.snapshot_sessions, 0u);
  EXPECT_EQ(report.personalized, 2u);

  // And the recovered server still serves the continuation.
  const std::vector<ServeResult> tail = restored.run(phase2());
  for (const ServeResult& r : tail)
    EXPECT_EQ(r.status, ServeResult::Status::kOk);
}

// Regression: compaction used to fire from inside journal_append, so a
// snapshot boundary landing on a kRequest (appended before its quality tick)
// or kPredict (appended before ++ok) stamped a half-applied record as
// covered and replay lost its effects. With snapshot_every=1 every record is
// a boundary, so any such split shows up as counter or streak drift.
TEST_F(RecoveryTest, SnapshotOnEveryRecordNeverSplitsARecordsEffects) {
  auto& f = fixture();
  ServeConfig sc = journaled_config(dir);
  sc.journal.snapshot_every = 1;
  ServeCounters crashed;
  {
    Server server(f.source, sc);
    server.open_journal();
    std::vector<ServeRequest> stream = phase1();
    // A low-quality burst drives user 3 into DEGRADED — quality streaks are
    // exactly the state an append-time snapshot used to lose.
    stream.push_back(req(3, 1, 3300, std::nullopt, 0.1));
    stream.push_back(req(3, 2, 3400, std::nullopt, 0.1));
    stream.push_back(req(3, 3, 3500, std::nullopt, 0.1));
    server.run(stream);
    crashed = server.counters();
    EXPECT_EQ(crashed.degraded, 1u);
  }
  Server restored(f.source, sc);
  const RecoveryReport report = restored.recover();
  EXPECT_TRUE(report.clean()) << report.str();
  EXPECT_EQ(restored.counters().requests, crashed.requests);
  EXPECT_EQ(restored.counters().ok, crashed.ok);
  EXPECT_EQ(restored.counters().degraded, crashed.degraded);
  EXPECT_EQ(restored.counters().recovered, crashed.recovered);
  for (const Session* s : restored.sessions().sessions()) {
    if (s->user_id() == 3) {
      EXPECT_TRUE(s->degraded());
    }
  }
}

// Regression: table-full sheds used to write no journal record, so the
// recovered requests/shed counters read lower than the crashed process's.
TEST_F(RecoveryTest, TableFullShedsSurviveRecovery) {
  auto& f = fixture();
  ServeConfig tiny = journaled_config(dir);
  tiny.max_sessions = 2;  // Users 1 and 2 seat; user 3 is turned away.
  const ServeCounters crashed = crash_after_phase1(tiny);
  EXPECT_EQ(crashed.shed, 1u);

  Server restored(f.source, tiny);
  const RecoveryReport report = restored.recover();
  EXPECT_TRUE(report.clean()) << report.str();
  EXPECT_EQ(report.sessions, 2u);
  EXPECT_EQ(restored.counters().requests, crashed.requests);
  EXPECT_EQ(restored.counters().shed, crashed.shed);
}

// Regression: with a corrupt snapshot, replayed kRequest records used to
// recreate snapshot-resident sessions as fresh COLD ones via get_or_create;
// later records then applied cleanly on top of silently wrong state. Every
// session first seen via replay must be quarantined instead.
TEST_F(RecoveryTest, CorruptSnapshotQuarantinesEverySessionSeenInReplay) {
  auto& f = fixture();
  {
    Server server(f.source, journaled_config(dir));
    server.open_journal();
    server.run(phase1());
    server.snapshot_now();
    server.run(phase2());  // Journal tail names users 1, 2, and 3.
  }
  // Flip one payload byte: the snapshot fails its CRC on read.
  std::fstream snap(snapshot_path(dir),
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(snap.good());
  char byte = 0;
  snap.seekg(24);
  snap.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x01);
  snap.seekp(24);
  snap.write(&byte, 1);
  snap.close();

  Server restored(f.source, journaled_config(dir));
  const RecoveryReport report = restored.recover();
  EXPECT_TRUE(report.snapshot_corrupt);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.records_replayed, 0u);  // Nothing silently restored...
  EXPECT_EQ(report.sessions, 0u);
  EXPECT_EQ(report.session_fallbacks, 3u);  // ...everyone quarantined.
  EXPECT_GT(report.records_skipped, 0u);

  // Quarantined users restart COLD on next contact and keep being served.
  std::vector<ServeRequest> next;
  next.push_back(req(1, 6, 6000));
  next.push_back(req(2, 6, 6100));
  const std::vector<ServeResult> tail = restored.run(next);
  ASSERT_EQ(tail.size(), 2u);
  for (const ServeResult& r : tail)
    EXPECT_EQ(r.status, ServeResult::Status::kOk);
  EXPECT_EQ(restored.sessions().sessions().size(), 2u);
}

TEST_F(RecoveryTest, CorruptPersonalCheckpointDemotesOnlyThatSession) {
  auto& f = fixture();
  crash_after_phase1(journaled_config(dir));

  // Damage user 1's fine-tuned checkpoint; user 2's stays intact.
  const std::string path = user_checkpoint_path(dir, 1);
  ASSERT_TRUE(fs::exists(path));
  std::fstream ck(path, std::ios::in | std::ios::out | std::ios::binary);
  ck.seekp(static_cast<std::streamoff>(fs::file_size(path) / 2));
  ck.write("\xFF", 1);
  ck.close();

  Server restored(f.source, journaled_config(dir));
  const RecoveryReport report = restored.recover();
  EXPECT_FALSE(report.clean());  // A personalized session was lost...
  EXPECT_EQ(report.personalized_expected, 2u);
  EXPECT_EQ(report.personalized, 1u);
  EXPECT_EQ(report.session_fallbacks, 0u);  // ...but nobody was evicted.
  EXPECT_EQ(report.sessions, 3u);

  for (const Session* s : restored.sessions().sessions()) {
    if (s->user_id() == 1) {
      // Demoted to its cluster assignment, history intact.
      EXPECT_EQ(s->state(), SessionState::kAssigned);
      EXPECT_FALSE(s->has_personal_engine());
    } else if (s->user_id() == 2) {
      EXPECT_EQ(s->state(), SessionState::kPersonalized);
      EXPECT_TRUE(s->has_personal_engine());
    }
  }
  // The demoted user keeps being served (from the cluster model).
  const std::vector<ServeResult> tail = restored.run(phase2());
  for (const ServeResult& r : tail)
    EXPECT_EQ(r.status, ServeResult::Status::kOk);
}

TEST_F(RecoveryTest, TornJournalTailDropsOnlyTheTornRecord) {
  auto& f = fixture();
  crash_after_phase1(journaled_config(dir));
  const std::string log = journal_log_path(dir);
  fs::resize_file(log, fs::file_size(log) - 3);  // Torn final write.

  Server restored(f.source, journaled_config(dir));
  const RecoveryReport report = restored.recover();
  EXPECT_GT(report.tail_bytes_dropped, 0u);
  EXPECT_EQ(report.sessions, 3u);
  // The torn record was a kPredict tail event; every personalization
  // survived.
  EXPECT_EQ(report.personalized, 2u);
  EXPECT_EQ(report.personalized, report.personalized_expected);
}

TEST_F(RecoveryTest, SessionTableFullFallsBackPerSessionNotPerProcess) {
  auto& f = fixture();
  crash_after_phase1(journaled_config(dir));

  ServeConfig tiny = journaled_config(dir);
  tiny.max_sessions = 1;  // Recovery cannot seat everyone.
  Server restored(f.source, tiny);
  const RecoveryReport report = restored.recover();
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.sessions, 1u);
  EXPECT_EQ(report.session_fallbacks, 2u);
  EXPECT_GT(report.records_skipped, 0u);  // Quarantined users' records.
  // The surviving session is intact and the server still serves.
  EXPECT_EQ(restored.sessions().sessions().size(), 1u);
}

TEST_F(RecoveryTest, OpenJournalRefusesToClobberExistingState) {
  auto& f = fixture();
  crash_after_phase1(journaled_config(dir));
  Server fresh(f.source, journaled_config(dir));
  try {
    fresh.open_journal();
    FAIL() << "open_journal over existing state must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--recover"), std::string::npos)
        << "error should point at --recover: " << e.what();
  }
}

TEST_F(RecoveryTest, JournalIoFailureDisablesJournalingButKeepsServing) {
  auto& f = fixture();
  Server server(f.source, journaled_config(dir));
  server.open_journal();
  fault::arm_journal_io_fail(3);  // Fail the third journal operation.
  const std::vector<ServeResult> out = server.run(phase1());
  fault::disarm_journal_io_fail();
  EXPECT_FALSE(server.journaling());  // Disabled, not crashed.
  EXPECT_EQ(server.counters().journal_io_errors, 1u);
  ASSERT_EQ(out.size(), phase1().size());
  for (const ServeResult& r : out)
    EXPECT_EQ(r.status, ServeResult::Status::kOk);
}

TEST_F(RecoveryTest, SnapshotIoFailureDisablesJournalingButKeepsServing) {
  auto& f = fixture();
  Server server(f.source, journaled_config(dir));
  server.open_journal();
  server.run(phase1());
  fault::arm_io_failure(1);  // Trip the snapshot's atomic-write path.
  server.snapshot_now();
  fault::disarm_io_failure();
  EXPECT_FALSE(server.journaling());
  EXPECT_EQ(server.counters().journal_io_errors, 1u);
  const std::vector<ServeResult> tail = server.run(phase2());
  for (const ServeResult& r : tail)
    EXPECT_EQ(r.status, ServeResult::Status::kOk);
}

// -- Online adaptation (drift / re-assessment / shadowing) -------------------

/// Like req(), but drawing the feature map from a chosen volunteer — the
/// lever that makes a user's stream drift toward another cluster.
ServeRequest req_from(std::size_t volunteer, std::uint64_t user,
                      std::uint64_t id, std::uint64_t t) {
  auto& f = fixture();
  const auto& samples = f.dataset.samples_of(volunteer);
  const std::size_t s = samples[id % samples.size()];
  ServeRequest r;
  r.user_id = user;
  r.request_id = id;
  r.arrival_us = t;
  r.map = f.dataset.samples()[s].feature_map;
  return r;
}

/// Two fitted volunteers the global clustering put in different clusters.
std::pair<std::size_t, std::size_t> cross_cluster_volunteers() {
  const auto& uc = fixture().source.clustering.user_cluster;
  for (std::size_t a = 0; a < uc.size(); ++a)
    for (std::size_t b = a + 1; b < uc.size(); ++b)
      if (uc[a] != uc[b]) return {a, b};
  ADD_FAILURE() << "fixture clustering collapsed to one cluster";
  return {0, 0};
}

ServeConfig drift_config(const std::string& dir) {
  ServeConfig sc = journaled_config(dir);
  sc.session.drift_after = 2;
  sc.session.drift_ratio = 1.0;  // Drift as soon as another cluster fits.
  sc.session.reassess_windows = 2;
  sc.session.shadow_windows = 3;
  return sc;
}

/// The first `n` requests of a stream that walks user 9 through the whole
/// adaptation arc: two windows from volunteer `a` assign it, then every
/// window comes from volunteer `b` (a different cluster), so the session
/// triggers at request 3, buffers re-assessment windows at 4-5, shadows at
/// 6-8, and promotes on the 3-0 sweep.
std::vector<ServeRequest> drifting_stream(std::size_t n) {
  const auto [a, b] = cross_cluster_volunteers();
  std::vector<ServeRequest> s;
  for (std::size_t i = 0; i < n; ++i)
    s.push_back(req_from(i < 2 ? a : b, 9, i, 1000 * (i + 1)));
  return s;
}

void expect_image_identical(const SessionImage& x, const SessionImage& y) {
  EXPECT_EQ(x.user_id, y.user_id);
  EXPECT_EQ(x.state, y.state);
  EXPECT_EQ(x.saved_state, y.saved_state);
  EXPECT_EQ(x.bad_streak, y.bad_streak);
  EXPECT_EQ(x.good_streak, y.good_streak);
  EXPECT_EQ(x.cluster, y.cluster);
  EXPECT_EQ(x.observations, y.observations);
  EXPECT_EQ(x.finetune_enabled, y.finetune_enabled);
  EXPECT_EQ(x.requests, y.requests);
  EXPECT_EQ(x.predictions, y.predictions);
  EXPECT_EQ(x.has_personal, y.has_personal);
  EXPECT_EQ(x.drift_streak, y.drift_streak);
  EXPECT_EQ(x.reassess_from, y.reassess_from);
  EXPECT_EQ(x.candidate_cluster, y.candidate_cluster);
  EXPECT_EQ(x.shadow_wins, y.shadow_wins);
  EXPECT_EQ(x.shadow_seen, y.shadow_seen);
}

SessionImage image_of(const Server& server, std::uint64_t user) {
  for (const Session* s : server.sessions().sessions())
    if (s->user_id() == user) return s->image();
  ADD_FAILURE() << "no session for user " << user;
  return {};
}

TEST_F(RecoveryTest, CrashMidReassessmentRestoresAdaptationBitIdentically) {
  auto& f = fixture();
  const std::vector<ServeRequest> full = drifting_stream(9);
  const std::vector<ServeRequest> head(full.begin(), full.begin() + 5);
  const std::vector<ServeRequest> rest(full.begin() + 5, full.end());

  // Golden: the full arc with no crash in between.
  Server golden(f.source, ServeConfig(drift_config("")));
  golden.run(head);  // Ends with one re-assess window buffered.
  ASSERT_EQ(image_of(golden, 9).state, SessionState::kReassessing);
  const std::vector<ServeResult> golden_tail = golden.run(rest);
  EXPECT_EQ(golden.counters().promotions, 1u);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const NumThreadsGuard guard(threads);
    const std::string d = dir + "_t" + std::to_string(threads);
    fs::remove_all(d);
    SessionImage crashed_image;
    ServeCounters crashed;
    {
      Server server(f.source, drift_config(d));
      server.open_journal();
      server.run(head);
      crashed_image = image_of(server, 9);
      crashed = server.counters();
      EXPECT_EQ(crashed_image.state, SessionState::kReassessing);
      EXPECT_GT(crashed.drift_ticks, 0u);
      EXPECT_EQ(crashed.drift_detected, 1u);
    }
    Server restored(f.source, drift_config(d));
    const RecoveryReport report = restored.recover();
    EXPECT_TRUE(report.clean()) << report.str();
    EXPECT_EQ(report.reassessing, 1u);
    EXPECT_EQ(report.shadowing, 0u);
    expect_image_identical(image_of(restored, 9), crashed_image);
    EXPECT_EQ(restored.counters().drift_ticks, crashed.drift_ticks);
    EXPECT_EQ(restored.counters().drift_detected, crashed.drift_detected);
    EXPECT_EQ(restored.counters().reassessments, crashed.reassessments);

    // The continuation stream is byte-identical to the uninterrupted run.
    const std::vector<ServeResult> tail = restored.run(rest);
    expect_identical(golden_tail, tail);
    EXPECT_EQ(restored.counters().promotions, 1u);
    fs::remove_all(d);
  }
}

TEST_F(RecoveryTest, CrashMidShadowingRestoresShadowBookkeeping) {
  auto& f = fixture();
  SessionImage crashed_image;
  ServeCounters crashed;
  {
    Server server(f.source, drift_config(dir));
    server.open_journal();
    server.run(drifting_stream(7));  // One shadow window scored, two to go.
    crashed_image = image_of(server, 9);
    crashed = server.counters();
    ASSERT_EQ(crashed_image.state, SessionState::kShadowing);
    EXPECT_EQ(crashed_image.shadow_seen, 1u);
    EXPECT_EQ(crashed.reassessments, 1u);
    EXPECT_EQ(crashed.shadow_ticks, 1u);
  }
  Server restored(f.source, drift_config(dir));
  const RecoveryReport report = restored.recover();
  EXPECT_TRUE(report.clean()) << report.str();
  EXPECT_EQ(report.shadowing, 1u);
  EXPECT_EQ(report.reassessing, 0u);
  EXPECT_NE(report.str().find("1 shadowing restored"), std::string::npos)
      << report.str();
  expect_image_identical(image_of(restored, 9), crashed_image);
  EXPECT_EQ(restored.counters().shadow_ticks, crashed.shadow_ticks);
  EXPECT_EQ(restored.counters().drift_false_alarms,
            crashed.drift_false_alarms);

  // Finishing the arc on the recovered server promotes exactly as the
  // uninterrupted run would.
  const std::vector<ServeRequest> full = drifting_stream(9);
  restored.run({full.begin() + 7, full.end()});
  EXPECT_EQ(restored.counters().promotions, 1u);
  const SessionImage finished = image_of(restored, 9);
  EXPECT_EQ(finished.state, SessionState::kAssigned);
  EXPECT_EQ(finished.cluster, crashed_image.candidate_cluster);
}

TEST_F(RecoveryTest, UnknownKindRecordQuarantinesOnlyThatSession) {
  auto& f = fixture();
  crash_after_phase1(journaled_config(dir));
  // Append a CRC-intact record of kind 99 naming user 2 — what a newer
  // format revision that kept the framing would have written.
  std::ostringstream payload(std::ios::binary);
  io::write_u64(payload, 1000);  // seq (past everything journaled so far)
  io::write_u64(payload, 99);    // kind
  io::write_u64(payload, 2);     // user_id
  const std::string p = payload.str();
  std::string frame;
  for (const std::uint32_t v :
       {static_cast<std::uint32_t>(p.size()), crc32(p)}) {
    frame.push_back(static_cast<char>(v & 0xFF));
    frame.push_back(static_cast<char>((v >> 8) & 0xFF));
    frame.push_back(static_cast<char>((v >> 16) & 0xFF));
    frame.push_back(static_cast<char>((v >> 24) & 0xFF));
  }
  frame += p;
  {
    std::ofstream os(journal_log_path(dir),
                     std::ios::binary | std::ios::app);
    os.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  }

  Server restored(f.source, journaled_config(dir));
  const RecoveryReport report = restored.recover();
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.unknown_kind_records, 1u);
  EXPECT_EQ(report.session_fallbacks, 1u);  // User 2, nobody else.
  EXPECT_EQ(report.sessions, 2u);
  for (const Session* s : restored.sessions().sessions())
    EXPECT_NE(s->user_id(), 2u);
  // Users 1 and 3 replayed in full; user 1 keeps its personalization.
  EXPECT_EQ(report.personalized, 1u);

  // The quarantined user restarts COLD and keeps being served.
  const std::vector<ServeResult> tail = restored.run({req(2, 9, 9000)});
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].status, ServeResult::Status::kOk);
}

TEST_F(RecoveryTest, GracefulSnapshotMakesReplayJournalFree) {
  auto& f = fixture();
  ServeCounters crashed;
  {
    Server server(f.source, journaled_config(dir));
    server.open_journal();
    server.run(phase1());
    server.snapshot_now();  // What SIGTERM's graceful drain does.
    crashed = server.counters();
  }
  Server restored(f.source, journaled_config(dir));
  const RecoveryReport report = restored.recover();
  EXPECT_TRUE(report.clean()) << report.str();
  EXPECT_TRUE(report.snapshot_loaded);
  EXPECT_EQ(report.records_replayed, 0u);  // Everything was in the snapshot.
  EXPECT_EQ(restored.counters().requests, crashed.requests);
  EXPECT_EQ(report.personalized, 2u);
}

}  // namespace
}  // namespace clear::serve
