#include "features/feature_map.hpp"

#include "features/bvp_features.hpp"
#include "features/gsr_features.hpp"
#include "features/skt_features.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace clear::features {
namespace {

PhysioWindow make_window(std::uint64_t seed) {
  Rng rng(seed);
  PhysioWindow w;
  w.bvp_rate = 64.0;
  w.gsr_rate = 8.0;
  w.skt_rate = 4.0;
  w.bvp.resize(640);
  for (std::size_t i = 0; i < w.bvp.size(); ++i)
    w.bvp[i] = std::sin(2.0 * M_PI * 1.2 * i / 64.0) + rng.normal(0.0, 0.05);
  w.gsr.resize(80);
  for (auto& v : w.gsr) v = 5.0 + rng.normal(0.0, 0.1);
  w.skt.resize(40);
  for (auto& v : w.skt) v = 33.0 + rng.normal(0.0, 0.02);
  return w;
}

TEST(FeatureMap, TotalFeatureCountIs123) {
  EXPECT_EQ(kTotalFeatureCount, 123u);
  EXPECT_EQ(all_feature_names().size(), 123u);
  EXPECT_EQ(kGsrFeatureCount + kBvpFeatureCount + kSktFeatureCount, 123u);
}

TEST(FeatureMap, AllNamesUnique) {
  const auto& names = all_feature_names();
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST(FeatureMap, ExtractWindowProducesFiniteVector) {
  const auto f = extract_window_features(make_window(1));
  ASSERT_EQ(f.size(), kTotalFeatureCount);
  for (const double v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(FeatureMap, BlockOrderIsGsrBvpSkt) {
  const auto& names = all_feature_names();
  EXPECT_EQ(names.front().rfind("gsr_", 0), 0u);
  EXPECT_EQ(names[kGsrFeatureCount].rfind("bvp_", 0), 0u);
  EXPECT_EQ(names.back().rfind("skt_", 0), 0u);
}

TEST(FeatureMap, BuildMapShapeAndLayout) {
  std::vector<std::vector<double>> cols = {{1, 2, 3}, {4, 5, 6}};
  const Tensor m = build_feature_map(cols);
  EXPECT_EQ(m.extent(0), 3u);  // F rows.
  EXPECT_EQ(m.extent(1), 2u);  // W columns.
  EXPECT_EQ(m.at2(0, 0), 1.0f);
  EXPECT_EQ(m.at2(0, 1), 4.0f);
  EXPECT_EQ(m.at2(2, 1), 6.0f);
}

TEST(FeatureMap, BuildMapRejectsRaggedColumns) {
  EXPECT_THROW(build_feature_map({{1, 2}, {1, 2, 3}}), Error);
  EXPECT_THROW(build_feature_map({}), Error);
}

TEST(FeatureMap, MapMeanAveragesColumns) {
  const Tensor m = build_feature_map({{1, 2}, {3, 4}});
  const auto mean = feature_map_mean(m);
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 3.0);
}

TEST(Normalizer, ZeroMeanUnitVariance) {
  std::vector<std::vector<double>> data = {{1, 10}, {3, 30}, {5, 50}};
  FeatureNormalizer norm;
  norm.fit(data);
  EXPECT_TRUE(norm.fitted());
  std::vector<double> v = {3.0, 30.0};
  norm.apply(v);
  EXPECT_NEAR(v[0], 0.0, 1e-9);
  EXPECT_NEAR(v[1], 0.0, 1e-9);
  std::vector<double> hi = {5.0, 50.0};
  norm.apply(hi);
  EXPECT_NEAR(hi[0], std::sqrt(3.0 / 2.0), 1e-9);
}

TEST(Normalizer, ConstantFeatureDoesNotExplode) {
  std::vector<std::vector<double>> data = {{2.0}, {2.0}, {2.0}};
  FeatureNormalizer norm;
  norm.fit(data);
  std::vector<double> v = {7.0};
  norm.apply(v);
  EXPECT_NEAR(v[0], 5.0, 1e-9);  // (7 - 2) / 1 (std floor).
}

TEST(Normalizer, FitMapsUsesEveryColumn) {
  const Tensor m1 = build_feature_map({{0.0}, {10.0}});
  const Tensor m2 = build_feature_map({{20.0}, {30.0}});
  FeatureNormalizer norm;
  norm.fit_maps({m1, m2});
  EXPECT_DOUBLE_EQ(norm.mean()[0], 15.0);
}

TEST(Normalizer, ApplyMapNormalizesInPlace) {
  Tensor m = build_feature_map({{0.0}, {2.0}});
  FeatureNormalizer norm;
  norm.fit({{0.0}, {2.0}});
  norm.apply_map(m);
  EXPECT_NEAR(m.at2(0, 0), -1.0, 1e-6);
  EXPECT_NEAR(m.at2(0, 1), 1.0, 1e-6);
}

TEST(Normalizer, DimensionMismatchThrows) {
  FeatureNormalizer norm;
  norm.fit({{1.0, 2.0}});
  std::vector<double> v = {1.0};
  EXPECT_THROW(norm.apply(v), Error);
  FeatureNormalizer unfitted;
  EXPECT_THROW(unfitted.apply(v), Error);
}

TEST(FeatureMap, DifferentSignalsGiveDifferentFeatures) {
  const auto f1 = extract_window_features(make_window(1));
  const auto f2 = extract_window_features(make_window(99));
  std::size_t differing = 0;
  for (std::size_t i = 0; i < f1.size(); ++i)
    if (std::abs(f1[i] - f2[i]) > 1e-12) ++differing;
  EXPECT_GT(differing, 40u);
}

}  // namespace
}  // namespace clear::features
