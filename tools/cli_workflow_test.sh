#!/bin/sh
# End-to-end workflow test for clear-cli: generate -> train -> info ->
# assign -> evaluate -> personalize on a tiny synthetic population.
# Usage: cli_workflow_test.sh <path-to-clear-cli>
set -eu

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

COMMON="--volunteers=8 --trials=5 --epochs=2 --seed=7 --cache-dir=cache"

"$CLI" generate $COMMON | grep -q "volunteers: 8"
"$CLI" train --artifacts=art $COMMON | grep -q "artifacts written"
test -f art/pipeline.meta
test -f art/cluster_0.ckpt
"$CLI" info --artifacts=art | grep -q "clusters: 4"
"$CLI" assign --artifacts=art $COMMON --user=7 | grep -q "assigned"
"$CLI" evaluate --artifacts=art $COMMON --user=7 | grep -q "cluster"
"$CLI" personalize --artifacts=art $COMMON --user=7 | grep -q "after fine-tuning"

# Error paths: unknown command and missing artifacts must fail cleanly.
if "$CLI" frobnicate 2>/dev/null; then exit 1; fi
if "$CLI" info --artifacts=/nonexistent 2>/dev/null; then exit 1; fi

echo "cli workflow OK"
