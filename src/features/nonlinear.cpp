#include "features/nonlinear.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.hpp"

namespace clear::features {

namespace {

/// Count template matches of length m within tolerance r (Chebyshev metric)
/// over the first `n` templates. Counts unordered pairs i < j.
std::size_t count_matches(std::span<const double> x, std::size_t m, double r,
                          std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      bool match = true;
      for (std::size_t k = 0; k < m; ++k) {
        if (std::abs(x[i + k] - x[j + k]) > r) {
          match = false;
          break;
        }
      }
      if (match) ++count;
    }
  }
  return count;
}

}  // namespace

double sample_entropy(std::span<const double> x, std::size_t m, double r) {
  if (x.size() < m + 2 || r <= 0) return 0.0;
  // Standard SampEn: both template lengths use the same N - m templates, so
  // a perfectly regular series yields A == B and entropy 0.
  const std::size_t n_templates = x.size() - m;
  const auto b = static_cast<double>(count_matches(x, m, r, n_templates));
  const auto a = static_cast<double>(count_matches(x, m + 1, r, n_templates));
  if (a <= 0 || b <= 0) return 0.0;
  return -std::log(a / b);
}

double approximate_entropy(std::span<const double> x, std::size_t m,
                           double r) {
  if (x.size() < m + 2 || r <= 0) return 0.0;
  auto phi = [&](std::size_t mm) {
    const std::size_t n = x.size() - mm + 1;
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t count = 0;
      for (std::size_t j = 0; j < n; ++j) {
        bool match = true;
        for (std::size_t k = 0; k < mm; ++k) {
          if (std::abs(x[i + k] - x[j + k]) > r) {
            match = false;
            break;
          }
        }
        if (match) ++count;  // Includes self-match, per ApEn definition.
      }
      total += std::log(static_cast<double>(count) / static_cast<double>(n));
    }
    return total / static_cast<double>(n);
  };
  return phi(m) - phi(m + 1);
}

double dfa_alpha1(std::span<const double> x) {
  const std::size_t n = x.size();
  if (n < 16) return 0.0;
  // Integrated, mean-removed profile.
  const double m = stats::mean(x);
  std::vector<double> profile(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += x[i] - m;
    profile[i] = acc;
  }
  std::vector<double> log_s;
  std::vector<double> log_f;
  const std::size_t max_box = std::min<std::size_t>(16, n / 4);
  for (std::size_t box = 4; box <= max_box; ++box) {
    const std::size_t nboxes = n / box;
    if (nboxes < 2) break;
    double fsum = 0.0;
    for (std::size_t b = 0; b < nboxes; ++b) {
      const std::span<const double> seg(profile.data() + b * box, box);
      // Residual variance around the least-squares line in this box.
      const double slope = stats::slope(seg);
      const double mean_seg = stats::mean(seg);
      const double mx = static_cast<double>(box - 1) / 2.0;
      double rss = 0.0;
      for (std::size_t i = 0; i < box; ++i) {
        const double fit = mean_seg + slope * (static_cast<double>(i) - mx);
        rss += (seg[i] - fit) * (seg[i] - fit);
      }
      fsum += rss / static_cast<double>(box);
    }
    const double f = std::sqrt(fsum / static_cast<double>(nboxes));
    if (f <= 1e-12) continue;
    log_s.push_back(std::log(static_cast<double>(box)));
    log_f.push_back(std::log(f));
  }
  if (log_s.size() < 2) return 0.0;
  // Slope of log F vs log s.
  const double ms = stats::mean(log_s);
  const double mf = stats::mean(log_f);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < log_s.size(); ++i) {
    num += (log_s[i] - ms) * (log_f[i] - mf);
    den += (log_s[i] - ms) * (log_s[i] - ms);
  }
  return den > 1e-12 ? num / den : 0.0;
}

Poincare poincare(std::span<const double> ibi) {
  Poincare p;
  if (ibi.size() < 3) return p;
  // SD1/SD2 from successive differences and total variance.
  const std::vector<double> d = stats::diff(ibi);
  const double var_d = stats::variance(d);
  const double var_x = stats::variance(ibi);
  p.sd1 = std::sqrt(var_d / 2.0);
  const double sd2_sq = 2.0 * var_x - var_d / 2.0;
  p.sd2 = sd2_sq > 0 ? std::sqrt(sd2_sq) : 0.0;
  if (p.sd2 > 1e-12) p.ratio = p.sd1 / p.sd2;
  p.ellipse_area = M_PI * p.sd1 * p.sd2;
  if (p.sd1 > 1e-12) p.csi = p.sd2 / p.sd1;
  const double prod = p.sd1 * p.sd2 * 16.0;
  p.cvi = prod > 1e-12 ? std::log10(prod) : 0.0;
  return p;
}

std::size_t higher_order_crossings(std::span<const double> x, std::size_t k) {
  std::vector<double> v(x.begin(), x.end());
  for (std::size_t i = 0; i < k; ++i) v = stats::diff(v);
  return stats::zero_crossings(v);
}

double recurrence_rate(std::span<const double> x, double r) {
  if (x.size() < 2 || r <= 0) return 0.0;
  std::size_t close = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t j = i + 1; j < x.size(); ++j) {
      ++total;
      if (std::abs(x[i] - x[j]) <= r) ++close;
    }
  }
  return total ? static_cast<double>(close) / static_cast<double>(total) : 0.0;
}

}  // namespace clear::features
