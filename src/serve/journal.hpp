// Write-ahead session journal + compacting snapshots (the durability layer
// behind CLEAR-Serve crash recovery).
//
// A serving gateway's most expensive artifact is a PERSONALIZED session —
// cold-start assignment plus an on-device fine-tune over many buffered
// windows — and before this layer existed a crash discarded every one of
// them. The journal records every *session-mutating event* (admission,
// window buffering, CA assignment, fine-tune completion with a checkpoint
// reference, degrade/recover transitions, sheds, predictions) as it
// happens; recovery (src/serve/recovery.cpp) replays snapshot + journal to
// rebuild every session bit-identically. Replay applies recorded outcomes —
// it never re-runs CA math or fine-tune training, so recovery is fast and
// exact.
//
// Disk layout under the journal directory:
//
//   journal.log       append-only WAL: 16-byte header (magic "CLRWAL02" +
//                     version), then CRC-framed records
//                     `[u32 len][u32 crc][payload]` with monotonically
//                     increasing sequence numbers. v1 logs are still read.
//   snapshot.snap     atomic (temp + rename) image of the whole session
//                     table, CRC-checked, stamped with the last journal
//                     sequence number it folds in.
//   user_<id>.ckpt    one fine-tuned model checkpoint per PERSONALIZED
//                     user, in the nn CRC-v2 checkpoint format, written
//                     atomically *before* its kFinetune journal record.
//
// Crash-consistency argument: records are flushed with one write() each, so
// anything acknowledged to a client is durable against SIGKILL (an fsync
// knob extends that to machine crashes). Compaction writes the snapshot
// first and truncates the log second; a crash in between leaves a snapshot
// plus stale records, which replay skips by sequence number. A torn final
// record fails its CRC and is dropped — by construction it can only be the
// tail, and its session-level effect was never acknowledged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/session.hpp"

namespace clear::serve {

/// On-disk format version this build writes ("CLRWAL02"/"CLRSNP02"); readers
/// accept kJournalMinFormatVersion through this and refuse anything newer at
/// the header (see JournalReadResult::header_error).
inline constexpr std::uint64_t kJournalFormatVersion = 2;
inline constexpr std::uint64_t kJournalMinFormatVersion = 1;

struct JournalConfig {
  /// Journal directory; empty disables journaling entirely.
  std::string directory;
  /// Records appended between automatic compacting snapshots; 0 disables
  /// auto-compaction (snapshots still happen on graceful shutdown).
  std::size_t snapshot_every = 1024;
  /// fsync the log after every record: survives machine crashes, not just
  /// process kills. Off by default — write() alone survives SIGKILL.
  bool fsync = false;
};

/// One session-mutating event. Replay applies the recorded outcome with the
/// same Session mutators the live path used, in the same order.
enum class RecordType : std::uint8_t {
  /// Read-side sentinel for a CRC-intact record whose kind this reader does
  /// not know (written by a newer format). Never written; recovery
  /// quarantines the session the record names instead of distrusting the
  /// whole journal. raw_kind/file_offset carry the diagnostics.
  kUnknown = 0,
  kRequest = 1,        ///< Admission + quality tick (may degrade/recover).
  kObservation = 2,    ///< Unlabeled window buffered for CA.
  kAssign = 3,         ///< CA verdict: session -> cluster.
  kLabelled = 4,       ///< Labelled map buffered for fine-tuning.
  kFinetune = 5,       ///< Fine-tune completed; user_<id>.ckpt references.
  kFinetuneAbort = 6,  ///< Fine-tune failed; retries disabled.
  kShed = 7,           ///< Admission-control shed (see the shed_* flags).
  kPredict = 8,        ///< One completed prediction.
  // Online adaptation (format v2, "CLRWAL02"):
  kDriftTick = 9,      ///< One monitored window's drift verdict.
  kReassessObs = 10,   ///< Window buffered for re-assessment.
  kReassign = 11,      ///< Re-assessment CA verdict (candidate cluster).
  kShadowTick = 12,    ///< One shadow window scored (candidate won/lost).
  kPromote = 13,       ///< Shadow won; candidate becomes the assignment.
  kDemote = 14,        ///< Shadow lost; back to the incumbent state.
};

const char* record_type_name(RecordType t);

/// One journal record (a tagged union kept flat for simplicity; unused
/// fields stay at their defaults and cost a few bytes on disk at most).
struct JournalRecord {
  std::uint64_t seq = 0;  ///< Assigned by Journal::append.
  RecordType type = RecordType::kRequest;
  std::uint64_t user_id = 0;
  std::uint64_t time_us = 0;     ///< Arrival (kRequest) / exec (kPredict).
  double quality = 1.0;          ///< Effective quality (kRequest).
  cluster::Point point;          ///< kObservation.
  std::uint64_t cluster = 0;     ///< kAssign.
  Tensor map;                    ///< Normalized labelled map (kLabelled).
  std::int32_t label = 0;        ///< kLabelled.
  std::uint64_t ckpt_bytes = 0;  ///< Checkpoint size (kFinetune).
  std::uint32_t ckpt_crc = 0;    ///< Checkpoint CRC-32 (kFinetune).
  /// kShed: the shed was charged to a live session (++session->shed).
  bool shed_charged = false;
  /// kShed: the request was turned away before admission journaled its
  /// kRequest record (session table full), so replay counts the request
  /// here — without this the recovered requests/shed counters drift.
  bool shed_unadmitted = false;
  bool drifting = false;    ///< kDriftTick: this window counted as drifting.
  bool shadow_won = false;  ///< kShadowTick: the candidate won this window.
  // Read-side diagnostics (never serialized):
  std::uint64_t raw_kind = 0;     ///< On-disk kind byte (kUnknown records).
  std::uint64_t file_offset = 0;  ///< Frame offset of this record in the log.
};

/// The deterministic run counters a snapshot persists (the per-process
/// batching stats — batches/rows/max_batch — restart at zero on recovery).
struct SnapshotCounters {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t assignments = 0;
  std::uint64_t finetunes = 0;
  std::uint64_t finetune_failures = 0;
  std::uint64_t sanitized = 0;
  std::uint64_t degraded = 0;
  std::uint64_t recovered = 0;
  // Online adaptation (format v2; zero when read from a v1 snapshot).
  std::uint64_t drift_ticks = 0;
  std::uint64_t drift_detected = 0;
  std::uint64_t reassessments = 0;
  std::uint64_t drift_false_alarms = 0;
  std::uint64_t shadow_ticks = 0;
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
};

/// A full image of the session table at one journal position.
struct SnapshotData {
  /// Last journal sequence number folded into this snapshot; replay skips
  /// records at or below it.
  std::uint64_t last_seq = 0;
  std::uint64_t last_arrival_us = 0;  ///< Virtual-clock high-water mark.
  SnapshotCounters counters;
  std::vector<SessionImage> sessions;  ///< In user-id order.
};

// -- Paths ------------------------------------------------------------------

std::string journal_log_path(const std::string& directory);
std::string snapshot_path(const std::string& directory);
std::string user_checkpoint_path(const std::string& directory,
                                 std::uint64_t user_id);

/// True when the directory already holds journal state (a journal.log or a
/// snapshot.snap) — i.e. opening fresh would destroy a recoverable run.
bool journal_state_exists(const std::string& directory);

// -- Writer -----------------------------------------------------------------

class Journal {
 public:
  /// Creates the directory if needed and opens journal.log *truncated*
  /// (callers recover first; see Server::open_journal's existing-state
  /// guard). `first_seq` continues a recovered run's numbering.
  explicit Journal(JournalConfig config, std::uint64_t first_seq = 1);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Append one record (assigning it the next sequence number) and flush it
  /// to the OS with a single write(). Returns bytes appended. Throws
  /// clear::Error on real or injected IO failure; the torn-write fault
  /// persists a byte prefix first, exactly like a crash mid-write.
  std::size_t append(JournalRecord record);

  /// Compaction: atomically replace snapshot.snap with `data`, then
  /// truncate journal.log back to its header. Crash-safe in that order —
  /// stale records left by a crash between the two steps are skipped by
  /// sequence number on replay.
  void write_snapshot(const SnapshotData& data);

  /// True once `snapshot_every` records accumulated since the last
  /// compaction.
  bool due_for_snapshot() const;

  std::uint64_t next_seq() const { return next_seq_; }
  std::uint64_t records_appended() const { return records_; }
  std::uint64_t bytes_appended() const { return bytes_; }
  const JournalConfig& config() const { return config_; }

 private:
  void open_truncated();

  JournalConfig config_;
  int fd_ = -1;
  std::uint64_t next_seq_ = 1;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t since_snapshot_ = 0;
};

// -- Read side (recovery and tests) -----------------------------------------

struct JournalReadResult {
  std::vector<JournalRecord> records;  ///< Every intact record, in order.
  /// Bytes discarded at the end of the log: a torn final write, a corrupt
  /// record (CRC mismatch), or — when the header itself is bad — the whole
  /// file. Recovery reports these; nothing after the first bad byte is
  /// trusted.
  std::uint64_t tail_bytes_dropped = 0;
  bool missing = false;  ///< No journal.log at all (a fresh directory).
  /// Non-empty when the header names a format version this reader does not
  /// support (newer than v2): the whole file is untrusted, exactly how a
  /// pre-v2 reader fails cleanly on a v2 journal. Distinct from kUnknown
  /// records, which quarantine one session inside a *supported* version.
  std::string header_error;
};

/// Read every intact record. Never throws for corruption — a damaged tail
/// is an expected crash artifact, reported in the result instead. Accepts
/// format v1 ("CLRWAL01") and v2 ("CLRWAL02") logs; CRC-intact records with
/// an unrecognized kind come back as RecordType::kUnknown (raw_kind +
/// file_offset set) and reading continues past them.
JournalReadResult read_journal(const std::string& directory);

/// nullopt when snapshot.snap does not exist; throws clear::Error when it
/// exists but fails validation (the caller decides whether to continue
/// journal-only). Accepts format v1 ("CLRSNP01") and v2 ("CLRSNP02")
/// snapshots; v1 leaves the adaptation counters/state zero/idle.
std::optional<SnapshotData> read_snapshot(const std::string& directory);

/// Atomically write a snapshot file without a Journal instance (recovery
/// persists its restored state this way *before* truncating the log).
void write_snapshot_file(const std::string& directory,
                         const SnapshotData& data, bool do_fsync);

/// Atomically write one user's fine-tuned checkpoint blob (nn CRC-v2
/// format; the blob carries its own CRC).
void write_user_checkpoint(const std::string& directory,
                           std::uint64_t user_id, const std::string& blob,
                           bool do_fsync);

/// The stored blob, or an empty string when absent.
std::string read_user_checkpoint(const std::string& directory,
                                 std::uint64_t user_id);

// -- Session-image codec (shard migration) ----------------------------------

/// Serialize one session image in the current snapshot format (the exact
/// bytes a snapshot embeds per session). This is the payload a shard
/// migration moves over the wire; the carrier frame supplies CRC framing,
/// like the snapshot file does on disk.
std::string encode_session_image(const SessionImage& image);

/// Parse encode_session_image bytes. Throws clear::Error on truncated or
/// trailing input — migration carriers are CRC-checked, so damage here is a
/// protocol bug, not line noise.
SessionImage decode_session_image(const std::string& bytes);

}  // namespace clear::serve
