// Real-time streaming detector (paper §I: "real-time detection when new
// users are introduced to the system").
//
// The offline pipeline consumes whole trials; a deployed wearable instead
// produces samples continuously. StreamingDetector buffers the three raw
// channels, cuts a feature window whenever `window_seconds` of every channel
// has accumulated, maintains a rolling feature map of the last W windows,
// and emits a fear probability from the deployed model each time the map is
// full — i.e. one detection per window period after a W-window warm-up,
// exactly what an edge device would surface to the application layer.
//
// Self-healing: real wearable streams drop out and glitch. Every incoming
// sample is sanitized — non-finite values are gap-filled (hold-last or
// linear interpolation, configurable) and out-of-range values clamped to
// the per-channel limits — and every repair is tracked per channel. Each
// Detection carries a SignalQuality report over the samples that produced
// its map, so callers gate on confidence instead of consuming garbage
// probabilities. A clean in-range stream passes through bit-identically.
#pragma once

#include <deque>
#include <limits>
#include <optional>

#include "common/fault.hpp"
#include "features/feature_map.hpp"
#include "nn/sequential.hpp"

namespace clear::core {

/// Physically plausible range of one channel; samples outside are clamped.
/// The defaults accept everything (no clamping).
struct ChannelLimits {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
};

struct StreamingConfig {
  double window_seconds = 10.0;  ///< Analysis window length.
  std::size_t map_windows = 12;  ///< W — columns per classified map.
  double bvp_hz = 64.0;
  double gsr_hz = 8.0;
  double skt_hz = 4.0;

  /// How non-finite samples are repaired. kHoldLast repairs immediately;
  /// kLinearInterp withholds the gap until the next good sample arrives
  /// (mid-gap samples count as "not yet delivered").
  fault::GapFill gap_fill = fault::GapFill::kHoldLast;
  ChannelLimits bvp_limits;
  ChannelLimits gsr_limits;
  ChannelLimits skt_limits;
  /// A detection is flagged degraded when the repaired-sample fraction of
  /// its map exceeds this (0 = any repair degrades).
  double degraded_threshold = 0.0;

  /// Throws clear::Error with an addressed message on the first invalid
  /// field: non-positive/non-finite window length or sample rates,
  /// map_windows == 0, inverted (lo > hi) channel limits, or a
  /// degraded_threshold outside [0, 1]. Called by StreamingDetector's
  /// constructor, so a misconfigured detector fails loudly instead of
  /// emitting nonsense detections.
  void validate() const;
};

/// Repair counters for one channel over some span of samples.
struct ChannelQuality {
  std::size_t total = 0;    ///< Samples delivered.
  std::size_t filled = 0;   ///< Gap-filled (were non-finite).
  std::size_t clamped = 0;  ///< Clamped into the channel limits.

  std::size_t repaired() const { return filled + clamped; }
  double ok_fraction() const {
    return total == 0 ? 1.0
                      : 1.0 - static_cast<double>(repaired()) /
                                  static_cast<double>(total);
  }
  void merge(const ChannelQuality& o) {
    total += o.total;
    filled += o.filled;
    clamped += o.clamped;
  }
};

/// Signal-quality report across the three channels.
struct SignalQuality {
  ChannelQuality bvp;
  ChannelQuality gsr;
  ChannelQuality skt;

  std::size_t total() const { return bvp.total + gsr.total + skt.total; }
  std::size_t repaired() const {
    return bvp.repaired() + gsr.repaired() + skt.repaired();
  }
  double ok_fraction() const {
    return total() == 0 ? 1.0
                        : 1.0 - static_cast<double>(repaired()) /
                                    static_cast<double>(total());
  }
  void merge(const SignalQuality& o) {
    bvp.merge(o.bvp);
    gsr.merge(o.gsr);
    skt.merge(o.skt);
  }
};

struct Detection {
  double fear_probability = 0.0;
  std::size_t window_index = 0;  ///< Index of the newest window in the map.
  SignalQuality quality;         ///< Over the samples behind this map.
  bool degraded = false;         ///< Repair fraction above the threshold.
};

class StreamingDetector {
 public:
  /// The detector borrows the model (the deployed cluster checkpoint; must
  /// outlive the detector) and copies the normalizer.
  StreamingDetector(nn::Sequential& model,
                    features::FeatureNormalizer normalizer,
                    const StreamingConfig& config);

  /// Feed raw samples (any chunk size, any interleaving across channels).
  /// Non-finite and out-of-range samples are repaired, never consumed raw.
  void push_bvp(std::span<const double> samples);
  void push_gsr(std::span<const double> samples);
  void push_skt(std::span<const double> samples);

  /// Extract any newly completed windows and, once W windows are buffered,
  /// return a detection for the newest window. Returns std::nullopt while
  /// warming up or when no new window completed since the last poll.
  std::optional<Detection> poll();

  /// Windows extracted so far.
  std::size_t windows_seen() const { return windows_seen_; }
  /// True once enough windows are buffered to classify.
  bool warmed_up() const { return columns_.size() >= config_.map_windows; }
  /// Cumulative per-channel repair counters since construction.
  const SignalQuality& health() const { return health_; }

 private:
  /// One buffered channel plus its sanitizer state.
  struct Channel {
    std::deque<double> samples;
    std::deque<std::uint8_t> flags;  ///< 0 = ok, 1 = filled, 2 = clamped.
    double last_good = 0.0;
    bool has_good = false;
    std::size_t pending_gap = 0;  ///< Interp-mode NaNs awaiting a good sample.
  };

  void push_channel(Channel& ch, ChannelQuality& health,
                    const ChannelLimits& limits,
                    std::span<const double> samples);
  static ChannelQuality take_window(Channel& ch, std::size_t n,
                                    std::vector<double>& out);
  bool window_ready() const;
  void extract_one_window();

  nn::Sequential& model_;
  features::FeatureNormalizer normalizer_;
  StreamingConfig config_;
  std::size_t bvp_per_window_;
  std::size_t gsr_per_window_;
  std::size_t skt_per_window_;

  Channel bvp_;
  Channel gsr_;
  Channel skt_;
  SignalQuality health_;
  std::deque<std::vector<double>> columns_;  ///< Normalized feature columns.
  std::deque<SignalQuality> column_quality_;  ///< Per-window repair report.
  std::size_t windows_seen_ = 0;
  bool pending_detection_ = false;
};

}  // namespace clear::core
