#include "signal/peaks.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace clear::dsp {
namespace {

TEST(Peaks, FindsSimpleMaxima) {
  const std::vector<double> x = {0, 1, 0, 2, 0, 3, 0};
  const auto peaks = find_peaks(x, {});
  ASSERT_EQ(peaks.size(), 3u);
  EXPECT_EQ(peaks[0].index, 1u);
  EXPECT_EQ(peaks[1].index, 3u);
  EXPECT_EQ(peaks[2].index, 5u);
  EXPECT_DOUBLE_EQ(peaks[2].height, 3.0);
}

TEST(Peaks, NoPeaksInMonotone) {
  const std::vector<double> x = {0, 1, 2, 3, 4};
  EXPECT_TRUE(find_peaks(x, {}).empty());
}

TEST(Peaks, EdgesAreNotPeaks) {
  const std::vector<double> x = {5, 1, 1, 1, 5};
  EXPECT_TRUE(find_peaks(x, {}).empty());
}

TEST(Peaks, PlateauYieldsSinglePeak) {
  const std::vector<double> x = {0, 2, 2, 2, 0};
  const auto peaks = find_peaks(x, {});
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 2u);  // Centre of the plateau.
}

TEST(Peaks, MinHeightFilters) {
  const std::vector<double> x = {0, 1, 0, 5, 0};
  PeakOptions opt;
  opt.min_height = 2.0;
  const auto peaks = find_peaks(x, opt);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 3u);
}

TEST(Peaks, ProminenceOfNestedPeaks) {
  // Small bump riding on the shoulder of a big peak.
  const std::vector<double> x = {0, 10, 8, 8.5, 8, 0};
  const auto peaks = find_peaks(x, {});
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_DOUBLE_EQ(peaks[0].prominence, 10.0);
  EXPECT_DOUBLE_EQ(peaks[1].prominence, 0.5);
}

TEST(Peaks, MinProminenceFilters) {
  const std::vector<double> x = {0, 10, 8, 8.5, 8, 0};
  PeakOptions opt;
  opt.min_prominence = 1.0;
  const auto peaks = find_peaks(x, opt);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 1u);
}

TEST(Peaks, MinDistanceKeepsHigher) {
  const std::vector<double> x = {0, 3, 0, 5, 0};
  PeakOptions opt;
  opt.min_distance = 4;
  const auto peaks = find_peaks(x, opt);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 3u);
}

TEST(Peaks, MinDistanceZeroRejected) {
  PeakOptions opt;
  opt.min_distance = 0;
  EXPECT_THROW(find_peaks(std::vector<double>{0, 1, 0}, opt), Error);
}

TEST(Peaks, RecoversBeatRateOfSyntheticPulse) {
  // 1.2 Hz pulse train at 64 Hz sampling -> IBI of ~0.833 s.
  const double fs = 64.0;
  const double hr_hz = 1.2;
  std::vector<double> x(static_cast<std::size_t>(20 * fs));
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double phase = std::fmod(hr_hz * i / fs, 1.0);
    x[i] = std::exp(-std::pow((phase - 0.3) / 0.08, 2.0));
  }
  PeakOptions opt;
  opt.min_prominence = 0.3;
  opt.min_distance = static_cast<std::size_t>(fs / 3.0);
  const auto peaks = find_peaks(x, opt);
  const auto ibi = peak_intervals(peaks, fs);
  ASSERT_GT(ibi.size(), 15u);
  for (const double v : ibi) EXPECT_NEAR(v, 1.0 / hr_hz, 0.03);
}

TEST(Peaks, PeakIntervalsRequirePositiveRate) {
  EXPECT_THROW(peak_intervals({}, 0.0), Error);
  EXPECT_TRUE(peak_intervals({}, 64.0).empty());
}

}  // namespace
}  // namespace clear::dsp
