#include "tensor/serialize.hpp"

#include <cstring>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace clear::io {

namespace {
constexpr std::uint32_t kMagic = 0x43545352;  // 'CTSR'
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_raw(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
  CLEAR_CHECK_MSG(os.good(), "IO error writing tensor stream");
}

template <typename T>
T read_raw(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  CLEAR_CHECK_MSG(is.good(), "IO error / truncated tensor stream");
  return v;
}
}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
  write_raw(os, kMagic);
  write_raw(os, kVersion);
  write_raw<std::uint64_t>(os, t.rank());
  for (std::size_t d = 0; d < t.rank(); ++d)
    write_raw<std::uint64_t>(os, t.extent(d));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
  CLEAR_CHECK_MSG(os.good(), "IO error writing tensor data");
}

Tensor read_tensor(std::istream& is) {
  const auto magic = read_raw<std::uint32_t>(is);
  CLEAR_CHECK_MSG(magic == kMagic, "bad tensor magic");
  const auto version = read_raw<std::uint32_t>(is);
  CLEAR_CHECK_MSG(version == kVersion, "unsupported tensor version");
  const auto rank = read_raw<std::uint64_t>(is);
  CLEAR_CHECK_MSG(rank <= 8, "implausible tensor rank");
  std::vector<std::size_t> shape(rank);
  std::size_t numel = rank == 0 ? 0 : 1;
  for (auto& e : shape) {
    e = static_cast<std::size_t>(read_raw<std::uint64_t>(is));
    CLEAR_CHECK_MSG(e > 0 && e < (1ull << 32), "implausible tensor extent");
    numel *= e;
  }
  std::vector<float> data(numel);
  is.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(numel * sizeof(float)));
  CLEAR_CHECK_MSG(is.good(), "IO error / truncated tensor data");
  return Tensor(std::move(shape), std::move(data));
}

void write_string(std::ostream& os, const std::string& s) {
  write_raw<std::uint64_t>(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
  CLEAR_CHECK_MSG(os.good(), "IO error writing string");
}

std::string read_string(std::istream& is) {
  const auto n = read_raw<std::uint64_t>(is);
  CLEAR_CHECK_MSG(n < (1ull << 24), "implausible string length");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  CLEAR_CHECK_MSG(is.good(), "IO error / truncated string");
  return s;
}

void write_u64(std::ostream& os, std::uint64_t v) { write_raw(os, v); }
std::uint64_t read_u64(std::istream& is) { return read_raw<std::uint64_t>(is); }
void write_f64(std::ostream& os, double v) { write_raw(os, v); }
double read_f64(std::istream& is) { return read_raw<double>(is); }

}  // namespace clear::io
