#include "wemac/stimulus.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace clear::wemac {

const std::string& emotion_name(Emotion e) {
  static const std::vector<std::string> names = {
      "fear",    "joy",      "hope", "sadness",   "anger",
      "disgust", "surprise", "calm", "amusement", "tenderness",
  };
  const auto idx = static_cast<std::size_t>(e);
  CLEAR_CHECK_MSG(idx < names.size(), "invalid emotion value");
  return names[idx];
}

bool is_fear(Emotion e) { return e == Emotion::kFear; }

double emotion_arousal(Emotion e) {
  switch (e) {
    case Emotion::kFear: return 1.00;
    case Emotion::kAnger: return 0.80;
    case Emotion::kSurprise: return 0.70;
    case Emotion::kJoy: return 0.60;
    case Emotion::kAmusement: return 0.55;
    case Emotion::kDisgust: return 0.50;
    case Emotion::kHope: return 0.40;
    case Emotion::kSadness: return 0.30;
    case Emotion::kTenderness: return 0.25;
    case Emotion::kCalm: return 0.10;
  }
  return 0.0;
}

std::vector<Stimulus> make_schedule(std::size_t n_trials, double fear_fraction,
                                    double trial_seconds, Rng& rng) {
  CLEAR_CHECK_MSG(n_trials >= 2, "schedule needs at least 2 trials");
  CLEAR_CHECK_MSG(fear_fraction > 0.0 && fear_fraction < 1.0,
                  "fear_fraction must lie in (0, 1)");
  CLEAR_CHECK_MSG(trial_seconds > 0, "trial_seconds must be positive");

  const auto n_fear = std::max<std::size_t>(
      1, static_cast<std::size_t>(fear_fraction * static_cast<double>(n_trials) +
                                  0.5));
  std::vector<Stimulus> schedule(n_trials);
  for (std::size_t i = 0; i < n_trials; ++i) {
    Stimulus s;
    s.duration_s = trial_seconds;
    if (i < n_fear) {
      s.emotion = Emotion::kFear;
    } else {
      // Uniform over the nine non-fear emotions.
      const auto pick = 1 + rng.uniform_index(kNumEmotions - 1);
      s.emotion = static_cast<Emotion>(pick);
    }
    schedule[i] = s;
  }
  // Shuffle presentation order.
  const std::vector<std::size_t> perm = rng.permutation(n_trials);
  std::vector<Stimulus> shuffled(n_trials);
  for (std::size_t i = 0; i < n_trials; ++i) shuffled[i] = schedule[perm[i]];
  return shuffled;
}

}  // namespace clear::wemac
