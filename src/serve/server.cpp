#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <sstream>

#include "clear/artifacts.hpp"
#include "cluster/assignment.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/logging.hpp"
#include "common/obs.hpp"
#include "common/parallel.hpp"
#include "edge/finetune.hpp"
#include "features/feature_map.hpp"
#include "nn/checkpoint.hpp"
#include "nn/model.hpp"
#include "serve/delta.hpp"
#include "tensor/ops.hpp"

namespace clear::serve {

namespace {

std::unique_ptr<nn::Sequential> model_from_blob(
    const nn::CnnLstmConfig& config, const std::string& blob) {
  Rng rng(1);  // Weights are overwritten by the checkpoint.
  auto model = nn::build_cnn_lstm(config, rng);
  std::istringstream is(blob, std::ios::binary);
  nn::load_checkpoint(is, *model);
  return model;
}

/// Gap-fill non-finite samples row by row (each feature's window series is
/// one stream, matching the device-side sanitizer). Returns the number of
/// samples repaired.
std::size_t sanitize_map(Tensor& map) {
  bool any_bad = false;
  for (const float v : map.flat())
    if (!std::isfinite(v)) {
      any_bad = true;
      break;
    }
  if (!any_bad) return 0;
  const std::size_t f = map.extent(0);
  const std::size_t w = map.extent(1);
  std::size_t filled = 0;
  std::vector<double> row(w);
  for (std::size_t i = 0; i < f; ++i) {
    bool row_bad = false;
    for (std::size_t j = 0; j < w; ++j) {
      row[j] = map.at2(i, j);
      row_bad = row_bad || !std::isfinite(row[j]);
    }
    if (!row_bad) continue;
    const fault::SanitizeStats stats =
        fault::sanitize(row, fault::GapFill::kHoldLast,
                        std::numeric_limits<double>::lowest(),
                        std::numeric_limits<double>::max());
    filled += stats.filled;
    for (std::size_t j = 0; j < w; ++j)
      map.at2(i, j) = static_cast<float>(row[j]);
  }
  return filled;
}

}  // namespace

ModelSource ModelSource::from_pipeline(core::ClearPipeline& pipeline) {
  CLEAR_CHECK_MSG(pipeline.fitted(), "serving requires a fitted pipeline");
  ModelSource source;
  source.config = pipeline.config();
  source.normalizer = pipeline.normalizer();
  source.clustering = pipeline.clustering();
  // Capture blobs eagerly: the source must outlive the pipeline.
  auto blobs = std::make_shared<std::vector<std::string>>();
  for (std::size_t k = 0; k < pipeline.n_clusters(); ++k)
    blobs->push_back(pipeline.serialize_cluster_model(k));
  auto general =
      std::make_shared<std::string>(pipeline.serialize_general_model());
  source.cluster_blob = [blobs](std::size_t k) {
    return k < blobs->size() ? (*blobs)[k] : std::string();
  };
  source.general_blob = [general]() { return *general; };
  return source;
}

ModelSource ModelSource::from_artifacts(const std::string& directory) {
  core::ArtifactMeta meta = core::load_artifact_meta(directory);
  ModelSource source;
  source.config = std::move(meta.config);
  source.normalizer = std::move(meta.normalizer);
  source.clustering = std::move(meta.clustering);
  // Blobs stream off disk on demand; the checkpoint cache bounds residency.
  source.cluster_blob = [directory](std::size_t k) {
    return core::read_cluster_checkpoint(directory, k);
  };
  source.general_blob = [directory]() {
    return core::read_general_checkpoint(directory);
  };
  return source;
}

Server::Server(ModelSource source, ServeConfig config)
    : source_(std::move(source)),
      config_(std::move(config)),
      batcher_(config_.batch),
      sessions_(config_.session, config_.precisions, config_.max_sessions),
      cache_(
          source_.cluster_blob, source_.general_blob,
          [this](const std::string& blob, edge::Precision p) {
            return build_engine(blob, p);
          },
          config_.cache_budget_bytes) {
  CLEAR_CHECK_MSG(source_.n_clusters() >= 1, "model source has no clusters");
  CLEAR_CHECK_MSG(source_.normalizer.fitted(),
                  "model source normalizer is not fitted");
  has_general_ = !source_.general_blob().empty();
  for (const Tensor& m : config_.calibration_maps)
    calibration_ptrs_.push_back(&m);
  for (const edge::Precision p : config_.precisions)
    CLEAR_CHECK_MSG(
        p != edge::Precision::kInt8 || !calibration_ptrs_.empty(),
        "serving at int8 requires calibration_maps");
}

std::unique_ptr<edge::EdgeEngine> Server::build_engine(
    const std::string& blob, edge::Precision precision) {
  // Delta-stored personal checkpoints reconstruct against their recorded
  // base before the model sees them; full/legacy blobs pass through. Any
  // decode failure throws an addressed clear::Error, which the callers
  // already treat exactly like a corrupt full checkpoint (cache fallback,
  // recovery quarantine, migration refusal).
  const std::string* payload = &blob;
  std::string decoded;
  if (delta::is_delta(blob)) {
    const delta::BaseRef ref = delta::base_of(blob);
    decoded = delta::decode(blob,
                            ref.kind == delta::BaseRef::Kind::kGeneral
                                ? source_.general_blob()
                                : source_.cluster_blob(ref.id));
    payload = &decoded;
    ++counters_.delta_loads;
    CLEAR_OBS_COUNT("serve.delta.loads", 1);
  }
  edge::EngineConfig ec;
  ec.precision = precision;
  auto engine = std::make_unique<edge::EdgeEngine>(
      model_from_blob(source_.config.model, *payload), ec);
  if (precision == edge::Precision::kInt8)
    engine->calibrate(calibration_ptrs_);
  return engine;
}

std::string Server::encode_personal_blob(std::uint64_t user_id,
                                         std::size_t cluster,
                                         const std::string& full_blob) {
  if (!config_.delta_checkpoints) return full_blob;
  delta::EncodeStats stats;
  std::optional<std::string> enc = delta::encode(
      source_.cluster_blob(cluster),
      delta::BaseRef{delta::BaseRef::Kind::kCluster, cluster}, full_blob,
      &stats);
  if (!enc && has_general_)
    enc = delta::encode(source_.general_blob(),
                        delta::BaseRef{delta::BaseRef::Kind::kGeneral, 0},
                        full_blob, &stats);
  if (!enc) {
    // Missing/corrupt base, mismatched shapes, or a delta that would not
    // be smaller: the full blob is always safe to store.
    ++counters_.delta_full_fallbacks;
    CLEAR_OBS_COUNT("serve.delta.full_fallbacks", 1);
    return full_blob;
  }
  ++counters_.delta_encoded;
  counters_.delta_bytes_saved += full_blob.size() - enc->size();
  CLEAR_OBS_COUNT("serve.delta.encoded", 1);
  CLEAR_OBS_COUNT("serve.delta.bytes_written", enc->size());
  CLEAR_OBS_COUNT("serve.delta.bytes_saved",
                  full_blob.size() - enc->size());
  return *enc;
}

BatchKey Server::route_for(const Session& session) const {
  BatchKey key;
  key.precision = session.precision();
  const bool cluster_ready = session.assigned() && !session.degraded();
  // RE_ASSESSING/SHADOWING serve the *incumbent* engine throughout: a
  // personalized user keeps their personal model until a promotion commits,
  // so adaptation is invisible to the user unless it wins.
  const bool personal_route =
      session.state() == SessionState::kPersonalized ||
      ((session.state() == SessionState::kReassessing ||
        session.state() == SessionState::kShadowing) &&
       session.has_personal_engine());
  if (personal_route) {
    key.kind = BatchKey::Kind::kPersonal;
    key.id = static_cast<std::size_t>(session.user_id());
  } else if (cluster_ready) {
    key.kind = BatchKey::Kind::kCluster;
    key.id = session.cluster();
  } else if (has_general_) {
    key.kind = BatchKey::Kind::kGeneral;
  } else {
    // No general model shipped: cold/degraded users ride cluster 0 (the
    // closest thing to a population prior available).
    key.kind = BatchKey::Kind::kCluster;
    key.id = 0;
  }
  return key;
}

void Server::shed(const ServeRequest& request, const BatchKey& route,
                  Session* session, const std::string& why, bool admitted) {
  ++counters_.shed;
  CLEAR_OBS_COUNT("serve.shed", 1);
  if (session) ++session->shed;
  ServeResult r;
  r.user_id = request.user_id;
  r.request_id = request.request_id;
  r.status = ServeResult::Status::kShed;
  r.error = why;
  r.route = route;
  if (session) {
    r.session_state = session->state();
    r.degraded = session->degraded();
  }
  r.arrival_us = request.arrival_us;
  r.exec_us = request.arrival_us;
  completed_.push_back(std::move(r));
  if (journal_) {
    JournalRecord rec;
    rec.type = RecordType::kShed;
    rec.user_id = request.user_id;
    rec.shed_charged = session != nullptr;
    rec.shed_unadmitted = !admitted;
    journal_append(std::move(rec));
  }
}

void Server::personalize(Session& session) {
  CLEAR_OBS_SPAN("serve.finetune");
  session.begin_finetune();
  const std::string blob = source_.cluster_blob(session.cluster());
  std::unique_ptr<edge::EdgeEngine> engine;
  try {
    engine = build_engine(blob, session.precision());
  } catch (const Error& e) {
    CLEAR_WARN("user " << session.user_id() << ": cluster "
                       << session.cluster() << " checkpoint unusable ("
                       << e.what() << "); trying the general fallback");
  }
  if (!engine && has_general_) {
    try {
      engine = build_engine(source_.general_blob(), session.precision());
    } catch (const Error& e) {
      CLEAR_WARN("user " << session.user_id()
                         << ": general checkpoint unusable (" << e.what()
                         << ")");
    }
  }
  if (!engine) {
    ++counters_.finetune_failures;
    session.abort_finetune();
    if (journal_) {
      JournalRecord rec;
      rec.type = RecordType::kFinetuneAbort;
      rec.user_id = session.user_id();
      journal_append(std::move(rec));
    }
    return;
  }

  nn::MapDataset data;
  for (const LabelledMap& m : session.labelled()) {
    data.maps.push_back(&m.map);
    data.labels.push_back(m.label > 0 ? 1 : 0);
  }
  edge::EdgeFinetuneConfig fc;
  fc.train = source_.config.finetune;
  fc.train.seed = source_.config.seed ^ 0x5EEDull ^
                  (session.user_id() * 0x9E3779B97F4A7C15ull);
  fc.freeze_boundary = nn::fine_tune_boundary();
  edge::edge_finetune(*engine, data, fc);
  // Activation statistics moved with the weights; re-calibrate int8.
  if (session.precision() == edge::Precision::kInt8)
    engine->calibrate(calibration_ptrs_);
  // Durability: checkpoint the fine-tuned weights *before* set_personal_
  // engine consumes them, and land the checkpoint on disk before the
  // kFinetune record that references it — recovery must never find a
  // record without its backing blob unless the write was torn.
  std::string ckpt_blob;
  if (journal_) {
    std::ostringstream os(std::ios::binary);
    nn::save_checkpoint(os, engine->model());
    ckpt_blob = encode_personal_blob(session.user_id(), session.cluster(),
                                     os.str());
  }
  session.set_personal_engine(std::move(engine));
  ++counters_.finetunes;
  CLEAR_OBS_COUNT("serve.finetunes", 1);
  if (journal_) {
    try {
      write_user_checkpoint(config_.journal.directory, session.user_id(),
                            ckpt_blob, config_.journal.fsync);
      ++counters_.journal_ckpts;
      CLEAR_OBS_COUNT("serve.journal.ckpts", 1);
    } catch (const Error& e) {
      journal_disable(e, "personal checkpoint write");
      return;
    }
    JournalRecord rec;
    rec.type = RecordType::kFinetune;
    rec.user_id = session.user_id();
    rec.ckpt_bytes = ckpt_blob.size();
    rec.ckpt_crc = crc32(ckpt_blob);
    journal_append(std::move(rec));
  }
}

void Server::drift_monitor(Session& session, const Tensor& normalized_map) {
  // Serial submit-path only: every score is a pure function of the request
  // stream, so drift decisions are bit-identical at any --threads setting.
  // With a single cluster there is nowhere to re-assign to.
  if (source_.n_clusters() < 2) return;
  const auto score_window = [&]() {
    return cluster::assign_new_user(
        {features::feature_map_mean(normalized_map)}, source_.clustering);
  };
  switch (session.state()) {
    case SessionState::kAssigned:
    case SessionState::kPersonalized: {
      const cluster::AssignmentResult scored = score_window();
      const double own = scored.scores[session.cluster()];
      double best_other = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < scored.scores.size(); ++c)
        if (c != session.cluster()) best_other = std::min(best_other,
                                                          scored.scores[c]);
      const bool drifting =
          own > config_.session.drift_ratio * best_other;
      ++counters_.drift_ticks;
      CLEAR_OBS_COUNT("serve.drift.ticks", 1);
      // The degenerate best_other == 0 ratio is exactly what the pinned
      // histogram bucket mapping exists for (+inf folds into the top
      // bucket; a 0/0 NaN lands in bucket 0).
      CLEAR_OBS_RECORD("serve.drift.score_ratio", own / best_other);
      if (journal_) {
        JournalRecord rec;
        rec.type = RecordType::kDriftTick;
        rec.user_id = session.user_id();
        rec.drifting = drifting;
        journal_append(std::move(rec));
      }
      if (session.drift_tick(drifting) == Session::DriftEvent::kTriggered) {
        ++counters_.drift_detected;
        ++drift_active_;
        CLEAR_OBS_COUNT("serve.drift.detected", 1);
      }
      break;
    }
    case SessionState::kReassessing: {
      cluster::Point observation = features::feature_map_mean(normalized_map);
      session.add_reassess_observation(observation);
      if (journal_) {
        JournalRecord rec;
        rec.type = RecordType::kReassessObs;
        rec.user_id = session.user_id();
        rec.point = std::move(observation);
        journal_append(std::move(rec));
      }
      if (session.reassess_ready()) {
        CLEAR_OBS_SPAN("serve.drift.reassess");
        const cluster::AssignmentResult verdict = cluster::assign_new_user(
            session.observations(), source_.clustering);
        ++counters_.reassessments;
        CLEAR_OBS_COUNT("serve.drift.reassessments", 1);
        if (journal_) {
          // As with cold-start CA, the *verdict* is journaled — replay
          // installs it without re-running cluster math.
          JournalRecord rec;
          rec.type = RecordType::kReassign;
          rec.user_id = session.user_id();
          rec.cluster = verdict.cluster;
          journal_append(std::move(rec));
        }
        if (!session.reassess_verdict(verdict.cluster)) {
          ++counters_.drift_false_alarms;
          --drift_active_;
          CLEAR_OBS_COUNT("serve.drift.false_alarms", 1);
        }
      }
      break;
    }
    case SessionState::kShadowing: {
      const cluster::AssignmentResult scored = score_window();
      const bool candidate_won =
          scored.scores[session.candidate_cluster()] <
          scored.scores[session.cluster()];
      ++counters_.shadow_ticks;
      CLEAR_OBS_COUNT("serve.drift.shadow_ticks", 1);
      if (journal_) {
        JournalRecord rec;
        rec.type = RecordType::kShadowTick;
        rec.user_id = session.user_id();
        rec.shadow_won = candidate_won;
        journal_append(std::move(rec));
      }
      session.shadow_tick(candidate_won);
      if (session.shadow_done()) {
        if (session.shadow_promotes()) {
          if (journal_) {
            JournalRecord rec;
            rec.type = RecordType::kPromote;
            rec.user_id = session.user_id();
            rec.cluster = session.candidate_cluster();
            journal_append(std::move(rec));
          }
          // Park the displaced personal engine: a pending personal batch
          // admitted before this promotion still executes on it.
          if (auto engine = session.release_personal_engine())
            retired_personal_[session.user_id()] = std::move(engine);
          session.promote_to_candidate();
          ++counters_.promotions;
          --drift_active_;
          CLEAR_OBS_COUNT("serve.drift.promotions", 1);
        } else {
          if (journal_) {
            JournalRecord rec;
            rec.type = RecordType::kDemote;
            rec.user_id = session.user_id();
            journal_append(std::move(rec));
          }
          session.demote_to_incumbent();
          ++counters_.demotions;
          --drift_active_;
          CLEAR_OBS_COUNT("serve.drift.demotions", 1);
        }
      }
      break;
    }
    default:
      break;
  }
  CLEAR_OBS_GAUGE("serve.drift.adapting", drift_active_);
}

void Server::submit(ServeRequest request) {
  CLEAR_CHECK_MSG(request.arrival_us >= last_arrival_us_,
                  "request arrivals must be nondecreasing ("
                      << request.arrival_us << " after " << last_arrival_us_
                      << ")");
  // Release due batches only when virtual time actually advances: a burst
  // sharing one timestamp piles into the queues (shedding when a bound is
  // hit) instead of being drained one sub-batch at a time — that is what
  // makes load-shedding observable and keeps batch composition a pure
  // function of the request stream.
  if (request.arrival_us > last_arrival_us_) flush_due(request.arrival_us);
  last_arrival_us_ = request.arrival_us;
  ++counters_.requests;
  CLEAR_OBS_COUNT("serve.requests", 1);

  Session* session = sessions_.get_or_create(request.user_id);
  if (!session) {
    std::ostringstream why;
    why << "session table full (" << sessions_.size() << " sessions)";
    shed(request, BatchKey{}, nullptr, why.str(), /*admitted=*/false);
    maybe_compact();
    return;
  }
  ++session->requests;
  if (session->requests == 1) session->first_arrival_us = request.arrival_us;

  CLEAR_CHECK_MSG(request.map.rank() == 2,
                  "request map must be [F, W], got "
                      << request.map.shape_str());

  // Device-side sanitization: gap-fill non-finite samples, then fold the
  // repair fraction into the upstream quality estimate.
  const std::size_t filled = sanitize_map(request.map);
  double quality = request.quality;
  if (filled > 0) {
    ++counters_.sanitized;
    CLEAR_OBS_COUNT("serve.sanitized", 1);
    const double repaired_fraction =
        static_cast<double>(filled) / static_cast<double>(request.map.numel());
    quality = std::min(quality, 1.0 - repaired_fraction);
  }
  source_.normalizer.apply_map(request.map);

  if (journal_) {
    // One kRequest record carries everything replay needs to repeat the
    // admission bookkeeping and the quality tick below.
    JournalRecord rec;
    rec.type = RecordType::kRequest;
    rec.user_id = request.user_id;
    rec.time_us = request.arrival_us;
    rec.quality = quality;
    journal_append(std::move(rec));
  }

  switch (session->note_quality(quality)) {
    case Session::QualityEvent::kDegraded:
      ++counters_.degraded;
      CLEAR_OBS_COUNT("serve.degraded", 1);
      break;
    case Session::QualityEvent::kRecovered:
      ++counters_.recovered;
      CLEAR_OBS_COUNT("serve.recovered", 1);
      break;
    case Session::QualityEvent::kNone:
      break;
  }

  if (!session->degraded()) {
    // Cold-start protocol: buffer unlabeled observations until CA can run.
    if (session->state() == SessionState::kCold ||
        session->state() == SessionState::kAssigning) {
      cluster::Point observation = features::feature_map_mean(request.map);
      session->add_observation(observation);
      if (journal_) {
        JournalRecord rec;
        rec.type = RecordType::kObservation;
        rec.user_id = request.user_id;
        rec.point = std::move(observation);
        journal_append(std::move(rec));
      }
      if (session->ca_ready()) {
        CLEAR_OBS_SPAN("serve.assign");
        const cluster::AssignmentResult assignment = cluster::assign_new_user(
            session->observations(), source_.clustering);
        session->set_assignment(assignment.cluster);
        ++counters_.assignments;
        CLEAR_OBS_COUNT("serve.assignments", 1);
        if (journal_) {
          // The CA *verdict* is journaled, not its inputs — replay installs
          // the assignment without re-running cluster math.
          JournalRecord rec;
          rec.type = RecordType::kAssign;
          rec.user_id = request.user_id;
          rec.cluster = assignment.cluster;
          journal_append(std::move(rec));
        }
      }
    }
    // Personalization: labelled requests accumulate until fine-tune fires.
    if (request.label.has_value() &&
        session->state() == SessionState::kAssigned) {
      session->add_labelled(request.map, *request.label);
      if (journal_) {
        JournalRecord rec;
        rec.type = RecordType::kLabelled;
        rec.user_id = request.user_id;
        rec.label = *request.label;
        rec.map = request.map;
        journal_append(std::move(rec));
      }
      if (session->ft_ready()) personalize(*session);
    }
    // Online adaptation: score the window against the clustering and drive
    // the RE_ASSESSING/SHADOWING machine. Runs after CA/FT so a session can
    // be monitored from the very window that assigned or personalized it.
    if (config_.session.drift_after > 0) drift_monitor(*session, request.map);
  }

  const BatchKey route = route_for(*session);
  const std::size_t slot = next_slot_++;
  const MicroBatcher::Admit admit =
      batcher_.admit(route, slot, request.arrival_us);
  if (admit != MicroBatcher::Admit::kQueued) {
    std::ostringstream why;
    if (admit == MicroBatcher::Admit::kQueueFull)
      why << "queue full for " << route.str() << " (capacity "
          << batcher_.policy().queue_capacity << ")";
    else
      why << "server overloaded (" << batcher_.pending()
          << " requests pending)";
    shed(request, route, session, why.str());
    maybe_compact();
    return;
  }
  pending_.emplace(slot, PendingRequest{std::move(request), route});
  CLEAR_OBS_GAUGE("serve.pending", batcher_.pending());
  CLEAR_OBS_GAUGE("serve.sessions", sessions_.size());
  maybe_compact();
}

void Server::flush_due(std::uint64_t now_us) {
  // pop_due releases at most one batch per key, so looping here both drains
  // every due batch and guarantees an engine never has two batches in the
  // same parallel region.
  for (;;) {
    std::vector<Batch> due = batcher_.pop_due(now_us);
    if (due.empty()) return;
    execute(std::move(due));
  }
}

void Server::drain() { flush_due(std::numeric_limits<std::uint64_t>::max()); }

void Server::execute(std::vector<Batch> batches) {
  struct Exec {
    Batch batch;
    edge::EdgeEngine* engine = nullptr;
    std::shared_ptr<CheckpointCache::Entry> hold;  ///< Keeps engine alive.
    bool fallback = false;
    Tensor input;
    Tensor probabilities;
  };

  // Phase 1 (serial): resolve engines — cache LRU updates and session
  // lookups stay deterministic — and stack each batch's input tensor.
  std::vector<Exec> execs;
  execs.reserve(batches.size());
  for (Batch& batch : batches) {
    Exec e;
    e.batch = std::move(batch);
    if (e.batch.key.kind == BatchKey::Kind::kPersonal) {
      Session* session = sessions_.find(e.batch.key.id);
      CLEAR_CHECK_MSG(session, "personal batch for an unknown session");
      e.engine = session->personal_engine();
      if (!e.engine) {
        // A promotion displaced the personal engine while this batch was
        // pending; it executes on the engine that was serving at admission.
        const auto retired = retired_personal_.find(session->user_id());
        CLEAR_CHECK_MSG(retired != retired_personal_.end(),
                        "personal batch for a session without an engine");
        e.engine = retired->second.get();
      }
    } else {
      try {
        e.hold = cache_.acquire(e.batch.key);
        e.engine = e.hold->engine.get();
        e.fallback = e.hold->fallback;
      } catch (const Error& err) {
        for (const PendingItem& item : e.batch.items) {
          const auto it = pending_.find(item.slot);
          shed(it->second.request, e.batch.key, nullptr, err.what());
          pending_.erase(it);
        }
        continue;
      }
    }
    std::vector<const Tensor*> maps;
    std::vector<std::size_t> idx;
    maps.reserve(e.batch.items.size());
    for (const PendingItem& item : e.batch.items) {
      maps.push_back(&pending_.at(item.slot).request.map);
      idx.push_back(idx.size());
    }
    nn::stack_batch_into(maps, idx, e.input);
    execs.push_back(std::move(e));
  }

  // Phase 2 (parallel): forward each batch on its own engine. Batches are
  // independent (distinct engines), every kernel below is bit-identical at
  // any thread count, and results land in per-exec storage.
  parallel_for(0, execs.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      CLEAR_OBS_SPAN("serve.batch");
      const Tensor logits = execs[i].engine->forward(execs[i].input);
      execs[i].probabilities = ops::softmax_rows(logits);
    }
  });

  // Phase 3 (serial): emit results in batch/key order.
  for (Exec& e : execs) {
    ++counters_.batches;
    counters_.rows += e.batch.items.size();
    counters_.max_batch_rows =
        std::max(counters_.max_batch_rows, e.batch.items.size());
    CLEAR_OBS_COUNT("serve.batches", 1);
    CLEAR_OBS_COUNT("serve.rows", e.batch.items.size());
    CLEAR_OBS_RECORD("serve.batch_size", e.batch.items.size());
    for (std::size_t row = 0; row < e.batch.items.size(); ++row) {
      const PendingItem& item = e.batch.items[row];
      const auto it = pending_.find(item.slot);
      const ServeRequest& request = it->second.request;
      Session* session = sessions_.find(request.user_id);

      ServeResult r;
      r.user_id = request.user_id;
      r.request_id = request.request_id;
      r.status = ServeResult::Status::kOk;
      const std::size_t n_classes = e.probabilities.extent(1);
      float best = e.probabilities.at2(row, 0);
      std::size_t best_class = 0;
      for (std::size_t c = 1; c < n_classes; ++c)
        if (e.probabilities.at2(row, c) > best) {
          best = e.probabilities.at2(row, c);
          best_class = c;
        }
      r.predicted = static_cast<int>(best_class);
      r.fear_probability =
          n_classes > 1 ? e.probabilities.at2(row, 1) : best;
      r.route = e.batch.key;
      if (e.fallback) r.route.kind = BatchKey::Kind::kGeneral;
      r.batch_rows = e.batch.items.size();
      r.arrival_us = request.arrival_us;
      r.exec_us = e.batch.exec_us;
      if (session) {
        r.session_state = session->state();
        r.degraded = session->degraded();
        ++session->predictions;
        if (!session->first_prediction_us) {
          session->first_prediction_us = e.batch.exec_us;
          CLEAR_OBS_RECORD("serve.ttfp_us",
                           e.batch.exec_us - session->first_arrival_us);
        }
        if (journal_) {
          JournalRecord rec;
          rec.type = RecordType::kPredict;
          rec.user_id = request.user_id;
          rec.time_us = e.batch.exec_us;
          journal_append(std::move(rec));
        }
      }
      CLEAR_OBS_RECORD("serve.queue_wait_us",
                       e.batch.exec_us - item.enqueue_us);
      ++counters_.ok;
      completed_.push_back(std::move(r));
      pending_.erase(it);
    }
  }
  CLEAR_OBS_GAUGE("serve.pending", batcher_.pending());
  // Drop retired personal engines whose owner has no pending personal rows
  // left — nothing can route to them anymore.
  for (auto it = retired_personal_.begin(); it != retired_personal_.end();) {
    bool still_pending = false;
    for (const auto& [slot, p] : pending_)
      if (p.route.kind == BatchKey::Kind::kPersonal &&
          p.route.id == static_cast<std::size_t>(it->first)) {
        still_pending = true;
        break;
      }
    it = still_pending ? std::next(it) : retired_personal_.erase(it);
  }
  maybe_compact();
}

void Server::open_journal() {
  CLEAR_CHECK_MSG(!config_.journal.directory.empty(),
                  "journal directory is not configured");
  CLEAR_CHECK_MSG(!journal_, "journal is already open");
  CLEAR_CHECK_MSG(
      !journal_state_exists(config_.journal.directory),
      "journal directory '"
          << config_.journal.directory
          << "' already holds journal state; restart with --recover, or "
             "point --journal-dir at a fresh directory");
  journal_ = std::make_unique<Journal>(config_.journal);
}

void Server::journal_append(JournalRecord record) {
  if (!journal_) return;
  try {
    const std::size_t bytes = journal_->append(std::move(record));
    ++counters_.journal_records;
    counters_.journal_bytes += bytes;
    CLEAR_OBS_COUNT("serve.journal.records", 1);
    CLEAR_OBS_COUNT("serve.journal.bytes", bytes);
  } catch (const Error& e) {
    journal_disable(e, "append");
  }
}

void Server::maybe_compact() {
  // Quiescent-point compaction only: an append-time snapshot would stamp
  // `last_seq` at a record whose session/counter effects are still being
  // applied (kRequest's quality tick, kPredict's ok count land after the
  // append), and replay — which skips records at or below last_seq — would
  // silently lose them.
  if (journal_ && journal_->due_for_snapshot()) snapshot_now();
}

void Server::snapshot_now() {
  if (!journal_) return;
  try {
    CLEAR_OBS_SPAN("serve.journal.snapshot");
    journal_->write_snapshot(make_snapshot(journal_->next_seq() - 1));
    ++counters_.journal_snapshots;
    CLEAR_OBS_COUNT("serve.journal.snapshots", 1);
  } catch (const Error& e) {
    journal_disable(e, "snapshot");
  }
}

void Server::journal_disable(const Error& e, const char* what) {
  ++counters_.journal_io_errors;
  CLEAR_OBS_COUNT("serve.journal.io_errors", 1);
  CLEAR_WARN("journal " << what << " failed (" << e.what()
                        << "); journaling disabled, serving continues");
  journal_.reset();
}

SnapshotData Server::make_snapshot(std::uint64_t last_seq) const {
  SnapshotData data;
  data.last_seq = last_seq;
  data.last_arrival_us = last_arrival_us_;
  data.counters.requests = counters_.requests;
  data.counters.ok = counters_.ok;
  data.counters.shed = counters_.shed;
  data.counters.assignments = counters_.assignments;
  data.counters.finetunes = counters_.finetunes;
  data.counters.finetune_failures = counters_.finetune_failures;
  data.counters.sanitized = counters_.sanitized;
  data.counters.degraded = counters_.degraded;
  data.counters.recovered = counters_.recovered;
  data.counters.drift_ticks = counters_.drift_ticks;
  data.counters.drift_detected = counters_.drift_detected;
  data.counters.reassessments = counters_.reassessments;
  data.counters.drift_false_alarms = counters_.drift_false_alarms;
  data.counters.shadow_ticks = counters_.shadow_ticks;
  data.counters.promotions = counters_.promotions;
  data.counters.demotions = counters_.demotions;
  for (const Session* s : sessions_.sessions())
    data.sessions.push_back(s->image());
  return data;
}

std::optional<Server::ExportedSession> Server::export_session(
    std::uint64_t user_id) {
  Session* session = sessions_.find(user_id);
  if (!session) return std::nullopt;
  for (const auto& [slot, p] : pending_)
    CLEAR_CHECK_MSG(p.request.user_id != user_id,
                    "export with requests still pending for user "
                        << user_id << " (drain first)");
  ExportedSession out;
  out.image = session->image();
  if (session->has_personal_engine()) {
    // Re-encode through the same deterministic path personalize() persists
    // with, so the wire blob carries the delta when one is stored and the
    // gaining shard's restore decodes to the bit-identical checkpoint.
    std::ostringstream os(std::ios::binary);
    nn::save_checkpoint(os, session->personal_engine()->model());
    out.checkpoint =
        encode_personal_blob(user_id, session->cluster(), os.str());
  }
  CLEAR_OBS_COUNT("serve.migration.exports", 1);
  return out;
}

void Server::retire_session(std::uint64_t user_id) {
  Session* session = sessions_.find(user_id);
  if (!session) return;
  if (session->adapting() && drift_active_ > 0) --drift_active_;
  sessions_.erase(user_id);
  retired_personal_.erase(user_id);
  CLEAR_OBS_COUNT("serve.migration.retired", 1);
  CLEAR_OBS_GAUGE("serve.sessions", sessions_.size());
  // Compact so the snapshot stops claiming the session; the orphaned
  // user_<id>.ckpt (if any) is unreferenced and harmless.
  snapshot_now();
}

bool Server::import_session(const SessionImage& image,
                            const std::string& checkpoint) {
  const std::uint64_t user = image.user_id;
  const auto fail = [&](const std::string& why) {
    CLEAR_WARN("migration import for user " << user << " failed: " << why);
    CLEAR_OBS_COUNT("serve.migration.failed", 1);
    return false;
  };
  if (sessions_.find(user)) return fail("user already has a session here");
  std::unique_ptr<edge::EdgeEngine> engine;
  if (image.has_personal) {
    if (checkpoint.empty())
      return fail("image claims a personal engine but no checkpoint came");
    try {
      fault::maybe_fail_migrate_io("import checkpoint build");
      engine = build_engine(checkpoint, sessions_.precision_for(user));
    } catch (const Error& e) {
      return fail(e.what());
    }
  }
  if (journal_ && image.has_personal) {
    // Land the checkpoint before the session becomes visible — same order
    // personalize() uses — so a crash right after the import's snapshot
    // still recovers the personal engine.
    try {
      fault::maybe_fail_migrate_io("import checkpoint store");
      write_user_checkpoint(config_.journal.directory, user, checkpoint,
                            config_.journal.fsync);
      ++counters_.journal_ckpts;
      CLEAR_OBS_COUNT("serve.journal.ckpts", 1);
    } catch (const Error& e) {
      return fail(e.what());
    }
  }
  Session* restored = nullptr;
  try {
    restored = sessions_.restore(image, std::move(engine));
  } catch (const Error& e) {
    return fail(e.what());
  }
  if (!restored) return fail("session table full");
  if (restored->adapting()) ++drift_active_;
  CLEAR_OBS_COUNT("serve.migration.imports", 1);
  CLEAR_OBS_GAUGE("serve.sessions", sessions_.size());
  // Fold the adopted session into the baseline snapshot now: no journal
  // record admits it, so replay must find it in snapshot.snap.
  snapshot_now();
  return true;
}

std::size_t Server::rewrite_user_checkpoints() {
  CLEAR_CHECK_MSG(journal_,
                  "checkpoint rewrite requires an active journal "
                  "(open_journal() or recover() first)");
  // Fold every outstanding kFinetune record into the snapshot first: those
  // records pin the size + CRC of the *old* bytes, and replaying them
  // against rewritten files would quarantine every rewritten session. The
  // snapshot restore path re-reads user_<id>.ckpt by content, so after
  // this a crash at any point mid-rewrite recovers cleanly — each file is
  // atomically either the old or the new encoding, and both load.
  snapshot_now();
  std::size_t rewritten = 0;
  for (const Session* s : sessions_.sessions()) {
    const std::string stored =
        read_user_checkpoint(config_.journal.directory, s->user_id());
    if (stored.empty()) continue;
    std::string full = stored;
    if (delta::is_delta(stored)) {
      try {
        const delta::BaseRef ref = delta::base_of(stored);
        full = delta::decode(stored,
                             ref.kind == delta::BaseRef::Kind::kGeneral
                                 ? source_.general_blob()
                                 : source_.cluster_blob(ref.id));
      } catch (const Error& e) {
        CLEAR_WARN("user " << s->user_id()
                           << ": checkpoint left unrewritten (" << e.what()
                           << ")");
        continue;
      }
    }
    const std::string next =
        encode_personal_blob(s->user_id(), s->cluster(), full);
    if (next == stored) continue;
    try {
      write_user_checkpoint(config_.journal.directory, s->user_id(), next,
                            config_.journal.fsync);
    } catch (const Error& e) {
      journal_disable(e, "checkpoint rewrite");
      break;
    }
    ++rewritten;
    CLEAR_OBS_COUNT("serve.delta.rewrites", 1);
  }
  return rewritten;
}

std::vector<ServeResult> Server::take_results() {
  std::vector<ServeResult> out = std::move(completed_);
  completed_.clear();
  return out;
}

std::vector<ServeResult> Server::run(std::vector<ServeRequest> requests) {
  std::stable_sort(requests.begin(), requests.end(),
                   [](const ServeRequest& a, const ServeRequest& b) {
                     return a.arrival_us < b.arrival_us;
                   });
  for (ServeRequest& r : requests) submit(std::move(r));
  drain();
  std::vector<ServeResult> out = take_results();
  std::sort(out.begin(), out.end(),
            [](const ServeResult& a, const ServeResult& b) {
              if (a.user_id != b.user_id) return a.user_id < b.user_id;
              return a.request_id < b.request_id;
            });
  return out;
}

}  // namespace clear::serve
