// The paper's CNN-LSTM architecture (Fig. 2): two convolutional blocks over
// the 2-D feature map, reshaped into a sequence along the window axis, an
// LSTM summarizing the sequence, and a dense softmax head.
#pragma once

#include <memory>

#include "nn/sequential.hpp"

namespace clear::nn {

struct CnnLstmConfig {
  std::size_t feature_dim = 123;   ///< F — rows of the feature map.
  std::size_t window_count = 12;   ///< W — columns of the feature map.
  std::size_t conv1_channels = 6;
  std::size_t conv2_channels = 12;
  std::size_t lstm_hidden = 32;
  std::size_t n_classes = 2;       ///< fear / non-fear.
  double dropout = 0.15;

  /// Feature rows after the two 2x2 poolings.
  std::size_t pooled_feature_dim() const { return feature_dim / 2 / 2; }
  /// Sequence length after the two 2x2 poolings.
  std::size_t pooled_window_count() const { return window_count / 2 / 2; }
  /// LSTM per-step input dimension.
  std::size_t lstm_input_dim() const {
    return conv2_channels * pooled_feature_dim();
  }
};

/// Build the network. Input: [N, 1, F, W]; output logits: [N, n_classes].
std::unique_ptr<Sequential> build_cnn_lstm(const CnnLstmConfig& config,
                                           Rng& rng);

/// Layer index separating the convolutional feature extractor from the
/// recurrent head. Passing this to Sequential::freeze_below() freezes the
/// conv stack for on-edge fine-tuning (paper §III-B-2).
std::size_t fine_tune_boundary();

/// Architecture baselines for the ablation of the paper's CNN-LSTM choice
/// (§III-A-3: the CNN-LSTM "integrates the feature maps' global and
/// sequential information").
///
/// CNN-only (the style of Sun et al. [18]): the same conv stack, but the
/// pooled maps feed a dense head directly — no sequential modelling.
std::unique_ptr<Sequential> build_cnn_only(const CnnLstmConfig& config,
                                           Rng& rng);

/// LSTM-only: the raw feature map is treated as a W-step sequence of
/// F-dimensional columns — no spatial feature extraction.
std::unique_ptr<Sequential> build_lstm_only(const CnnLstmConfig& config,
                                            Rng& rng);

/// Model-builder signature shared by the variants (strategy injection for
/// the evaluation drivers).
using ModelFactory =
    std::unique_ptr<Sequential> (*)(const CnnLstmConfig&, Rng&);

}  // namespace clear::nn
