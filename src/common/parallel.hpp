// Deterministic parallel runtime shared by every hot path.
//
// The design goal is *bit-identical results at any thread count*, which rules
// out work stealing and atomic floating-point accumulation. Instead:
//
//   - `parallel_for` / `parallel_for_chunks` split a [begin, end) index range
//     into fixed chunks of `grain` elements. The chunk layout is a pure
//     function of (range, grain) — never of the thread count — so any
//     per-chunk partial results a caller keeps are the same whether the
//     chunks ran on 1 thread or 16.
//   - `parallel_reduce` computes one partial value per chunk and folds the
//     partials *in ascending chunk order* on the calling thread. Floating
//     point reductions therefore associate identically at every thread
//     count (the ordered-reduction contract; see DESIGN.md §9).
//   - `parallel_for_workers` additionally hands the body a dense worker
//     index < `parallel_workers()`, for callers that keep per-worker scratch
//     (e.g. model replicas for batched inference). Results must not depend
//     on which worker ran which chunk.
//
// The process-wide thread count comes from, in priority order:
// `set_num_threads()`, the CLEAR_NUM_THREADS environment variable (read
// once), else 1 (serial). Parallelism is opt-in: with 1 thread every
// primitive runs inline on the caller with the same chunk layout.
//
// Exceptions thrown by a body propagate to the caller of the parallel
// primitive (the first one thrown wins; remaining chunks still run).
// Nested calls — a body invoking another parallel primitive — execute
// inline on the current thread, so the pool can never deadlock on itself.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace clear {

/// Work-stealing-free fixed-size thread pool. One parallel region runs at a
/// time; concurrent callers queue on an internal mutex. The calling thread
/// participates in every region, so a pool with W workers executes chunks
/// on up to W+1 threads.
class ThreadPool {
 public:
  /// Spawn `workers` worker threads (0 is valid: everything runs inline).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const { return n_workers_; }

  /// Execute fn(chunk, worker) for every chunk in [0, n_chunks); blocks until
  /// all chunks finished. `worker` is a dense index < workers() + 1 (the
  /// calling thread takes index workers()). Rethrows the first exception a
  /// chunk threw. Reentrant calls from inside a chunk run inline.
  void run(std::size_t n_chunks,
           const std::function<void(std::size_t chunk, std::size_t worker)>& fn);

 private:
  struct Job;
  void worker_main(std::size_t worker_id);
  static void execute_chunks(Job& job, std::size_t worker_id);

  struct Impl;
  Impl* impl_;
  std::size_t n_workers_ = 0;
};

/// std::thread::hardware_concurrency with a floor of 1.
std::size_t hardware_threads();

/// Set the process-wide thread count used by the parallel primitives.
/// 1 = serial (the default); 0 = hardware_threads(); values above 256 are
/// capped. Takes effect for the next parallel region; safe to call between
/// regions from any thread.
void set_num_threads(std::size_t n);

/// Current process-wide thread count (>= 1).
std::size_t num_threads();

/// Upper bound (exclusive) on the worker index passed to
/// parallel_for_workers bodies. Equals num_threads().
std::size_t parallel_workers();

/// True while the current thread executes inside a parallel region; further
/// parallel primitives on this thread run inline.
bool in_parallel_region();

/// RAII thread-count override (tests, benches): restores the previous
/// setting on destruction.
class NumThreadsGuard {
 public:
  explicit NumThreadsGuard(std::size_t n) : prev_(num_threads()) {
    set_num_threads(n);
  }
  ~NumThreadsGuard() { set_num_threads(prev_); }
  NumThreadsGuard(const NumThreadsGuard&) = delete;
  NumThreadsGuard& operator=(const NumThreadsGuard&) = delete;

 private:
  std::size_t prev_;
};

/// body(chunk_index, chunk_begin, chunk_end) over [begin, end) in chunks of
/// exactly `grain` elements (last chunk may be short). Chunk layout is
/// independent of the thread count.
void parallel_for_chunks(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t chunk, std::size_t chunk_begin,
                             std::size_t chunk_end)>& body);

/// body(chunk_begin, chunk_end) — parallel_for_chunks without the index.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// body(worker, chunk_begin, chunk_end) with worker < parallel_workers().
/// The body must produce results that do not depend on the worker-to-chunk
/// mapping (worker index is for scratch storage only).
void parallel_for_workers(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t worker, std::size_t chunk_begin,
                             std::size_t chunk_end)>& body);

/// Ordered deterministic reduction: partials[c] = chunk_fn(chunk_begin,
/// chunk_end) per fixed-grain chunk (computed in parallel), folded as
/// combine(combine(identity, partials[0]), partials[1])... on the calling
/// thread. Bit-identical at every thread count.
template <typename T, typename ChunkFn, typename CombineFn>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T identity, ChunkFn chunk_fn, CombineFn combine) {
  if (end <= begin) return identity;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t n_chunks = (end - begin + g - 1) / g;
  std::vector<T> partials(n_chunks, identity);
  parallel_for_chunks(begin, end, g,
                      [&](std::size_t c, std::size_t lo, std::size_t hi) {
                        partials[c] = chunk_fn(lo, hi);
                      });
  T acc = identity;
  for (std::size_t c = 0; c < n_chunks; ++c) acc = combine(acc, partials[c]);
  return acc;
}

}  // namespace clear
