#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/model.hpp"

namespace clear::nn {
namespace {

/// A separable synthetic task: class-1 maps have a higher mean in the top
/// half of the feature rows.
struct Fixture {
  std::vector<Tensor> maps;
  MapDataset data;
  CnnLstmConfig model_config;

  explicit Fixture(std::size_t n, std::uint64_t seed, double gap = 1.0) {
    model_config.feature_dim = 16;
    model_config.window_count = 8;
    model_config.conv1_channels = 2;
    model_config.conv2_channels = 3;
    model_config.lstm_hidden = 6;
    Rng rng(seed);
    maps.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const int label = static_cast<int>(i % 2);
      Tensor m({16, 8});
      for (std::size_t r = 0; r < 16; ++r)
        for (std::size_t c = 0; c < 8; ++c) {
          double v = rng.normal(0.0, 0.5);
          if (label == 1 && r < 8) v += gap;
          m.at2(r, c) = static_cast<float>(v);
        }
      maps.push_back(std::move(m));
    }
    for (std::size_t i = 0; i < n; ++i) {
      data.maps.push_back(&maps[i]);
      data.labels.push_back(i % 2);
    }
  }
};

TEST(StackBatch, ShapeAndContents) {
  Fixture f(4, 1);
  const Tensor batch = stack_batch(f.data.maps, {0, 2});
  EXPECT_EQ(batch.extent(0), 2u);
  EXPECT_EQ(batch.extent(1), 1u);
  EXPECT_EQ(batch.extent(2), 16u);
  EXPECT_EQ(batch.extent(3), 8u);
  EXPECT_EQ(batch.at4(1, 0, 3, 5), f.maps[2].at2(3, 5));
}

TEST(StackBatch, Validation) {
  Fixture f(2, 2);
  EXPECT_THROW(stack_batch(f.data.maps, {}), Error);
  EXPECT_THROW(stack_batch(f.data.maps, {7}), Error);
}

TEST(Trainer, LossDecreasesOnSeparableTask) {
  Fixture f(40, 3);
  Rng rng(4);
  auto model = build_cnn_lstm(f.model_config, rng);
  TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 8;
  tc.lr = 2e-3;
  tc.keep_best = false;
  const TrainHistory h = train_classifier(*model, f.data, tc);
  ASSERT_EQ(h.train_loss.size(), 8u);
  EXPECT_LT(h.train_loss.back(), h.train_loss.front());
}

TEST(Trainer, LearnsSeparableTaskToHighAccuracy) {
  Fixture f(60, 5);
  Rng rng(6);
  auto model = build_cnn_lstm(f.model_config, rng);
  TrainConfig tc;
  tc.epochs = 15;
  tc.batch_size = 8;
  tc.lr = 2e-3;
  train_classifier(*model, f.data, tc);
  const BinaryMetrics m = evaluate(*model, f.data);
  EXPECT_GT(m.accuracy, 0.9);
  EXPECT_GT(m.f1, 0.9);
}

TEST(Trainer, DeterministicGivenSeed) {
  Fixture f(20, 7);
  Rng r1(8), r2(8);
  auto m1 = build_cnn_lstm(f.model_config, r1);
  auto m2 = build_cnn_lstm(f.model_config, r2);
  TrainConfig tc;
  tc.epochs = 3;
  tc.seed = 99;
  const TrainHistory h1 = train_classifier(*m1, f.data, tc);
  const TrainHistory h2 = train_classifier(*m2, f.data, tc);
  ASSERT_EQ(h1.train_loss.size(), h2.train_loss.size());
  for (std::size_t i = 0; i < h1.train_loss.size(); ++i)
    EXPECT_DOUBLE_EQ(h1.train_loss[i], h2.train_loss[i]);
}

TEST(Trainer, ValidationSplitTracksMetrics) {
  Fixture f(40, 9);
  Rng rng(10);
  auto model = build_cnn_lstm(f.model_config, rng);
  TrainConfig tc;
  tc.epochs = 5;
  tc.validation_fraction = 0.25;
  const TrainHistory h = train_classifier(*model, f.data, tc);
  EXPECT_EQ(h.val_loss.size(), 5u);
  EXPECT_EQ(h.val_accuracy.size(), 5u);
  EXPECT_LE(h.best_epoch, 4u);
}

TEST(Trainer, KeepBestRestoresBestEpoch) {
  Fixture f(40, 11);
  Rng rng(12);
  auto model = build_cnn_lstm(f.model_config, rng);
  TrainConfig tc;
  tc.epochs = 6;
  tc.validation_fraction = 0.25;
  tc.keep_best = true;
  tc.seed = 13;
  const TrainHistory h = train_classifier(*model, f.data, tc);
  // The restored parameters must reproduce the best epoch's val loss.
  const double best_val = h.val_loss[h.best_epoch];
  for (const double v : h.val_loss) EXPECT_GE(v, best_val - 1e-9);
}

TEST(Trainer, PostStepHookRuns) {
  Fixture f(16, 14);
  Rng rng(15);
  auto model = build_cnn_lstm(f.model_config, rng);
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 4;
  std::size_t calls = 0;
  tc.post_step = [&calls](Sequential&) { ++calls; };
  train_classifier(*model, f.data, tc);
  EXPECT_EQ(calls, 2u * 4u);  // 16 samples / batch 4 = 4 steps per epoch.
}

TEST(Trainer, FrozenLayersDoNotMove) {
  Fixture f(20, 16);
  Rng rng(17);
  auto model = build_cnn_lstm(f.model_config, rng);
  model->freeze_below(fine_tune_boundary());
  const Tensor conv_before = model->parameters()[0]->value;
  TrainConfig tc;
  tc.epochs = 3;
  train_classifier(*model, f.data, tc);
  const Tensor& conv_after = model->parameters()[0]->value;
  for (std::size_t i = 0; i < conv_before.numel(); ++i)
    EXPECT_EQ(conv_after[i], conv_before[i]);
}

TEST(Trainer, Validation) {
  Fixture f(4, 18);
  Rng rng(19);
  auto model = build_cnn_lstm(f.model_config, rng);
  MapDataset tiny;
  tiny.maps = {f.data.maps[0]};
  tiny.labels = {0};
  TrainConfig tc;
  EXPECT_THROW(train_classifier(*model, tiny, tc), Error);
  MapDataset mismatched = f.data;
  mismatched.labels.pop_back();
  EXPECT_THROW(train_classifier(*model, mismatched, tc), Error);
}

TEST(Predict, ProbabilitiesRowsSumToOne) {
  Fixture f(10, 20);
  Rng rng(21);
  auto model = build_cnn_lstm(f.model_config, rng);
  const Tensor proba = predict_probabilities(*model, f.data, 4);
  EXPECT_EQ(proba.extent(0), 10u);
  EXPECT_EQ(proba.extent(1), 2u);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_NEAR(proba.at2(i, 0) + proba.at2(i, 1), 1.0f, 1e-5f);
}

TEST(Predict, ClassesConsistentWithProbabilities) {
  Fixture f(10, 22);
  Rng rng(23);
  auto model = build_cnn_lstm(f.model_config, rng);
  const Tensor proba = predict_probabilities(*model, f.data, 3);
  const auto classes = predict_classes(*model, f.data, 3);
  for (std::size_t i = 0; i < 10; ++i) {
    const std::size_t expected = proba.at2(i, 1) > proba.at2(i, 0) ? 1 : 0;
    EXPECT_EQ(classes[i], expected);
  }
}

}  // namespace
}  // namespace clear::nn
