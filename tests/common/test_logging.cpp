#include "common/logging.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace clear {
namespace {

/// RAII guard restoring the global log level after each test.
struct LevelGuard {
  log::Level saved = log::level();
  ~LevelGuard() { log::set_level(saved); }
};

TEST(Logging, LevelRoundTrips) {
  LevelGuard guard;
  log::set_level(log::Level::kWarn);
  EXPECT_EQ(log::level(), log::Level::kWarn);
  log::set_level(log::Level::kDebug);
  EXPECT_EQ(log::level(), log::Level::kDebug);
}

TEST(Logging, MacroDoesNotEvaluateBelowThreshold) {
  LevelGuard guard;
  log::set_level(log::Level::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "message";
  };
  CLEAR_DEBUG(expensive());
  CLEAR_INFO(expensive());
  CLEAR_WARN(expensive());
  EXPECT_EQ(evaluations, 0);
  CLEAR_ERROR(expensive());
  EXPECT_EQ(evaluations, 1);
}

TEST(Logging, EmitIsSafeAtEveryLevel) {
  LevelGuard guard;
  log::set_level(log::Level::kDebug);
  // Must not crash or throw for any level / content.
  log::emit(log::Level::kDebug, "debug message");
  log::emit(log::Level::kInfo, "");
  log::emit(log::Level::kWarn, std::string(1000, 'x'));
  log::emit(log::Level::kError, "with % format chars %s %d");
}

TEST(Logging, OffSilencesEverything) {
  LevelGuard guard;
  log::set_level(log::Level::kOff);
  int evaluations = 0;
  CLEAR_ERROR([&evaluations] {
    ++evaluations;
    return "x";
  }());
  EXPECT_EQ(evaluations, 0);
}

TEST(ErrorMacros, CheckPassesOnTrue) {
  EXPECT_NO_THROW(CLEAR_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(CLEAR_CHECK_MSG(true, "never shown"));
}

TEST(ErrorMacros, CheckThrowsWithLocationAndMessage) {
  try {
    CLEAR_CHECK_MSG(false, "the answer is " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the answer is 42"), std::string::npos);
    EXPECT_NE(what.find("test_logging.cpp"), std::string::npos);
    EXPECT_NE(what.find("false"), std::string::npos);
  }
}

TEST(ErrorMacros, ConditionEvaluatedExactlyOnce) {
  int count = 0;
  auto once = [&count] {
    ++count;
    return true;
  };
  CLEAR_CHECK(once());
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace clear
