#include "common/cli.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace clear {
namespace {

CliArgs make(std::vector<const char*> argv) {
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesKeyValue) {
  const CliArgs args = make({"prog", "--alpha=5", "--name=test"});
  EXPECT_TRUE(args.has("alpha"));
  EXPECT_EQ(args.get("name", ""), "test");
  EXPECT_EQ(args.get_int("alpha", 0), 5);
}

TEST(Cli, BareFlagIsTrue) {
  const CliArgs args = make({"prog", "--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(Cli, FallbacksWhenAbsent) {
  const CliArgs args = make({"prog"});
  EXPECT_FALSE(args.has("x"));
  EXPECT_EQ(args.get("x", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("x", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
  EXPECT_TRUE(args.get_bool("x", true));
}

TEST(Cli, ParsesDoubles) {
  const CliArgs args = make({"prog", "--frac=0.25"});
  EXPECT_DOUBLE_EQ(args.get_double("frac", 0.0), 0.25);
}

TEST(Cli, BooleanSpellings) {
  const CliArgs args = make({"prog", "--a=true", "--b=0", "--c=yes"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
}

TEST(Cli, PositionalArgumentsCollectedInOrder) {
  const CliArgs args = make({"prog", "train", "--epochs=3", "extra"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "train");
  EXPECT_EQ(args.positional()[1], "extra");
  EXPECT_EQ(args.get_int("epochs", 0), 3);
}

TEST(Cli, NoPositionalsByDefault) {
  EXPECT_TRUE(make({"prog", "--a=1"}).positional().empty());
}

TEST(Cli, RejectsSingleDashArgument) {
  EXPECT_THROW(make({"prog", "-x=1"}), Error);
  EXPECT_THROW(make({"prog", "-v"}), Error);
}

TEST(Cli, RejectsBadNumericValues) {
  const CliArgs args = make({"prog", "--n=abc", "--f=1.2.3", "--b=maybe"});
  EXPECT_THROW(args.get_int("n", 0), Error);
  EXPECT_THROW(args.get_double("f", 0.0), Error);
  EXPECT_THROW(args.get_bool("b", false), Error);
}

TEST(Cli, ProgramName) {
  const CliArgs args = make({"myprog"});
  EXPECT_EQ(args.program(), "myprog");
}

}  // namespace
}  // namespace clear
