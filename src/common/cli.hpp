// Tiny command-line parser for the bench harnesses, examples, and the CLI
// tool. Accepts `--key=value` flags, `--flag` (boolean true), and bare
// positional arguments (e.g. sub-command names).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace clear {

class CliArgs {
 public:
  /// Parse argv; throws clear::Error on malformed arguments.
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Name of the binary (argv[0]).
  const std::string& program() const { return program_; }

  /// Bare (non --flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace clear
