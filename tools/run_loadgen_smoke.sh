#!/bin/sh
# Loadgen smoke test: start `clear-cli serve --listen` on an ephemeral
# loopback port, drive it with the deterministic open-loop load generator
# (`clear-cli loadgen`), and validate the --json report against the
# committed schema (tools/loadgen_schema.json) plus sanity floors: every
# request answered, and a minimum achieved throughput that even a Pi-class
# board clears with margin (the real rates live in BENCH_loadgen.json and
# are gated by tools/bench_regress.py, ratio-wise).
# Usage: run_loadgen_smoke.sh <path-to-clear-cli> <path-to-schema>
set -eu

CLI="$1"
SCHEMA="$2"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT
cd "$WORK"

SLICE="--volunteers=6 --trials=4 --epochs=1 --ft-epochs=1 --data-seed=42"

# 1. Server on an ephemeral port; it publishes the bound port via
#    --port-file once it is actually listening.
"$CLI" serve $SLICE --listen=127.0.0.1:0 --port-file=port.txt \
  >server.txt 2>&1 &
SERVER_PID=$!

i=0
while [ ! -s port.txt ]; do
  i=$((i + 1))
  if [ "$i" -gt 300 ]; then
    echo "server never published its port; log tail:" >&2
    tail -20 server.txt >&2
    exit 1
  fi
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "server exited before listening; log tail:" >&2
    tail -20 server.txt >&2
    exit 1
  }
  sleep 0.2
done
PORT="$(cat port.txt)"

# 2. Deterministic open-loop run; --shutdown-after stops the server so its
#    exit code (drain-on-shutdown: every admitted request answered) counts.
"$CLI" loadgen --connect=127.0.0.1:"$PORT" --connections=3 --requests=90 \
  --rate=250 --burstiness=2 --seed=5 --users=6 --shutdown-after \
  --json=report.json >loadgen.txt 2>&1

wait "$SERVER_PID"
SERVER_PID=""
test -s report.json

# 3. The report must satisfy the committed schema.
python3 - "$SCHEMA" report.json <<'EOF'
import json, sys
import jsonschema
with open(sys.argv[1]) as f:
    schema = json.load(f)
with open(sys.argv[2]) as f:
    report = json.load(f)
jsonschema.validate(report, schema)
EOF

# 4. Delivery: the open-loop generator sent everything it scheduled and the
#    wire answered all of it.
jq -e '.sent == 90 and .received == 90 and .dropped == 0' report.json \
  >/dev/null || { echo "loadgen lost requests:" >&2; cat report.json >&2; exit 1; }
jq -e '.ratios.answered_fraction == 1 and .ratios.ok_fraction > 0' \
  report.json >/dev/null

# 5. Minimum-throughput sanity floor. Deliberately far below any real
#    machine's rate — this catches a wedged event loop (e.g. a stuck
#    batcher drained only by the timeout path), not a slow one.
jq -e '.achieved_rps >= 20' report.json >/dev/null || {
  echo "achieved_rps below the 20 req/s sanity floor:" >&2
  jq '.achieved_rps, .wall_seconds' report.json >&2
  exit 1
}

# 6. The latency summary must be internally consistent.
jq -e '.latency_us.p50 > 0 and .latency_us.p90 >= .latency_us.p50
       and .latency_us.p99 >= .latency_us.p90
       and .latency_us.p999 >= .latency_us.p99
       and .latency_us.max >= .latency_us.p999' report.json >/dev/null

echo "loadgen smoke OK"
