// Dynamic micro-batching for the serving layer (DESIGN.md §12).
//
// Pending requests are coalesced per *batch key* — the (model route,
// precision) pair that determines which engine executes them — under a
// max-batch / max-wait policy. Time is the caller's virtual clock (request
// arrival timestamps), never the wall clock, so the batches formed for a
// given request stream are a pure function of (stream, policy): bit-identical
// across runs and thread counts.
//
// The batcher holds only lightweight slot handles; request payloads stay in
// the server's pending table. Admission is bounded twice — per-key queue
// capacity and a global pending cap — and a rejected admit tells the caller
// which bound fired so load-shedding errors can be addressed precisely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "edge/engine.hpp"

namespace clear::serve {

/// Identifies which engine a request executes on. Requests only share a
/// batch when their keys compare equal.
struct BatchKey {
  enum class Kind : std::uint8_t {
    kGeneral = 0,   ///< Population-general fallback model.
    kCluster = 1,   ///< Cluster `id`'s pre-trained model.
    kPersonal = 2,  ///< User `id`'s fine-tuned model.
  };

  Kind kind = Kind::kGeneral;
  std::size_t id = 0;  ///< Cluster index (kCluster) or user id (kPersonal).
  edge::Precision precision = edge::Precision::kFp32;

  /// "general/fp32", "cluster3/int8", "user17/fp16" — stable display form.
  std::string str() const;

  friend bool operator==(const BatchKey& a, const BatchKey& b) {
    return a.kind == b.kind && a.id == b.id && a.precision == b.precision;
  }
  friend bool operator<(const BatchKey& a, const BatchKey& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.id != b.id) return a.id < b.id;
    return a.precision < b.precision;
  }
};

struct BatchPolicy {
  std::size_t max_batch = 8;       ///< Rows per executed batch.
  std::uint64_t max_wait_us = 2000;  ///< Oldest request's max queueing delay.
  std::size_t queue_capacity = 32;   ///< Per-key pending bound.
  std::size_t max_pending = 256;     ///< Global pending bound (all keys).
};

/// One queued request: an opaque slot id into the server's pending table
/// plus its virtual-time bookkeeping.
struct PendingItem {
  std::size_t slot = 0;
  std::uint64_t enqueue_us = 0;
  std::uint64_t deadline_us = 0;  ///< enqueue_us + max_wait_us.
};

/// A batch released for execution.
struct Batch {
  BatchKey key;
  std::uint64_t exec_us = 0;  ///< Virtual execution time.
  std::vector<PendingItem> items;  ///< FIFO admission order.
};

class MicroBatcher {
 public:
  explicit MicroBatcher(BatchPolicy policy);

  enum class Admit {
    kQueued,      ///< Accepted.
    kQueueFull,   ///< Per-key queue at capacity — shed this request.
    kOverloaded,  ///< Global pending cap reached — shed this request.
  };

  /// Try to queue `slot` under `key` at virtual time `now_us`.
  Admit admit(const BatchKey& key, std::size_t slot, std::uint64_t now_us);

  /// Release due batches at virtual time `now_us`, at most ONE batch per key
  /// (callers loop until empty, so one engine never sees two of its batches
  /// concurrently). A key is due when its queue has reached max_batch or its
  /// oldest request's deadline has passed. Batches come out in key order;
  /// a full queue executes "immediately" (exec_us = min(now, oldest
  /// deadline)), a timed-out one at its oldest deadline.
  std::vector<Batch> pop_due(std::uint64_t now_us);

  /// Earliest pending deadline across all keys, or UINT64_MAX when empty.
  /// Drivers use this to step virtual time during drain.
  std::uint64_t next_deadline_us() const;

  std::size_t pending() const { return pending_; }
  std::size_t depth(const BatchKey& key) const;
  const BatchPolicy& policy() const { return policy_; }

 private:
  BatchPolicy policy_;
  std::map<BatchKey, std::deque<PendingItem>> queues_;
  std::size_t pending_ = 0;
};

}  // namespace clear::serve
