// Deterministic consistent-hash ring for shard placement.
//
// The coordinator (src/shard/coordinator.hpp) places every user session on
// one of N cooperating CLEAR-Serve shard processes. Placement must be
//
//   * deterministic — the same (seed, vnodes, membership) always maps a
//     user to the same shard, across processes and releases (a golden test
//     pins the mapping), so a restarted coordinator re-derives the exact
//     placement its predecessor used;
//   * balanced — with enough virtual nodes per shard the key share of the
//     most- and least-loaded shard stays within a small constant factor
//     (property-tested at >= 64 vnodes);
//   * minimally disruptive — adding or removing one shard moves only the
//     keys that land on that shard's arc, never reshuffles the rest
//     (property-tested: every key either keeps its owner or moves to/from
//     the changed shard).
//
// Hashing reuses fault::mix (splitmix64 over four words): it is already the
// repo's stateless decision hash, pinned by tests, and gives the ring the
// same bit-stable behavior across platforms as the fault runtime.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace clear::shard {

struct RingConfig {
  /// Virtual nodes per shard. More vnodes = smoother balance at the cost
  /// of a larger sorted point table; >= 64 keeps max/min key share within
  /// the property-tested bound.
  std::uint32_t vnodes = 128;
  /// Hash seed. All ring participants must agree on it (the coordinator is
  /// the only placement authority, so in practice this is one process).
  std::uint64_t seed = 1;
};

/// Sorted-points consistent-hash ring over shard ids.
class HashRing {
 public:
  explicit HashRing(RingConfig config = {});

  /// Add a shard's vnodes to the ring. Adding a present shard is an error.
  void add_shard(std::uint32_t shard_id);
  /// Remove a shard's vnodes. Removing an absent shard is an error.
  void remove_shard(std::uint32_t shard_id);
  bool contains(std::uint32_t shard_id) const;

  /// Number of member shards.
  std::size_t size() const { return shards_.size(); }
  /// Member shard ids, ascending.
  const std::vector<std::uint32_t>& shards() const { return shards_; }

  /// Owning shard for a user id: the first vnode point clockwise from the
  /// user's hash. The ring must be non-empty.
  std::uint32_t owner(std::uint64_t user_id) const;

  const RingConfig& config() const { return config_; }

 private:
  RingConfig config_;
  std::vector<std::uint32_t> shards_;  // ascending shard ids
  /// (point hash, shard id), sorted. Shard id breaks the (astronomically
  /// unlikely) hash tie so the ring is a pure function of membership.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
};

}  // namespace clear::shard
