// Property test for the SIMD kernel determinism contract (kernels.hpp):
// every kernel in every supported ISA table produces results BIT-IDENTICAL
// to the scalar reference for finite inputs. The sweep drives random shapes
// chosen to straddle every vector width and tail path (1-element ragged
// ends, exact 8/16-lane multiples, the CLEAR layer shapes themselves) and
// compares:
//
//   - int8 GEMM by exact integer equality (associativity makes this free),
//   - fp32 paths by ULP distance with a bound of ZERO — the contract is
//     stronger than "close", it is bit-equality, because a looser bound
//     would fork goldens between hosts that auto-detect different ISAs,
//   - the fp16 round trip bit-exactly across normals, subnormals, RNE
//     ties, overflow-to-inf, and signed zeros.
//
// The suite also runs under the UBSAN leg of tools/run_sanitizer_tests.sh:
// the fp16 bit-twiddling and the packed int8 conversions are exactly the
// kind of code where UB hides.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "tensor/kernels/kernels.hpp"

namespace clear::kernels {
namespace {

/// ULP distance between two finite floats of the same sign ordering;
/// returns a huge value on sign/bit-class mismatch so failures are loud.
std::int64_t ulp_distance(float a, float b) {
  std::int32_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  // Map the sign-magnitude float ordering onto a monotonic integer line.
  const auto key = [](std::int32_t i) {
    return i < 0 ? std::int64_t{std::numeric_limits<std::int32_t>::min()} - i
                 : std::int64_t{i};
  };
  const std::int64_t d = key(ia) - key(ib);
  return d < 0 ? -d : d;
}

constexpr std::int64_t kMaxUlp = 0;  ///< The contract: bit-identical.

void expect_bits_equal(const std::vector<float>& ref,
                       const std::vector<float>& got, const char* what,
                       Isa isa) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (std::memcmp(&ref[i], &got[i], sizeof(float)) == 0) continue;
    ADD_FAILURE() << what << " [" << isa_name(isa) << "] diverges at " << i
                  << ": scalar=" << ref[i] << " vs " << got[i]
                  << " (ulp distance " << ulp_distance(ref[i], got[i])
                  << ", bound " << kMaxUlp << ")";
    return;
  }
}

std::vector<float> random_floats(Rng& rng, std::size_t n, float scale = 2.0f) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.normal(0.0, scale));
  return v;
}

std::vector<std::int8_t> random_int8(Rng& rng, std::size_t n) {
  std::vector<std::int8_t> v(n);
  for (std::int8_t& x : v)
    x = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  return v;
}

/// Shapes that exercise the 16-wide strip, the 8-wide strip, the scalar
/// column tail, the row-block tail, and k parity (the int8 kernel pairs k).
struct Shape {
  std::size_t m, k, n;
};
const Shape kShapes[] = {
    {1, 1, 1},     {1, 3, 7},      {2, 5, 8},     {3, 4, 9},
    {4, 8, 15},    {5, 7, 16},     {4, 9, 17},    {7, 16, 24},
    {8, 11, 31},   {6, 9, 1476},   {12, 54, 366}, {16, 360, 128},
    {16, 32, 128}, {13, 21, 40},   {4, 1, 33},    {9, 2, 47},
};

std::vector<Isa> vector_isas() {
  std::vector<Isa> out;
  for (const Isa isa : supported_isas())
    if (isa != Isa::kScalar) out.push_back(isa);
  return out;
}

TEST(KernelEquivalence, GemmF32AllEpilogues) {
  Rng rng(2024);
  const KernelTable& oracle = table(Isa::kScalar);
  for (const Shape& s : kShapes) {
    const std::vector<float> a = random_floats(rng, s.m * s.k);
    const std::vector<float> b = random_floats(rng, s.k * s.n);
    const std::vector<float> bias_col = random_floats(rng, s.n);
    const std::vector<float> bias_row = random_floats(rng, s.m);
    // GEMM accumulates on top of C: seed it with nonzero contents.
    const std::vector<float> c0 = random_floats(rng, s.m * s.n, 0.5f);

    const Epilogue eps[] = {
        {BiasMode::kPerCol, nullptr, Activation::kNone},
        {BiasMode::kPerCol, bias_col.data(), Activation::kNone},
        {BiasMode::kPerRow, bias_row.data(), Activation::kNone},
        {BiasMode::kPerCol, nullptr, Activation::kRelu},
        {BiasMode::kPerCol, bias_col.data(), Activation::kRelu},
        {BiasMode::kPerRow, bias_row.data(), Activation::kRelu},
    };
    for (std::size_t e = 0; e <= std::size(eps); ++e) {
      const Epilogue* ep = e == 0 ? nullptr : &eps[e - 1];
      std::vector<float> ref = c0;
      oracle.gemm_f32(a.data(), b.data(), ref.data(), s.m, s.k, s.n, ep);
      for (const Isa isa : vector_isas()) {
        std::vector<float> got = c0;
        table(isa).gemm_f32(a.data(), b.data(), got.data(), s.m, s.k, s.n,
                            ep);
        expect_bits_equal(ref, got, "gemm_f32", isa);
      }
    }
  }
}

TEST(KernelEquivalence, GemmF32ZeroEntriesHitSkipPath) {
  // The scalar oracle skips k-steps whose A entry is +0; the vector paths
  // do not. The contract holds because +0 contributions cannot change any
  // accumulator bit. Force many zeros (and some -0) to pin that reasoning.
  Rng rng(77);
  const Shape s{5, 24, 19};
  std::vector<float> a = random_floats(rng, s.m * s.k);
  for (std::size_t i = 0; i < a.size(); i += 2) a[i] = 0.0f;
  a[1] = -0.0f;
  const std::vector<float> b = random_floats(rng, s.k * s.n);
  const std::vector<float> c0 = random_floats(rng, s.m * s.n, 0.25f);
  std::vector<float> ref = c0;
  table(Isa::kScalar)
      .gemm_f32(a.data(), b.data(), ref.data(), s.m, s.k, s.n, nullptr);
  for (const Isa isa : vector_isas()) {
    std::vector<float> got = c0;
    table(isa).gemm_f32(a.data(), b.data(), got.data(), s.m, s.k, s.n,
                        nullptr);
    expect_bits_equal(ref, got, "gemm_f32(sparse)", isa);
  }
}

TEST(KernelEquivalence, GemmI8Exact) {
  Rng rng(4096);
  for (const Shape& s : kShapes) {
    const std::vector<std::int8_t> a = random_int8(rng, s.m * s.k);
    const std::vector<std::int8_t> b = random_int8(rng, s.k * s.n);
    std::vector<std::int32_t> ref(s.m * s.n);
    table(Isa::kScalar)
        .gemm_i8(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
    for (const Isa isa : vector_isas()) {
      std::vector<std::int32_t> got(s.m * s.n, -1);
      table(isa).gemm_i8(a.data(), b.data(), got.data(), s.m, s.k, s.n);
      EXPECT_EQ(ref, got) << "gemm_i8 " << isa_name(isa) << " at m=" << s.m
                          << " k=" << s.k << " n=" << s.n;
    }
  }
}

TEST(KernelEquivalence, GemmI8ExtremesAndSaturationRange) {
  // All-extreme operands maximize every intermediate the AVX2 pair-madd
  // path produces (127*127*2 per VPMADDWD lane).
  for (const std::size_t k : {1u, 2u, 3u, 31u, 64u}) {
    const Shape s{5, k, 23};
    std::vector<std::int8_t> a(s.m * s.k), b(s.k * s.n);
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = i % 2 ? 127 : -127;
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = i % 3 ? -127 : 127;
    std::vector<std::int32_t> ref(s.m * s.n);
    table(Isa::kScalar)
        .gemm_i8(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
    for (const Isa isa : vector_isas()) {
      std::vector<std::int32_t> got(s.m * s.n);
      table(isa).gemm_i8(a.data(), b.data(), got.data(), s.m, s.k, s.n);
      EXPECT_EQ(ref, got) << "gemm_i8 extremes " << isa_name(isa)
                          << " k=" << k;
    }
  }
}

// Sizes straddling the 8-lane (AVX2) and 4-lane (NEON) widths plus ragged
// tails; 1476 is one flattened feature map, the real elementwise size.
const std::size_t kElemSizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33,
                                  40, 1476};

TEST(KernelEquivalence, ElementwiseOps) {
  Rng rng(9001);
  for (const std::size_t n : kElemSizes) {
    const std::vector<float> x0 = random_floats(rng, n);
    const std::vector<float> y0 = random_floats(rng, n);
    struct Op {
      const char* name;
      std::function<void(const KernelTable&, float*)> run;
    };
    const Op ops[] = {
        {"add_f32",
         [&](const KernelTable& kt, float* a) { kt.add_f32(a, y0.data(), n); }},
        {"sub_f32",
         [&](const KernelTable& kt, float* a) { kt.sub_f32(a, y0.data(), n); }},
        {"mul_f32",
         [&](const KernelTable& kt, float* a) { kt.mul_f32(a, y0.data(), n); }},
        {"axpy_f32",
         [&](const KernelTable& kt, float* a) {
           kt.axpy_f32(a, 0.37f, y0.data(), n);
         }},
        {"scale_f32",
         [&](const KernelTable& kt, float* a) { kt.scale_f32(a, -1.83f, n); }},
        {"add_scalar_f32",
         [&](const KernelTable& kt, float* a) {
           kt.add_scalar_f32(a, 0.61f, n);
         }},
    };
    for (const Op& op : ops) {
      std::vector<float> ref = x0;
      op.run(table(Isa::kScalar), ref.data());
      for (const Isa isa : vector_isas()) {
        std::vector<float> got = x0;
        op.run(table(isa), got.data());
        expect_bits_equal(ref, got, op.name, isa);
      }
    }
  }
}

TEST(KernelEquivalence, BiasRowsAndRelu) {
  Rng rng(314);
  for (const std::size_t n : kElemSizes) {
    const std::size_t m = 3;
    const std::vector<float> a0 = random_floats(rng, m * n);
    const std::vector<float> bias = random_floats(rng, n);
    std::vector<float> ref = a0;
    table(Isa::kScalar).bias_rows_f32(ref.data(), bias.data(), m, n);
    for (const Isa isa : vector_isas()) {
      std::vector<float> got = a0;
      table(isa).bias_rows_f32(got.data(), bias.data(), m, n);
      expect_bits_equal(ref, got, "bias_rows_f32", isa);
    }

    // relu with and without the backward mask; include exact zeros and -0.
    std::vector<float> x = random_floats(rng, n);
    x[0] = 0.0f;
    if (n > 1) x[1] = -0.0f;
    std::vector<float> yr(n), mr(n), yv(n), mv(n);
    table(Isa::kScalar).relu_f32(x.data(), yr.data(), mr.data(), n);
    for (const Isa isa : vector_isas()) {
      table(isa).relu_f32(x.data(), yv.data(), mv.data(), n);
      expect_bits_equal(yr, yv, "relu_f32.y", isa);
      expect_bits_equal(mr, mv, "relu_f32.mask", isa);
      std::vector<float> y2(n, -1.0f);
      table(isa).relu_f32(x.data(), y2.data(), nullptr, n);
      expect_bits_equal(yr, y2, "relu_f32.nomask", isa);
    }
  }
}

TEST(KernelEquivalence, QuantizePaths) {
  Rng rng(555);
  const float scale = 0.043f;
  for (const std::size_t n : kElemSizes) {
    std::vector<float> x = random_floats(rng, n, 3.0f);
    // Saturation and RNE-tie cases: exact half-step multiples round to
    // even in both std::nearbyint and VROUNDPS/vrndnq.
    if (n >= 5) {
      x[0] = 127.5f * scale;   // tie at the clamp edge
      x[1] = -400.0f;          // saturates at -127
      x[2] = 400.0f;           // saturates at +127
      x[3] = 0.5f * scale;     // tie -> 0 (even)
      x[4] = 1.5f * scale;     // tie -> 2 (even)
    }
    std::vector<std::int8_t> qr(n), qv(n);
    table(Isa::kScalar).quantize_i8(x.data(), scale, qr.data(), n);
    for (const Isa isa : vector_isas()) {
      std::fill(qv.begin(), qv.end(), 99);
      table(isa).quantize_i8(x.data(), scale, qv.data(), n);
      EXPECT_EQ(qr, qv) << "quantize_i8 " << isa_name(isa) << " n=" << n;
    }

    std::vector<std::int32_t> acc(n);
    for (std::size_t i = 0; i < n; ++i)
      acc[i] = static_cast<std::int32_t>(rng.uniform_int(-500000, 500000));
    std::vector<float> dr(n), dv(n);
    table(Isa::kScalar).dequantize_i32(acc.data(), scale, dr.data(), n);
    for (const Isa isa : vector_isas()) {
      table(isa).dequantize_i32(acc.data(), scale, dv.data(), n);
      expect_bits_equal(dr, dv, "dequantize_i32", isa);
    }

    std::vector<float> fr = x, fv;
    table(Isa::kScalar).fake_quant_f32(fr.data(), scale, n);
    for (const Isa isa : vector_isas()) {
      fv = x;
      table(isa).fake_quant_f32(fv.data(), scale, n);
      expect_bits_equal(fr, fv, "fake_quant_f32", isa);
    }
  }
}

TEST(KernelEquivalence, Fp16RoundTripEdgeCases) {
  // Normals, RNE ties, fp16 subnormals, underflow-to-zero, overflow-to-inf,
  // signed zeros, and the largest finite fp16 (65504).
  std::vector<float> edge = {
      0.0f,        -0.0f,       1.0f,          -1.0f,      0.333333f,
      1.0009766f,  // halfway between two fp16 mantissa steps (tie)
      1.0029297f,  // the next tie up
      65504.0f,    // fp16 max
      65520.0f,    // rounds to inf (tie at the overflow boundary)
      70000.0f,    // clean overflow -> inf
      -70000.0f,   5.9604645e-8f,  // fp16 min subnormal
      2.9802322e-8f,               // half of it: tie -> 0
      8.9406967e-8f,               // 1.5x: tie -> 2 subnormal steps
      6.0975552e-5f,               // fp16 min normal boundary region
      1e-10f,      -1e-10f,        3.1415927f, -2.7182818f};
  Rng rng(808);
  for (int i = 0; i < 500; ++i)
    edge.push_back(static_cast<float>(rng.normal(0.0, 100.0)));
  for (const std::size_t n :
       {edge.size(), std::size_t{7}, std::size_t{8}, std::size_t{9}}) {
    std::vector<float> ref(edge.begin(), edge.begin() + n);
    table(Isa::kScalar).fp16_round_f32(ref.data(), n);
    for (const Isa isa : vector_isas()) {
      std::vector<float> got(edge.begin(), edge.begin() + n);
      table(isa).fp16_round_f32(got.data(), n);
      expect_bits_equal(ref, got, "fp16_round_f32", isa);
    }
  }
}

TEST(KernelEquivalence, DispatchReportsSupportedIsas) {
  const std::vector<Isa> isas = supported_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), Isa::kScalar);
  for (const Isa isa : isas) {
    EXPECT_TRUE(isa_supported(isa));
    EXPECT_EQ(table(isa).isa, isa);
    Isa parsed;
    EXPECT_TRUE(parse_isa(isa_name(isa), parsed));
    EXPECT_EQ(parsed, isa);
  }
  Isa unused = Isa::kScalar;
  EXPECT_FALSE(parse_isa("sse9", unused));
  EXPECT_FALSE(parse_isa("", unused));
  EXPECT_FALSE(parse_isa("AVX2", unused));  // names are lower-case, exact
}

}  // namespace
}  // namespace clear::kernels
