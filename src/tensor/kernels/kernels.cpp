// Kernel dispatcher: ISA parsing, CPUID probing, and the process-wide
// active-table selection (CLEAR_KERNEL / --kernel / detect_best()).
#include "tensor/kernels/kernels.hpp"

#include <atomic>
#include <cstdlib>

#include "common/error.hpp"
#include "tensor/kernels/table_internal.hpp"

namespace clear::kernels {

namespace detail {

bool cpu_has_avx2_f16c() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("f16c");
#else
  return false;
#endif
}

namespace {

const KernelTable* table_for(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return scalar_table();
    case Isa::kAvx2:
      return avx2_table();
    case Isa::kNeon:
      return neon_table();
  }
  return nullptr;
}

/// The active table. Null until first use; resolved lazily so that env
/// handling and CPUID run once, after main() starts.
std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* resolve_default() {
  if (const char* env = std::getenv("CLEAR_KERNEL"); env && *env) {
    Isa isa;
    if (!parse_isa(env, isa))
      throw Error(std::string("CLEAR_KERNEL: unknown kernel '") + env +
                  "' (expected scalar, avx2, or neon)");
    if (!isa_supported(isa))
      throw Error(std::string("CLEAR_KERNEL: kernel '") + env +
                  "' is not supported on this host");
    return table_for(isa);
  }
  return table_for(detect_best());
}

}  // namespace

}  // namespace detail

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

bool parse_isa(std::string_view s, Isa& out) {
  if (s == "scalar") {
    out = Isa::kScalar;
  } else if (s == "avx2") {
    out = Isa::kAvx2;
  } else if (s == "neon") {
    out = Isa::kNeon;
  } else {
    return false;
  }
  return true;
}

bool isa_supported(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return detail::avx2_table() != nullptr && detail::cpu_has_avx2_f16c();
    case Isa::kNeon:
      // NEON availability is a compile-target property, not a runtime one.
      return detail::neon_table() != nullptr;
  }
  return false;
}

std::vector<Isa> supported_isas() {
  std::vector<Isa> out{Isa::kScalar};
  if (isa_supported(Isa::kAvx2)) out.push_back(Isa::kAvx2);
  if (isa_supported(Isa::kNeon)) out.push_back(Isa::kNeon);
  return out;
}

Isa detect_best() {
  if (isa_supported(Isa::kAvx2)) return Isa::kAvx2;
  if (isa_supported(Isa::kNeon)) return Isa::kNeon;
  return Isa::kScalar;
}

const KernelTable& active() {
  const KernelTable* t = detail::g_active.load(std::memory_order_acquire);
  if (!t) {
    t = detail::resolve_default();
    // Benign race: every racer resolves to the same table.
    detail::g_active.store(t, std::memory_order_release);
  }
  return *t;
}

Isa active_isa() { return active().isa; }

void set_isa(Isa isa) {
  if (!isa_supported(isa))
    throw Error(std::string("--kernel: '") + isa_name(isa) +
                "' is not supported on this host");
  detail::g_active.store(detail::table_for(isa), std::memory_order_release);
}

const KernelTable& table(Isa isa) {
  if (!isa_supported(isa))
    throw Error(std::string("kernel table '") + isa_name(isa) +
                "' is not supported on this host");
  return *detail::table_for(isa);
}

}  // namespace clear::kernels
