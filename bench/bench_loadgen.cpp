// bench_loadgen — wire-level serving latency under open-loop load.
//
// Self-contained: fits a small pipeline in memory, starts the epoll front
// end (src/net) on an ephemeral loopback port in a background thread, and
// drives it with the deterministic open-loop load generator. What the
// kernels benchmark is to the SIMD library, this is to the wire: the
// latency distribution (p50/p90/p99/p99.9) and delivery ratios of the whole
// socket -> decode -> session -> micro-batch -> reply path, measured
// coordinated-omission-free from hashed scheduled send times.
//
// Flags: --connections=4 --lg-requests=192 --rate=300 --burstiness=2
//        --lg-users=8 --lg-seed=1 [dataset flags: --seed --volunteers
//        --trials --epochs --ft-epochs --quick]
//        --json=FILE  write the clear-bench-loadgen-v1 report (ratio gate
//                     for tools/bench_regress.py)
//
// Gate: every sent request must be answered (dropped == 0) — exit 1
// otherwise. Latency numbers are reported, not gated: absolute wall time is
// machine-dependent; the regression gate compares the delivery ratios.
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "clear/pipeline.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "serve/server.hpp"

using namespace clear;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  core::ClearConfig config = bench::config_from_args(args);
  config.data.n_volunteers =
      static_cast<std::size_t>(args.get_int("volunteers", 6));
  config.data.trials_per_volunteer =
      static_cast<std::size_t>(args.get_int("trials", 4));
  config.train.epochs = static_cast<std::size_t>(args.get_int("epochs", 1));
  config.finetune.epochs =
      static_cast<std::size_t>(args.get_int("ft-epochs", 1));
  config.finalize();

  const wemac::WemacDataset d = wemac::generate_wemac(config.data);
  std::vector<std::size_t> users;
  for (std::size_t u = 0; u + 2 < d.n_volunteers(); ++u) users.push_back(u);
  std::printf("fitting pipeline on %zu of %zu volunteers...\n", users.size(),
              d.n_volunteers());
  std::fflush(stdout);
  core::ClearPipeline pipeline(config);
  pipeline.fit(d, users);

  serve::ServeConfig sc;
  sc.batch.max_batch = static_cast<std::size_t>(args.get_int("max-batch", 8));
  sc.session.ft_maps = 4;
  serve::Server server(serve::ModelSource::from_pipeline(pipeline), sc);

  net::NetServerConfig nc;
  nc.listen.port = 0;  // Ephemeral: parallel bench runs cannot collide.
  net::NetServer net_server(server, nc);

  std::thread server_thread([&net_server] { net_server.run(); });

  net::LoadgenConfig lc;
  lc.target.port = net_server.port();
  lc.connections =
      static_cast<std::size_t>(args.get_int("connections", 4));
  lc.requests = static_cast<std::size_t>(args.get_int("lg-requests", 192));
  lc.rate_rps = args.get_double("rate", 300.0);
  lc.burstiness = args.get_double("burstiness", 2.0);
  lc.seed = static_cast<std::uint64_t>(args.get_int("lg-seed", 1));
  lc.users = static_cast<std::size_t>(args.get_int("lg-users", 8));
  lc.features = config.model.feature_dim;
  lc.window = config.model.window_count;
  lc.shutdown_after = true;

  const net::LoadgenReport report = net::run_loadgen(lc);
  server_thread.join();

  std::printf(
      "sent=%zu received=%zu ok=%zu shed=%zu dropped=%zu wall=%.3fs\n",
      report.sent, report.received, report.ok, report.shed, report.dropped,
      report.wall_seconds);
  std::printf("offered=%.1f rps achieved=%.1f rps\n", report.offered_rps,
              report.achieved_rps);
  std::printf(
      "latency: p50=%.0fus p90=%.0fus p99=%.0fus p99.9=%.0fus max=%.0fus\n",
      report.latency.p50_us, report.latency.p90_us, report.latency.p99_us,
      report.latency.p999_us, report.latency.max_us);

  const std::string json_path = args.get("json", "");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    CLEAR_CHECK_MSG(f != nullptr, "cannot write " << json_path);
    const std::string json = report.json(lc);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("report written to %s\n", json_path.c_str());
  }

  if (report.dropped != 0 || report.received != report.sent) {
    std::printf("FAIL: %zu of %zu requests went unanswered\n", report.dropped,
                report.sent);
    return 1;
  }
  std::printf("PASS: every request answered over the wire\n");
  return 0;
}
