// Tiny command-line parser for the bench harnesses, examples, and the CLI
// tool. Accepts `--key=value` and `--key value` flags, `--flag` (boolean
// true), and bare positional arguments (e.g. sub-command names).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace clear {

class CliArgs {
 public:
  /// Parse argv; throws clear::Error on malformed arguments.
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Name of the binary (argv[0]).
  const std::string& program() const { return program_; }

  /// Bare (non --flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// The flags every clear-cli subcommand and bench harness honours:
///
///   --threads=N      0 = all hardware threads; default 1 (or the
///                    CLEAR_NUM_THREADS environment variable when set).
///   --kernel=K       SIMD kernel table (scalar | avx2 | neon); default
///                    auto-detect via CPUID, or the CLEAR_KERNEL
///                    environment variable. Hard error when K is not
///                    runnable on this host. Kernel choice never changes
///                    results, only wall-clock time.
///   --metrics-out=F  Enable the observability registry for the run and
///                    write the JSON snapshot + Chrome trace to F at exit.
///
/// apply() parses all three, configures the parallel runtime / kernel
/// dispatch / metrics registry, and returns the resolved values; finish()
/// disables recording and writes the snapshot when a path was given.
/// Centralising this keeps the flags' behaviour identical across every
/// entry point.
struct CommonFlags {
  std::size_t threads = 1;  ///< Resolved process-wide thread count.
  std::string kernel;       ///< Resolved kernel ISA name (e.g. "avx2").
  std::string metrics_out;  ///< Snapshot path ("" = metrics disabled).

  /// Parse + apply. `default_metrics_out` seeds --metrics-out for commands
  /// that default it on (e.g. `clear-cli profile`); an explicit flag wins.
  static CommonFlags apply(const CliArgs& args,
                           const std::string& default_metrics_out = "");

  /// Stop recording and write the snapshot if --metrics-out was given.
  /// Returns true when a file was written.
  bool finish() const;

  /// Usage text describing both flags (for --help / usage printouts).
  static const char* help();
};

}  // namespace clear
