// Physiological response archetypes for the synthetic WEMAC substrate.
//
// The real WEMAC dataset is access-gated, so this module synthesizes a
// population with the property the CLEAR methodology depends on: users fall
// into a small number of groups with *qualitatively different* autonomic
// responses to fear, while users within a group differ only by parameter
// jitter. The four archetypes below are modeled on the affective-computing
// literature: electrodermally reactive responders, cardiac (sympathetic)
// responders, blunted responders, and vagal/"freeze" responders whose heart
// rate *decelerates* under threat. The archetype identity is ground truth
// for diagnostics only — no algorithm in src/clear ever reads it.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace clear::wemac {

inline constexpr std::size_t kNumArchetypes = 4;

/// Population-level parameters of one response archetype. All per-user
/// parameters are sampled as N(value, jitter * |value|) unless noted.
struct ArchetypeParams {
  std::string name;

  // -- Cardiac --
  double hr_base = 72.0;        ///< Resting heart rate [bpm].
  double hr_fear_delta = 10.0;  ///< HR change at full fear arousal [bpm].
  double hr_arousal_delta = 6.0;///< HR change for non-fear arousal [bpm].
  double hrv_sd = 0.045;        ///< Beat-to-beat IBI modulation depth [s].
  double hrv_fear_scale = 0.7;  ///< HRV multiplier under fear (<1 = suppress).
  double resp_rate = 0.25;      ///< Respiratory rate [Hz] (HF component).
  double bvp_amp = 1.0;         ///< Pulse amplitude [a.u.].
  double bvp_amp_fear_scale = 0.85; ///< Peripheral vasoconstriction factor.

  // -- Electrodermal --
  double scr_rate_base = 3.0;   ///< Spontaneous SCR rate [events/min].
  double scr_rate_fear = 9.0;   ///< SCR rate at full fear arousal [events/min].
  double scr_amp = 0.35;        ///< Mean SCR amplitude [uS].
  double scr_amp_fear_scale = 1.6; ///< SCR amplitude multiplier under fear.
  double gsr_tonic = 6.0;       ///< Tonic skin conductance level [uS].
  double gsr_fear_slope = 0.02; ///< Tonic drift under fear [uS/s].

  // -- Thermal --
  double skt_base = 33.5;       ///< Baseline skin temperature [C].
  double skt_fear_drop = 0.5;   ///< Temperature drop at full fear [C].

  // -- Noise --
  double bvp_noise = 0.06;      ///< BVP additive noise sigma.
  double gsr_noise = 0.03;      ///< GSR additive noise sigma [uS].
  double skt_noise = 0.01;      ///< SKT additive noise sigma [C].

  // -- Inter-user variability within the archetype --
  double jitter = 0.12;         ///< Relative sigma for per-user sampling.
  /// Log-normal sigma of the per-user, per-channel response gains (how
  /// strongly this user's fear response expresses in the cardiac,
  /// electrodermal, and thermal channels). This idiosyncratic re-weighting
  /// is what gives on-user fine-tuning its headroom over the cluster model.
  double channel_gain_sigma = 0.35;
};

/// The four default archetypes. Index is the ground-truth group id.
const std::array<ArchetypeParams, kNumArchetypes>& default_archetypes();

/// Mixture weights producing the paper's reported cluster sizes
/// (17/13/7/7 of 44 users assigned, §IV-A).
const std::array<double, kNumArchetypes>& default_archetype_weights();

}  // namespace clear::wemac
