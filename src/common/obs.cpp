#include "common/obs.hpp"

#include <bit>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "common/error.hpp"

namespace clear::obs {

namespace {

std::atomic<bool> g_enabled{false};

/// Trace epoch: fixed at first use so every timestamp in one process shares
/// one origin regardless of when recording was switched on.
std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// Dense thread ids in order of first span completion (0, 1, 2, ...).
std::uint32_t dense_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

constexpr std::size_t kTraceCapacity = 1 << 20;

struct Registry {
  std::mutex mutex;
  // std::map: references handed out must stay valid forever, and export
  // wants deterministic (sorted) key order.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;

  std::mutex trace_mutex;
  std::vector<TraceEvent> trace;
  std::uint64_t trace_dropped = 0;
};

Registry& registry() {
  static Registry* r = new Registry();  // never destroyed: call sites may
  return *r;                            // record during static teardown
}

template <typename T>
T& lookup(std::map<std::string, std::unique_ptr<T>, std::less<>>& table,
          std::string_view name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  auto it = table.find(name);
  if (it == table.end())
    it = table.emplace(std::string(name), std::make_unique<T>()).first;
  return *it->second;
}

/// CAS-accumulate `v` into an atomic double stored as bits.
void atomic_add_double(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t old = bits.load(std::memory_order_relaxed);
  while (true) {
    const double cur = std::bit_cast<double>(old);
    const std::uint64_t want = std::bit_cast<std::uint64_t>(cur + v);
    if (bits.compare_exchange_weak(old, want, std::memory_order_relaxed))
      return;
  }
}

void atomic_min_double(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t old = bits.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(old) > v) {
    if (bits.compare_exchange_weak(old, std::bit_cast<std::uint64_t>(v),
                                   std::memory_order_relaxed))
      return;
  }
}

void atomic_max_double(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t old = bits.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(old) < v) {
    if (bits.compare_exchange_weak(old, std::bit_cast<std::uint64_t>(v),
                                   std::memory_order_relaxed))
      return;
  }
}

/// Minimal JSON string escaping (names are dotted identifiers, but a bad
/// name must not corrupt the file).
void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  if (on) trace_epoch();  // pin the epoch before the first span
  g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

void reset() {
  Registry& r = registry();
  {
    const std::lock_guard<std::mutex> lock(r.mutex);
    for (auto& [name, c] : r.counters) c->reset();
    for (auto& [name, g] : r.gauges) g->reset();
    for (auto& [name, h] : r.histograms) h->reset();
  }
  const std::lock_guard<std::mutex> lock(r.trace_mutex);
  r.trace.clear();
  r.trace_dropped = 0;
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

void Gauge::set(double v) {
  bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
}

double Gauge::value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram()
    : min_bits_(std::bit_cast<std::uint64_t>(
          std::numeric_limits<double>::infinity())),
      max_bits_(std::bit_cast<std::uint64_t>(
          -std::numeric_limits<double>::infinity())) {}

std::size_t Histogram::bucket_index(double v) {
  // Pinned degenerate mapping (never ilogb, whose result for 0/inf/NaN is
  // implementation-defined): zero, negatives, -inf, and NaN underflow to
  // bucket 0; +inf saturates into the top bucket.
  if (std::isnan(v)) return 0;
  if (!(v >= 1.0)) return 0;  // <1, negative, and -inf land in bucket 0
  if (std::isinf(v)) return kBuckets - 1;
  const int e = std::ilogb(v);  // floor(log2(v)) for finite v >= 1
  const std::size_t b = static_cast<std::size_t>(e) + 1;
  return b < kBuckets ? b : kBuckets - 1;
}

double Histogram::bucket_limit(std::size_t b) {
  return std::ldexp(1.0, static_cast<int>(b));
}

void Histogram::record(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  // Only finite values fold into the summary statistics: a single NaN would
  // poison the CAS-accumulated sum forever, and ±inf would wedge min/max at
  // sentinels no finite sample could ever displace.
  if (std::isfinite(v)) {
    atomic_add_double(sum_bits_, v);
    atomic_min_double(min_bits_, v);
    atomic_max_double(max_bits_, v);
  }
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::min() const {
  return count() == 0
             ? 0.0
             : std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
}

double Histogram::max() const {
  return count() == 0
             ? 0.0
             : std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

void Histogram::merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  count_.fetch_add(other.count, std::memory_order_relaxed);
  // Mirror record()'s finite-only rule so a snapshot whose summary fields
  // were pinned to 0 by the exporter cannot poison this side's statistics.
  if (std::isfinite(other.sum)) atomic_add_double(sum_bits_, other.sum);
  if (std::isfinite(other.min)) atomic_min_double(min_bits_, other.min);
  if (std::isfinite(other.max)) atomic_max_double(max_bits_, other.max);
  const std::size_t n = std::min<std::size_t>(other.buckets.size(), kBuckets);
  for (std::size_t b = 0; b < n; ++b)
    if (other.buckets[b] > 0)
      buckets_[b].fetch_add(other.buckets[b], std::memory_order_relaxed);
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
  min_bits_.store(std::bit_cast<std::uint64_t>(
                      std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
  max_bits_.store(std::bit_cast<std::uint64_t>(
                      -std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry lookups
// ---------------------------------------------------------------------------

Counter& counter(std::string_view name) {
  return lookup(registry().counters, name);
}

Gauge& gauge(std::string_view name) { return lookup(registry().gauges, name); }

Histogram& histogram(std::string_view name) {
  return lookup(registry().histograms, name);
}

RegisteredNames registered_names() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  RegisteredNames out;
  out.counters.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) out.counters.push_back(name);
  out.gauges.reserve(r.gauges.size());
  for (const auto& [name, g] : r.gauges) out.gauges.push_back(name);
  out.histograms.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms) out.histograms.push_back(name);
  return out;
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

void ScopedSpan::begin(const char* name) {
  name_ = name;
  start_us_ = now_us();
  active_ = true;
}

void ScopedSpan::end() {
  active_ = false;
  const std::uint64_t end_us = now_us();
  const std::uint64_t dur = end_us - start_us_;
  // Duration histogram regardless of trace-buffer pressure.
  histogram(std::string("span.") + name_ + "_us")
      .record(static_cast<double>(dur));
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.trace_mutex);
  if (r.trace.size() >= kTraceCapacity) {
    ++r.trace_dropped;
    return;
  }
  TraceEvent e;
  e.name = name_;
  e.ts_us = start_us_;
  e.dur_us = dur;
  e.tid = dense_thread_id();
  r.trace.push_back(std::move(e));
}

std::vector<TraceEvent> trace_events() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.trace_mutex);
  return r.trace;
}

std::size_t trace_capacity() { return kTraceCapacity; }

std::uint64_t dropped_trace_events() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.trace_mutex);
  return r.trace_dropped;
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

namespace {

std::string export_json(bool with_trace) {
  Registry& r = registry();
  std::string out;
  out.reserve(1 << 16);
  out += "{\n  \"traceEvents\": [";
  if (with_trace) {
    const std::lock_guard<std::mutex> lock(r.trace_mutex);
    for (std::size_t i = 0; i < r.trace.size(); ++i) {
      const TraceEvent& e = r.trace[i];
      out += i == 0 ? "\n" : ",\n";
      out += "    {\"name\": ";
      append_escaped(out, e.name);
      out += ", \"cat\": \"clear\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
      out += std::to_string(e.tid);
      out += ", \"ts\": ";
      out += std::to_string(e.ts_us);
      out += ", \"dur\": ";
      out += std::to_string(e.dur_us);
      out += "}";
    }
  }
  out += "\n  ],\n  \"displayTimeUnit\": \"ms\",\n";

  const std::lock_guard<std::mutex> lock(r.mutex);
  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : r.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": ";
    out += std::to_string(c->value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : r.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": ";
    out += format_double(g->value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : r.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": {\"count\": " + std::to_string(h->count());
    out += ", \"sum\": " + format_double(h->sum());
    out += ", \"min\": " + format_double(h->min());
    out += ", \"max\": " + format_double(h->max());
    out += ", \"mean\": " + format_double(h->mean());
    out += ", \"buckets\": [";
    // Only emit up to the highest non-empty bucket; the layout is fixed, so
    // omitted trailing buckets are unambiguously zero.
    std::size_t top = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
      if (h->bucket(b) > 0) top = b + 1;
    for (std::size_t b = 0; b < top; ++b) {
      if (b > 0) out += ", ";
      out += "{\"le\": " + format_double(Histogram::bucket_limit(b));
      out += ", \"count\": " + std::to_string(h->bucket(b)) + "}";
    }
    out += "]}";
  }
  out += "\n  },\n  \"droppedTraceEvents\": ";
  {
    const std::lock_guard<std::mutex> tlock(r.trace_mutex);
    out += std::to_string(r.trace_dropped);
  }
  out += "\n}\n";
  return out;
}

}  // namespace

std::string snapshot_json() { return export_json(/*with_trace=*/true); }

std::string metrics_json() { return export_json(/*with_trace=*/false); }

void write_snapshot(const std::string& path) {
  const std::string json = snapshot_json();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  CLEAR_CHECK_MSG(f != nullptr, "cannot open metrics file " << tmp);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  CLEAR_CHECK_MSG(ok, "short write to metrics file " << tmp);
  CLEAR_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                  "cannot rename " << tmp << " to " << path);
}

// ---------------------------------------------------------------------------
// Snapshot merge
// ---------------------------------------------------------------------------

namespace {

/// Minimal JSON value + recursive-descent parser, just enough to read the
/// exporter's own output (and reject anything malformed with an addressed
/// error). No dependency is available, and the grammar is tiny.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw;  ///< Number token text (exact u64 round-trips).
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value(0);
    skip_ws();
    CLEAR_CHECK_MSG(pos_ == text_.size(),
                    "metrics JSON: trailing bytes at offset " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    CLEAR_CHECK_MSG(pos_ < text_.size(),
                    "metrics JSON: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    CLEAR_CHECK_MSG(peek() == c, "metrics JSON: expected '"
                                     << c << "' at offset " << pos_
                                     << ", got '" << text_[pos_] << "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue value(int depth) {
    CLEAR_CHECK_MSG(depth < 32, "metrics JSON: nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.str = string();
        return v;
      }
      case 't':
      case 'f':
      case 'n': return literal();
      default: return number();
    }
  }

  JsonValue object(int depth) {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return v;
    }
  }

  JsonValue array(int depth) {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      v.items.push_back(value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      CLEAR_CHECK_MSG(pos_ < text_.size(),
                      "metrics JSON: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      CLEAR_CHECK_MSG(pos_ < text_.size(),
                      "metrics JSON: unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          CLEAR_CHECK_MSG(pos_ + 4 <= text_.size(),
                          "metrics JSON: short \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else CLEAR_CHECK_MSG(false, "metrics JSON: bad \\u escape");
          }
          // BMP-only UTF-8 encoding — metric names are ASCII identifiers,
          // this just keeps foreign escapes from corrupting the parse.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          CLEAR_CHECK_MSG(false, "metrics JSON: unknown escape '\\" << e
                                                                    << "'");
      }
    }
  }

  JsonValue literal() {
    JsonValue v;
    const auto match = [&](std::string_view word) {
      if (text_.substr(pos_, word.size()) != word) return false;
      pos_ += word.size();
      return true;
    };
    if (match("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
    } else if (match("false")) {
      v.kind = JsonValue::Kind::kBool;
    } else if (match("null")) {
      v.kind = JsonValue::Kind::kNull;
    } else {
      CLEAR_CHECK_MSG(false, "metrics JSON: bad literal at offset " << pos_);
    }
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    CLEAR_CHECK_MSG(pos_ > start, "metrics JSON: expected a value at offset "
                                      << start);
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.raw = std::string(text_.substr(start, pos_ - start));
    char* end = nullptr;
    v.number = std::strtod(v.raw.c_str(), &end);
    CLEAR_CHECK_MSG(end == v.raw.c_str() + v.raw.size(),
                    "metrics JSON: bad number '" << v.raw << "'");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::uint64_t as_u64(const JsonValue& v) {
  CLEAR_CHECK_MSG(v.kind == JsonValue::Kind::kNumber,
                  "metrics JSON: expected a number");
  // The exporter writes counters as plain decimal u64; round-trip through
  // the raw token so values past 2^53 stay exact.
  bool digits_only = !v.raw.empty();
  for (const char c : v.raw)
    digits_only = digits_only && std::isdigit(static_cast<unsigned char>(c));
  if (digits_only) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(v.raw.c_str(), &end, 10);
    if (end == v.raw.c_str() + v.raw.size()) return n;
  }
  CLEAR_CHECK_MSG(v.number >= 0.0, "metrics JSON: negative count");
  return static_cast<std::uint64_t>(v.number);
}

double as_double(const JsonValue& v) {
  CLEAR_CHECK_MSG(v.kind == JsonValue::Kind::kNumber,
                  "metrics JSON: expected a number");
  return v.number;
}

/// Map an exported bucket bound back onto the fixed layout: le must be
/// exactly 2^b for some b in [0, kBuckets).
std::size_t bucket_index_for_bound(double le) {
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
    if (Histogram::bucket_limit(b) == le) return b;
  CLEAR_CHECK_MSG(false, "metrics JSON: histogram bucket bound "
                             << le
                             << " is not a power of two in the fixed layout");
  return 0;  // Unreachable.
}

}  // namespace

ParsedSnapshot parse_snapshot(const std::string& json) {
  const JsonValue root = JsonParser(json).parse();
  CLEAR_CHECK_MSG(root.kind == JsonValue::Kind::kObject,
                  "metrics JSON: top level is not an object");
  ParsedSnapshot out;
  if (const JsonValue* counters = root.find("counters")) {
    CLEAR_CHECK_MSG(counters->kind == JsonValue::Kind::kObject,
                    "metrics JSON: 'counters' is not an object");
    for (const auto& [name, v] : counters->members)
      out.counters.emplace_back(name, as_u64(v));
  }
  if (const JsonValue* gauges = root.find("gauges")) {
    CLEAR_CHECK_MSG(gauges->kind == JsonValue::Kind::kObject,
                    "metrics JSON: 'gauges' is not an object");
    for (const auto& [name, v] : gauges->members)
      out.gauges.emplace_back(name, as_double(v));
  }
  if (const JsonValue* histograms = root.find("histograms")) {
    CLEAR_CHECK_MSG(histograms->kind == JsonValue::Kind::kObject,
                    "metrics JSON: 'histograms' is not an object");
    for (const auto& [name, v] : histograms->members) {
      CLEAR_CHECK_MSG(v.kind == JsonValue::Kind::kObject,
                      "metrics JSON: histogram '" << name
                                                  << "' is not an object");
      HistogramSnapshot h;
      if (const JsonValue* f = v.find("count")) h.count = as_u64(*f);
      if (const JsonValue* f = v.find("sum")) h.sum = as_double(*f);
      if (const JsonValue* f = v.find("min")) h.min = as_double(*f);
      if (const JsonValue* f = v.find("max")) h.max = as_double(*f);
      if (const JsonValue* buckets = v.find("buckets")) {
        CLEAR_CHECK_MSG(buckets->kind == JsonValue::Kind::kArray,
                        "metrics JSON: histogram '"
                            << name << "' buckets is not an array");
        for (const JsonValue& b : buckets->items) {
          CLEAR_CHECK_MSG(b.kind == JsonValue::Kind::kObject,
                          "metrics JSON: histogram '"
                              << name << "' bucket is not an object");
          const JsonValue* le = b.find("le");
          const JsonValue* count = b.find("count");
          CLEAR_CHECK_MSG(le != nullptr && count != nullptr,
                          "metrics JSON: histogram '"
                              << name << "' bucket misses le/count");
          const std::size_t idx = bucket_index_for_bound(as_double(*le));
          if (h.buckets.size() <= idx) h.buckets.resize(idx + 1, 0);
          h.buckets[idx] += as_u64(*count);
        }
      }
      out.histograms.emplace_back(name, std::move(h));
    }
  }
  return out;
}

ParsedSnapshot with_prefix(ParsedSnapshot snapshot, std::string_view prefix) {
  for (auto& [name, v] : snapshot.counters)
    name.insert(0, prefix);
  for (auto& [name, v] : snapshot.gauges)
    name.insert(0, prefix);
  for (auto& [name, v] : snapshot.histograms)
    name.insert(0, prefix);
  return snapshot;
}

void merge_snapshot(const ParsedSnapshot& snapshot) {
  for (const auto& [name, v] : snapshot.counters) counter(name).add(v);
  for (const auto& [name, v] : snapshot.gauges) gauge(name).set(v);
  for (const auto& [name, h] : snapshot.histograms) histogram(name).merge(h);
}

}  // namespace clear::obs
