#include "cluster/global_clustering.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace clear::cluster {
namespace {

/// Users drawn from `n_groups` latent groups; each user contributes several
/// noisy observations around their group center.
std::vector<std::vector<Point>> synthetic_users(
    std::size_t n_groups, std::size_t users_per_group,
    std::size_t obs_per_user, double noise, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> centers;
  for (std::size_t g = 0; g < n_groups; ++g)
    centers.push_back({static_cast<double>(g) * 8.0,
                       static_cast<double>(g % 2) * 8.0});
  std::vector<std::vector<Point>> users;
  for (std::size_t g = 0; g < n_groups; ++g) {
    for (std::size_t u = 0; u < users_per_group; ++u) {
      const Point user_center = {centers[g][0] + rng.normal(0.0, 0.8),
                                 centers[g][1] + rng.normal(0.0, 0.8)};
      std::vector<Point> obs;
      for (std::size_t o = 0; o < obs_per_user; ++o)
        obs.push_back({user_center[0] + rng.normal(0.0, noise),
                       user_center[1] + rng.normal(0.0, noise)});
      users.push_back(std::move(obs));
    }
  }
  return users;
}

TEST(UserRepresentation, MeansObservations) {
  const Point r = user_representation({{0, 0}, {2, 4}});
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.0);
  EXPECT_THROW(user_representation({}), Error);
}

TEST(GlobalClustering, RecoversLatentGroups) {
  const auto users = synthetic_users(3, 6, 10, 0.5, 1);
  GlobalClusteringConfig config;
  config.k = 3;
  Rng rng(2);
  const GlobalClusteringResult r = global_clustering(users, config, rng);
  // Same-group users share a cluster id.
  for (std::size_t g = 0; g < 3; ++g) {
    const std::size_t first = r.user_cluster[g * 6];
    for (std::size_t u = 0; u < 6; ++u)
      EXPECT_EQ(r.user_cluster[g * 6 + u], first) << "group " << g;
  }
}

TEST(GlobalClustering, ConvergesOnCleanData) {
  const auto users = synthetic_users(2, 8, 8, 0.3, 3);
  GlobalClusteringConfig config;
  config.k = 2;
  Rng rng(4);
  const GlobalClusteringResult r = global_clustering(users, config, rng);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.rounds_run, config.refinement_rounds);
}

TEST(GlobalClustering, MembersConsistentWithAssignment) {
  const auto users = synthetic_users(3, 5, 6, 0.6, 5);
  GlobalClusteringConfig config;
  config.k = 3;
  Rng rng(6);
  const GlobalClusteringResult r = global_clustering(users, config, rng);
  std::size_t total = 0;
  for (std::size_t c = 0; c < config.k; ++c) {
    for (const std::size_t u : r.clusters[c].members)
      EXPECT_EQ(r.user_cluster[u], c);
    total += r.clusters[c].members.size();
  }
  EXPECT_EQ(total, users.size());
}

TEST(GlobalClustering, SubCentroidCountBounded) {
  const auto users = synthetic_users(2, 4, 5, 0.5, 7);
  GlobalClusteringConfig config;
  config.k = 2;
  config.sub_clusters = 3;
  Rng rng(8);
  const GlobalClusteringResult r = global_clustering(users, config, rng);
  for (const ClusterModel& c : r.clusters) {
    EXPECT_GE(c.sub_centroids.size(), 1u);
    EXPECT_LE(c.sub_centroids.size(), 3u);
    for (const Point& sc : c.sub_centroids) EXPECT_EQ(sc.size(), 2u);
  }
}

TEST(GlobalClustering, CentroidNearMemberMean) {
  const auto users = synthetic_users(2, 6, 10, 0.4, 9);
  GlobalClusteringConfig config;
  config.k = 2;
  Rng rng(10);
  const GlobalClusteringResult r = global_clustering(users, config, rng);
  for (const ClusterModel& c : r.clusters) {
    ASSERT_FALSE(c.members.empty());
    Point mean(2, 0.0);
    for (const std::size_t u : c.members) {
      const Point rep = user_representation(users[u]);
      mean[0] += rep[0];
      mean[1] += rep[1];
    }
    mean[0] /= static_cast<double>(c.members.size());
    mean[1] /= static_cast<double>(c.members.size());
    EXPECT_LT(distance(mean, c.centroid), 1e-9);
  }
}

TEST(GlobalClustering, DeterministicGivenSeed) {
  const auto users = synthetic_users(3, 4, 6, 0.8, 11);
  GlobalClusteringConfig config;
  config.k = 3;
  Rng r1(12), r2(12);
  const auto a = global_clustering(users, config, r1);
  const auto b = global_clustering(users, config, r2);
  EXPECT_EQ(a.user_cluster, b.user_cluster);
}

TEST(GlobalClustering, SubsampleFractionOneStillWorks) {
  const auto users = synthetic_users(2, 4, 5, 0.5, 13);
  GlobalClusteringConfig config;
  config.k = 2;
  config.subsample_fraction = 1.0;
  Rng rng(14);
  const auto r = global_clustering(users, config, rng);
  EXPECT_EQ(r.user_cluster.size(), users.size());
}

TEST(GlobalClustering, Validation) {
  GlobalClusteringConfig config;
  config.k = 4;
  Rng rng(15);
  const auto users = synthetic_users(1, 2, 3, 0.5, 16);  // Only 2 users.
  EXPECT_THROW(global_clustering(users, config, rng), Error);
  GlobalClusteringConfig bad = config;
  bad.k = 1;
  bad.subsample_fraction = 0.0;
  const auto enough = synthetic_users(2, 3, 3, 0.5, 17);
  EXPECT_THROW(global_clustering(enough, bad, rng), Error);
}

}  // namespace
}  // namespace clear::cluster
