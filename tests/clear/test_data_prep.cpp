#include "clear/data_prep.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"
#include <set>

namespace clear::core {
namespace {

/// Shared tiny dataset (generated once; generation costs ~100 ms).
const wemac::WemacDataset& tiny_dataset() {
  static const wemac::WemacDataset dataset = [] {
    wemac::WemacConfig c;
    c.seed = 11;
    c.n_volunteers = 6;
    c.trials_per_volunteer = 5;
    c.windows_per_trial = 6;
    c.window_seconds = 8.0;
    return wemac::generate_wemac(c);
  }();
  return dataset;
}

TEST(DataPrep, NormalizerCentersTrainingUsers) {
  const auto& d = tiny_dataset();
  const features::FeatureNormalizer norm = fit_normalizer(d, {0, 1, 2, 3});
  const std::vector<Tensor> maps = normalize_all_maps(d, norm);
  ASSERT_EQ(maps.size(), d.samples().size());
  // Mean over training-user columns ~ 0 per feature.
  std::vector<double> acc(d.feature_dim(), 0.0);
  std::size_t count = 0;
  for (std::size_t u = 0; u < 4; ++u) {
    for (const std::size_t s : d.samples_of(u)) {
      const Tensor& m = maps[s];
      for (std::size_t c = 0; c < m.extent(1); ++c)
        for (std::size_t r = 0; r < m.extent(0); ++r) acc[r] += m.at2(r, c);
      count += m.extent(1);
    }
  }
  for (std::size_t r = 0; r < 20; ++r)
    EXPECT_NEAR(acc[r] / static_cast<double>(count), 0.0, 1e-3) << "row " << r;
}

TEST(DataPrep, NormalizerLeavesTestUserShifted) {
  // Held-out users generally do NOT have zero mean under the training
  // normalizer — that's the distribution shift CLEAR exploits.
  const auto& d = tiny_dataset();
  const features::FeatureNormalizer norm = fit_normalizer(d, {0, 1, 2, 3});
  const std::vector<Tensor> maps = normalize_all_maps(d, norm);
  double shift = 0.0;
  std::size_t n = 0;
  for (const std::size_t s : d.samples_of(5)) {
    const auto mean = features::feature_map_mean(maps[s]);
    for (const double v : mean) shift += std::abs(v);
    n += mean.size();
  }
  EXPECT_GT(shift / static_cast<double>(n), 0.05);
}

TEST(DataPrep, MapObservationsAreColumnMeans) {
  const auto& d = tiny_dataset();
  const features::FeatureNormalizer norm = fit_normalizer(d, {0, 1});
  const std::vector<Tensor> maps = normalize_all_maps(d, norm);
  const auto obs = map_observations(maps, {0, 3});
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0].size(), d.feature_dim());
  const auto direct = features::feature_map_mean(maps[3]);
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_DOUBLE_EQ(obs[1][i], direct[i]);
}

TEST(DataPrep, MakeMapDatasetAlignsLabels) {
  const auto& d = tiny_dataset();
  const features::FeatureNormalizer norm = fit_normalizer(d, {0, 1});
  const std::vector<Tensor> maps = normalize_all_maps(d, norm);
  const std::vector<std::size_t> idx = {1, 4, 7};
  const nn::MapDataset set = make_map_dataset(d, maps, idx);
  ASSERT_EQ(set.size(), 3u);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    EXPECT_EQ(set.maps[i], &maps[idx[i]]);
    EXPECT_EQ(set.labels[i],
              static_cast<std::size_t>(d.samples()[idx[i]].label));
  }
}

TEST(DataPrep, SplitPartitionsUserSamples) {
  const auto& d = tiny_dataset();
  const UserSplit split = split_user_samples(d, 2, 0.2, 0.4);
  const auto& all = d.samples_of(2);
  EXPECT_EQ(split.ca.size() + split.ft.size() + split.test.size(), all.size());
  // The three parts are disjoint and together cover the user's samples.
  std::set<std::size_t> joined(split.ca.begin(), split.ca.end());
  joined.insert(split.ft.begin(), split.ft.end());
  joined.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(joined, std::set<std::size_t>(all.begin(), all.end()));
  // CA is the unlabeled *prefix* (the user's initial data).
  for (std::size_t i = 0; i < split.ca.size(); ++i)
    EXPECT_EQ(split.ca[i], all[i]);
}

TEST(DataPrep, FtSplitIsStratifiedWhenPossible) {
  const auto& d = tiny_dataset();
  for (std::size_t u = 0; u < d.n_volunteers(); ++u) {
    const UserSplit split = split_user_samples(d, u, 0.1, 0.4);
    bool has_fear = false;
    bool has_non = false;
    for (const std::size_t s : split.ft) {
      if (d.samples()[s].label == 1) has_fear = true;
      else has_non = true;
    }
    // Post-CA pool of this tiny dataset always has both classes.
    EXPECT_TRUE(has_fear) << "user " << u;
    EXPECT_TRUE(has_non) << "user " << u;
  }
}

TEST(DataPrep, SplitMinimumSizes) {
  const auto& d = tiny_dataset();
  const UserSplit split = split_user_samples(d, 0, 0.1, 0.2);
  EXPECT_GE(split.ca.size(), 1u);
  EXPECT_GE(split.ft.size(), 2u);
  EXPECT_GE(split.test.size(), 1u);
}

TEST(DataPrep, SplitValidation) {
  const auto& d = tiny_dataset();
  EXPECT_THROW(split_user_samples(d, 0, 0.5, 0.5), Error);
  EXPECT_THROW(split_user_samples(d, 0, 0.9, 0.05), Error);
}

TEST(DataPrep, FitNormalizerNeedsUsers) {
  const auto& d = tiny_dataset();
  EXPECT_THROW(fit_normalizer(d, {}), Error);
}

}  // namespace
}  // namespace clear::core
