// Mini-batch training loop for feature-map classifiers, plus batched
// prediction/evaluation helpers. The trainer optionally holds out a
// validation split and restores the best-validation-loss parameters at the
// end — the "best-performing training checkpoints" the paper saves per
// cluster.
#pragma once

#include <cstdint>
#include <functional>

#include "nn/metrics.hpp"
#include "nn/sequential.hpp"

namespace clear::nn {

/// A labelled set of feature maps. Maps are borrowed (non-owning); each must
/// be rank-2 [F, W] with identical shapes.
struct MapDataset {
  std::vector<const Tensor*> maps;
  std::vector<std::size_t> labels;

  std::size_t size() const { return maps.size(); }
};

struct TrainConfig {
  std::size_t epochs = 12;
  std::size_t batch_size = 16;
  double lr = 1e-3;
  double grad_clip = 5.0;
  double weight_decay = 1e-4;
  std::uint64_t seed = 1;
  bool use_adam = true;
  double momentum = 0.9;            ///< Used when use_adam == false.
  double validation_fraction = 0.0; ///< >0: hold out a stratified val split.
  bool keep_best = true;            ///< Restore best val-loss (or train-loss)
                                    ///< parameters after the last epoch.
  bool verbose = false;
  /// Invoked after every optimizer step. The edge fine-tuning simulation
  /// uses this to project updated weights onto the device's numeric grid
  /// (int8 / fp16) — i.e. quantization-aware training.
  std::function<void(Sequential&)> post_step;
};

struct TrainHistory {
  std::vector<double> train_loss;    ///< Per epoch.
  std::vector<double> val_loss;      ///< Per epoch (empty without val split).
  std::vector<double> val_accuracy;  ///< Per epoch (empty without val split).
  std::size_t best_epoch = 0;
};

/// Stack selected maps into a [n, 1, F, W] batch tensor.
Tensor stack_batch(const std::vector<const Tensor*>& maps,
                   const std::vector<std::size_t>& indices);

/// stack_batch into a caller-provided tensor (resized and fully overwritten).
/// Reusing `batch` across calls keeps serving/prediction loops off the
/// allocator.
void stack_batch_into(const std::vector<const Tensor*>& maps,
                      const std::vector<std::size_t>& indices, Tensor& batch);

/// Train `model` on `data`. Deterministic in config.seed.
TrainHistory train_classifier(Sequential& model, const MapDataset& data,
                              const TrainConfig& config);

/// Class predictions for a whole dataset (inference mode, batched).
std::vector<std::size_t> predict_classes(Sequential& model,
                                         const MapDataset& data,
                                         std::size_t batch_size = 32);

/// Softmax probabilities [n, n_classes] for a whole dataset.
Tensor predict_probabilities(Sequential& model, const MapDataset& data,
                             std::size_t batch_size = 32);

/// Accuracy/F1 of `model` on `data`.
BinaryMetrics evaluate(Sequential& model, const MapDataset& data,
                       std::size_t batch_size = 32);

}  // namespace clear::nn
