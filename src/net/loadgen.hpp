// Open-loop load generator for the CLEAR-Serve wire.
//
// The arrival schedule is *open-loop*: request i's send time is fixed up
// front by a deterministic hash of (seed, i) — exponential inter-arrival
// gaps at the offered rate, optionally bursty — and the generator sends on
// schedule whether or not earlier responses have returned. Latency is
// measured from the *scheduled* send time, so a stalled server shows up as
// growing latency (the coordinated-omission failure mode of closed-loop
// tools is impossible by construction).
//
// Everything random is hashed (common/fault's splitmix64 mixer): the same
// seed produces the same users, maps, labels, and virtual arrival times on
// every run and every machine. Wall time appears only where it must — in
// the pacing of sends and the measured latencies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/socket.hpp"

namespace clear::net {

struct LoadgenConfig {
  Endpoint target;
  std::size_t connections = 4;
  std::size_t requests = 256;    ///< Total, striped across connections.
  double rate_rps = 200.0;       ///< Offered rate (mean of the gap law).
  /// Burstiness b >= 1: with probability 1-1/b a gap collapses to zero and
  /// the survivor stretches by b, so the offered *rate* is preserved while
  /// requests clump. b = 1 is a plain Poisson process.
  double burstiness = 1.0;
  std::uint64_t seed = 1;
  std::size_t users = 8;         ///< Distinct user ids in the stream.
  std::size_t features = 5;      ///< Map rows — must match the served model.
  std::size_t window = 35;       ///< Map cols — must match the served model.
  double label_fraction = 0.25;  ///< Fraction of requests carrying a label.
  double timeout_seconds = 30.0; ///< Give up on missing responses after this.
  bool shutdown_after = false;   ///< Send kShutdown when done (smoke runs).
  /// First absolute request index to send. Every per-request quantity
  /// (user, map, label, arrival time) is a pure hash of the absolute index,
  /// so a run with start_index = N sends exactly what requests [N, N +
  /// requests) of a start_index = 0 run would have sent — the chaos gate
  /// resumes an interrupted stream this way after killing the server.
  std::size_t start_index = 0;
  // -- Distribution drift (drives the serve-side drift monitor) -------------
  /// User ids below this drift: past drift_after_index their maps shift by
  /// a constant offset, so the cluster they were assigned to stops fitting.
  /// 0 disables drift entirely.
  std::size_t drift_users = 0;
  /// Absolute request index at which drifting users' maps start shifting —
  /// a pure function of the absolute index, so --start-index resumption
  /// reproduces the exact same drifted stream.
  std::size_t drift_after_index = 0;
  double drift_shift = 1.5;  ///< Additive offset applied to every sample.
  /// When non-empty, write one line per received response (sorted by
  /// request id, deterministic fields only: id, user, shed, prediction,
  /// probability bits, route) for bit-identity comparison across runs.
  std::string responses_path;
};

/// Exact-percentile latency summary (sorted-vector, no histogram binning).
struct LatencySummary {
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
  double mean_us = 0.0;
};

struct LoadgenReport {
  std::size_t sent = 0;
  std::size_t received = 0;
  std::size_t ok = 0;
  std::size_t shed = 0;
  std::size_t dropped = 0;  ///< Sent but never answered (timeout/dead conn).
  double wall_seconds = 0.0;
  double offered_rps = 0.0;
  double achieved_rps = 0.0;  ///< received / wall_seconds.
  LatencySummary latency;

  /// clear-bench-loadgen-v1 JSON (tools/bench_regress.py understands it).
  std::string json(const LoadgenConfig& config) const;
};

/// The virtual arrival time (microseconds from stream start) of request
/// `index` under `config`'s hashed schedule. Exposed so tests can pin the
/// schedule and the loopback harness can replay identical arrivals.
std::uint64_t scheduled_arrival_us(const LoadgenConfig& config,
                                   std::size_t index);

/// Run the load against a live server. Throws clear::Error on connection
/// failure; response gaps are reported in the counters, not thrown.
LoadgenReport run_loadgen(const LoadgenConfig& config);

}  // namespace clear::net
