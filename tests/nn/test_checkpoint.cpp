#include "nn/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "common/error.hpp"
#include "nn/model.hpp"

namespace clear::nn {
namespace {

CnnLstmConfig tiny_model_config() {
  CnnLstmConfig c;
  c.feature_dim = 16;
  c.window_count = 8;
  c.conv1_channels = 2;
  c.conv2_channels = 3;
  c.lstm_hidden = 4;
  return c;
}

TEST(Checkpoint, StreamRoundTripRestoresWeights) {
  Rng r1(1), r2(2);
  auto a = build_cnn_lstm(tiny_model_config(), r1);
  auto b = build_cnn_lstm(tiny_model_config(), r2);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  save_checkpoint(ss, *a);
  load_checkpoint(ss, *b);
  const auto pa = a->parameters();
  const auto pb = b->parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::size_t j = 0; j < pa[i]->value.numel(); ++j)
      EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

TEST(Checkpoint, RestoredModelGivesIdenticalOutputs) {
  Rng r1(3), r2(4), rx(5);
  auto a = build_cnn_lstm(tiny_model_config(), r1);
  auto b = build_cnn_lstm(tiny_model_config(), r2);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  save_checkpoint(ss, *a);
  load_checkpoint(ss, *b);
  a->set_training(false);
  b->set_training(false);
  Tensor x({2, 1, 16, 8});
  x.fill_normal(rx, 0.0f, 1.0f);
  const Tensor ya = a->forward(x);
  const Tensor yb = b->forward(x);
  for (std::size_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(Checkpoint, FileRoundTrip) {
  namespace fs = std::filesystem;
  Rng r1(6), r2(7);
  auto a = build_cnn_lstm(tiny_model_config(), r1);
  auto b = build_cnn_lstm(tiny_model_config(), r2);
  const std::string path =
      (fs::temp_directory_path() / "clear_ckpt_test.bin").string();
  save_checkpoint_file(path, *a);
  load_checkpoint_file(path, *b);
  EXPECT_EQ(a->parameters()[0]->value[0], b->parameters()[0]->value[0]);
  fs::remove(path);
}

TEST(Checkpoint, ArchitectureMismatchRejected) {
  Rng r1(8), r2(9);
  auto a = build_cnn_lstm(tiny_model_config(), r1);
  CnnLstmConfig other = tiny_model_config();
  other.lstm_hidden = 5;  // Different shape.
  auto b = build_cnn_lstm(other, r2);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  save_checkpoint(ss, *a);
  EXPECT_THROW(load_checkpoint(ss, *b), Error);
}

TEST(Checkpoint, GarbageStreamRejected) {
  Rng rng(10);
  auto m = build_cnn_lstm(tiny_model_config(), rng);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ss << "definitely not a checkpoint";
  EXPECT_THROW(load_checkpoint(ss, *m), Error);
}

TEST(Checkpoint, MissingFileThrows) {
  Rng rng(11);
  auto m = build_cnn_lstm(tiny_model_config(), rng);
  EXPECT_THROW(load_checkpoint_file("/nonexistent/ckpt.bin", *m), Error);
}

TEST(Snapshot, RestoreBringsWeightsBack) {
  Rng rng(12);
  auto m = build_cnn_lstm(tiny_model_config(), rng);
  const std::vector<Tensor> snap = snapshot_parameters(*m);
  // Clobber all weights.
  for (Param* p : m->parameters()) p->value.fill(9.0f);
  restore_parameters(*m, snap);
  const auto params = m->parameters();
  for (std::size_t i = 0; i < params.size(); ++i)
    for (std::size_t j = 0; j < params[i]->value.numel(); ++j)
      EXPECT_EQ(params[i]->value[j], snap[i][j]);
}

TEST(Snapshot, SizeMismatchRejected) {
  Rng rng(13);
  auto m = build_cnn_lstm(tiny_model_config(), rng);
  EXPECT_THROW(restore_parameters(*m, {}), Error);
}

}  // namespace
}  // namespace clear::nn
