// Skin-temperature feature block: 5 features per window (paper: 5 SKT).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace clear::features {

inline constexpr std::size_t kSktFeatureCount = 5;

/// Feature names, in extraction order. Size == kSktFeatureCount.
const std::vector<std::string>& skt_feature_names();

/// Extract {mean, std, slope, min, max} from one SKT window.
std::vector<double> extract_skt_features(std::span<const double> skt,
                                         double sample_rate);

}  // namespace clear::features
