#include "features/bvp_features.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "features/nonlinear.hpp"
#include "signal/fft.hpp"
#include "signal/filter.hpp"
#include "signal/peaks.hpp"
#include "signal/resample.hpp"

namespace clear::features {

const std::vector<std::string>& bvp_feature_names() {
  static const std::vector<std::string> names = {
      // -- time domain (20) --
      "bvp_mean", "bvp_std", "bvp_min", "bvp_max", "bvp_range", "bvp_median",
      "bvp_iqr", "bvp_rms", "bvp_skewness", "bvp_kurtosis", "bvp_mean_abs_d1",
      "bvp_std_d1", "bvp_mean_abs_d2", "bvp_std_d2", "bvp_zero_cross",
      "bvp_slope", "bvp_energy", "bvp_hjorth_activity", "bvp_hjorth_mobility",
      "bvp_hjorth_complexity",
      // -- HRV time domain (26) --
      "ibi_mean", "ibi_std", "ibi_min", "ibi_max", "ibi_range", "ibi_median",
      "ibi_iqr", "hrv_rmssd", "hrv_sdsd", "hrv_pnn20", "hrv_pnn50", "hr_mean",
      "hr_std", "hr_min", "hr_max", "hr_range", "hrv_hti", "hrv_tinn",
      "ibi_cv", "ibi_autocorr1", "ibi_autocorr2", "ibi_autocorr3",
      "ibi_slope", "ibi_max_abs_diff", "ibi_mean_abs_diff", "bvp_n_beats",
      // -- frequency domain (24) --
      "hrv_vlf_power", "hrv_lf_power", "hrv_hf_power", "hrv_vlf_log",
      "hrv_lf_log", "hrv_hf_log", "hrv_lf_norm", "hrv_hf_norm", "hrv_lf_hf",
      "hrv_total_power", "hrv_vlf_peak", "hrv_lf_peak", "hrv_hf_peak",
      "pw_spec_centroid", "pw_spec_spread", "pw_spec_entropy",
      "pw_spec_rolloff85", "pw_peak_freq", "pw_band_cardiac", "pw_band_resp",
      "pw_moment1", "pw_moment2", "pw_moment3", "pw_moment4",
      // -- non-linear (14) --
      "poincare_sd1", "poincare_sd2", "poincare_sd1_sd2", "poincare_area",
      "ibi_sampen", "ibi_apen", "ibi_hist_entropy", "ibi_dfa_alpha1",
      "bvp_hoc1", "bvp_hoc2", "bvp_hoc3", "hrv_csi", "hrv_cvi",
      "ibi_recurrence",
  };
  return names;
}

std::vector<double> extract_bvp_features(std::span<const double> bvp,
                                         double sample_rate) {
  CLEAR_CHECK_MSG(sample_rate > 0, "BVP sample rate must be positive");
  CLEAR_CHECK_MSG(static_cast<double>(bvp.size()) >= sample_rate,
                  "BVP window must cover at least one second");
  // A single NaN/Inf sample would silently poison most of the 84 features;
  // fail loudly and point at the sample instead.
  for (std::size_t i = 0; i < bvp.size(); ++i)
    CLEAR_CHECK_MSG(std::isfinite(bvp[i]),
                    "BVP window has non-finite sample at index "
                        << i << "; sanitize the stream before extraction");
  std::vector<double> f;
  f.reserve(kBvpFeatureCount);

  // ---- Time domain (20) ----
  f.push_back(stats::mean(bvp));
  f.push_back(stats::stddev(bvp));
  f.push_back(stats::min(bvp));
  f.push_back(stats::max(bvp));
  f.push_back(stats::range(bvp));
  f.push_back(stats::median(bvp));
  f.push_back(stats::iqr(bvp));
  f.push_back(stats::rms(bvp));
  f.push_back(stats::skewness(bvp));
  f.push_back(stats::kurtosis(bvp));
  const std::vector<double> d1 = stats::diff(bvp);
  const std::vector<double> d2 = stats::diff(d1);
  f.push_back(stats::mean_abs_diff(bvp));
  f.push_back(stats::stddev(d1));
  f.push_back(stats::mean_abs_diff(d1));
  f.push_back(stats::stddev(d2));
  f.push_back(static_cast<double>(stats::zero_crossings(bvp)));
  f.push_back(stats::slope(bvp));
  double energy = 0.0;
  for (const double v : bvp) energy += v * v;
  f.push_back(energy / static_cast<double>(bvp.size()));
  const stats::Hjorth hj = stats::hjorth(bvp);
  f.push_back(hj.activity);
  f.push_back(hj.mobility);
  f.push_back(hj.complexity);

  // ---- Beat detection ----
  // Band-limit to the plausible cardiac band before peak picking.
  const std::vector<dsp::Biquad> bp =
      dsp::butterworth_bandpass(0.7, std::min(3.5, sample_rate / 2.5),
                                sample_rate);
  const std::vector<double> pulse = dsp::filtfilt(bp, bvp);
  dsp::PeakOptions opt;
  // 0.45x the band-limited pulse's sigma rejects noise bumps on the
  // diastolic floor while keeping every systolic upstroke.
  opt.min_prominence = 0.45 * stats::stddev(pulse);
  // Refractory period ~ 0.45 s (max HR ~ 133 bpm). This must exceed the
  // systolic-to-dicrotic peak separation at resting heart rates, otherwise
  // the dicrotic notch is double-counted as a beat.
  opt.min_distance =
      std::max<std::size_t>(1, static_cast<std::size_t>(sample_rate / 2.2));
  const std::vector<dsp::Peak> beats = dsp::find_peaks(pulse, opt);
  const std::vector<double> ibi = dsp::peak_intervals(beats, sample_rate);

  // ---- HRV time domain (26) ----
  auto push_or_zero = [&f](bool ok, double v) { f.push_back(ok ? v : 0.0); };
  const bool has_ibi = ibi.size() >= 2;
  push_or_zero(has_ibi, stats::mean(ibi));
  push_or_zero(has_ibi, stats::stddev(ibi));
  push_or_zero(has_ibi, stats::min(ibi));
  push_or_zero(has_ibi, stats::max(ibi));
  push_or_zero(has_ibi, stats::range(ibi));
  push_or_zero(has_ibi, stats::median(ibi));
  push_or_zero(has_ibi, stats::iqr(ibi));
  const std::vector<double> dibi = stats::diff(ibi);
  double rmssd = 0.0;
  double pnn20 = 0.0;
  double pnn50 = 0.0;
  double max_abs_dibi = 0.0;
  if (!dibi.empty()) {
    double s = 0.0;
    std::size_t n20 = 0;
    std::size_t n50 = 0;
    for (const double v : dibi) {
      s += v * v;
      const double ms = std::abs(v) * 1000.0;
      if (ms > 20.0) ++n20;
      if (ms > 50.0) ++n50;
      max_abs_dibi = std::max(max_abs_dibi, std::abs(v));
    }
    rmssd = std::sqrt(s / static_cast<double>(dibi.size()));
    pnn20 = static_cast<double>(n20) / static_cast<double>(dibi.size());
    pnn50 = static_cast<double>(n50) / static_cast<double>(dibi.size());
  }
  f.push_back(rmssd);
  f.push_back(stats::stddev(dibi));
  f.push_back(pnn20);
  f.push_back(pnn50);
  std::vector<double> hr(ibi.size());
  for (std::size_t i = 0; i < ibi.size(); ++i)
    hr[i] = ibi[i] > 1e-6 ? 60.0 / ibi[i] : 0.0;
  push_or_zero(has_ibi, stats::mean(hr));
  push_or_zero(has_ibi, stats::stddev(hr));
  push_or_zero(has_ibi, stats::min(hr));
  push_or_zero(has_ibi, stats::max(hr));
  push_or_zero(has_ibi, stats::range(hr));
  // HRV triangular index: N / max histogram bin (7.8125 ms bins).
  double hti = 0.0;
  double tinn = 0.0;
  if (has_ibi) {
    const double bin = 0.0078125;
    const double lo = stats::min(ibi);
    const double hi = stats::max(ibi);
    const auto nbins =
        static_cast<std::size_t>(std::max(1.0, std::ceil((hi - lo) / bin)));
    std::vector<std::size_t> hist(nbins, 0);
    for (const double v : ibi) {
      auto b = static_cast<std::size_t>((v - lo) / bin);
      if (b >= nbins) b = nbins - 1;
      ++hist[b];
    }
    std::size_t mode = 0;
    for (const std::size_t c : hist) mode = std::max(mode, c);
    hti = mode ? static_cast<double>(ibi.size()) / static_cast<double>(mode)
               : 0.0;
    tinn = hi - lo;  // Baseline-width approximation of the TINN triangle.
  }
  f.push_back(hti);
  f.push_back(tinn);
  const double ibi_mean = stats::mean(ibi);
  f.push_back(has_ibi && std::abs(ibi_mean) > 1e-9
                  ? stats::stddev(ibi) / ibi_mean
                  : 0.0);
  f.push_back(stats::autocorrelation(ibi, 1));
  f.push_back(stats::autocorrelation(ibi, 2));
  f.push_back(stats::autocorrelation(ibi, 3));
  push_or_zero(has_ibi, stats::slope(ibi));
  f.push_back(max_abs_dibi);
  f.push_back(stats::mean_abs_diff(ibi));
  f.push_back(static_cast<double>(beats.size()));

  // ---- Frequency domain (24) ----
  // HRV spectrum: tachogram resampled to 4 Hz.
  double vlf = 0.0, lf = 0.0, hf = 0.0;
  double vlf_peak = 0.0, lf_peak = 0.0, hf_peak = 0.0;
  if (ibi.size() >= 4) {
    const std::vector<double> tach = dsp::resample_to_length(
        ibi, std::max<std::size_t>(32, ibi.size() * 4));
    const std::vector<double> tach_dt = dsp::detrend_linear(tach);
    const dsp::Psd hpsd = dsp::welch(tach_dt, 4.0, tach_dt.size());
    vlf = dsp::band_power(hpsd, 0.003, 0.04);
    lf = dsp::band_power(hpsd, 0.04, 0.15);
    hf = dsp::band_power(hpsd, 0.15, 0.4);
    vlf_peak = dsp::peak_frequency(hpsd, 0.003, 0.04);
    lf_peak = dsp::peak_frequency(hpsd, 0.04, 0.15);
    hf_peak = dsp::peak_frequency(hpsd, 0.15, 0.4);
  }
  const double total = vlf + lf + hf;
  auto safe_log = [](double v) { return std::log(v + 1e-12); };
  f.push_back(vlf);
  f.push_back(lf);
  f.push_back(hf);
  f.push_back(safe_log(vlf));
  f.push_back(safe_log(lf));
  f.push_back(safe_log(hf));
  f.push_back(lf + hf > 1e-12 ? lf / (lf + hf) : 0.0);
  f.push_back(lf + hf > 1e-12 ? hf / (lf + hf) : 0.0);
  f.push_back(hf > 1e-12 ? lf / hf : 0.0);
  f.push_back(total);
  f.push_back(vlf_peak);
  f.push_back(lf_peak);
  f.push_back(hf_peak);
  // Pulse-wave spectrum.
  const dsp::Psd ppsd =
      dsp::welch(bvp, sample_rate, std::min<std::size_t>(bvp.size(), 512));
  f.push_back(dsp::spectral_centroid(ppsd));
  f.push_back(dsp::spectral_spread(ppsd));
  f.push_back(dsp::spectral_entropy(ppsd));
  f.push_back(dsp::spectral_rolloff(ppsd, 0.85));
  f.push_back(dsp::peak_frequency(ppsd, 0.5, 4.0));
  f.push_back(dsp::band_power(ppsd, 0.8, 2.5));
  f.push_back(dsp::band_power(ppsd, 0.15, 0.4));
  f.push_back(dsp::spectral_moment(ppsd, 1));
  f.push_back(dsp::spectral_moment(ppsd, 2));
  f.push_back(dsp::spectral_moment(ppsd, 3));
  f.push_back(dsp::spectral_moment(ppsd, 4));

  // ---- Non-linear (14) ----
  const Poincare pc = poincare(ibi);
  f.push_back(pc.sd1);
  f.push_back(pc.sd2);
  f.push_back(pc.ratio);
  f.push_back(pc.ellipse_area);
  const double tol = 0.2 * stats::stddev(ibi);
  f.push_back(sample_entropy(ibi, 2, tol));
  f.push_back(approximate_entropy(ibi, 2, tol));
  f.push_back(stats::histogram_entropy(ibi, 10));
  f.push_back(dfa_alpha1(ibi));
  f.push_back(static_cast<double>(higher_order_crossings(bvp, 1)));
  f.push_back(static_cast<double>(higher_order_crossings(bvp, 2)));
  f.push_back(static_cast<double>(higher_order_crossings(bvp, 3)));
  f.push_back(pc.csi);
  f.push_back(pc.cvi);
  f.push_back(recurrence_rate(ibi, tol));

  CLEAR_CHECK_MSG(f.size() == kBvpFeatureCount,
                  "BVP feature count drifted: " << f.size());
  return f;
}

}  // namespace clear::features
