// Micro-benchmarks (google-benchmark): the op-level kernels behind the
// tables — fp32 GEMM vs int8 GEMM, conv/LSTM forward+backward, end-to-end
// CNN-LSTM inference at each precision, and the 123-feature extraction.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "edge/engine.hpp"
#include "edge/qkernels.hpp"
#include "features/feature_map.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "tensor/ops.hpp"
#include "wemac/synth.hpp"

namespace {

using namespace clear;

Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_normal(rng, 0.0f, 1.0f);
  return t;
}

void BM_MatmulF32(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_tensor({n, n}, 1);
  const Tensor b = random_tensor({n, n}, 2);
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_MatmulF32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmInt8(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor af = random_tensor({n, n}, 3);
  const Tensor bf = random_tensor({n, n}, 4);
  const auto qa = edge::quantize_tensor(af, edge::calibrate_max_abs(af.flat()));
  const auto qb = edge::quantize_tensor(bf, edge::calibrate_max_abs(bf.flat()));
  std::vector<std::int32_t> acc(n * n);
  for (auto _ : state) {
    edge::int8_gemm(qa, qb, n, n, n, acc);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_GemmInt8)->Arg(64)->Arg(128)->Arg(256);

void BM_QuantizedConv(benchmark::State& state) {
  // The paper model's second conv layer (12 channels over 6) in int8.
  Rng rng(21);
  Tensor w({12, 6 * 3 * 3});
  w.fill_normal(rng, 0.0f, 0.3f);
  Tensor bias({12});
  bias.fill_normal(rng, 0.0f, 0.1f);
  const edge::QuantizedConv2d conv(w, bias, 6, 3, 3, 1, 1);
  Tensor x({1, 6, 61, 6});
  x.fill_normal(rng, 0.0f, 1.0f);
  const edge::QuantParams act = edge::calibrate_max_abs(x.flat());
  for (auto _ : state) {
    Tensor y = conv.forward(x, act);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_QuantizedConv);

nn::CnnLstmConfig bench_model_config() {
  nn::CnnLstmConfig c;
  c.feature_dim = 123;
  c.window_count = 12;
  c.conv1_channels = 6;
  c.conv2_channels = 12;
  c.lstm_hidden = 32;
  c.dropout = 0.0;
  return c;
}

void BM_CnnLstmForward(benchmark::State& state) {
  Rng rng(5);
  auto model = nn::build_cnn_lstm(bench_model_config(), rng);
  model->set_training(false);
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  const Tensor batch = random_tensor({batch_size, 1, 123, 12}, 6);
  for (auto _ : state) {
    Tensor out = model->forward(batch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_CnnLstmForward)->Arg(1)->Arg(16);

void BM_CnnLstmTrainStep(benchmark::State& state) {
  Rng rng(7);
  auto model = nn::build_cnn_lstm(bench_model_config(), rng);
  model->set_training(true);
  const Tensor batch = random_tensor({16, 1, 123, 12}, 8);
  std::vector<std::size_t> labels(16);
  for (std::size_t i = 0; i < 16; ++i) labels[i] = i % 2;
  for (auto _ : state) {
    const Tensor logits = model->forward(batch);
    const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
    const Tensor grad = model->backward(loss.grad_logits);
    benchmark::DoNotOptimize(grad.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_CnnLstmTrainStep);

void BM_EdgeInference(benchmark::State& state) {
  const auto precision = static_cast<edge::Precision>(state.range(0));
  Rng rng(9);
  auto model = nn::build_cnn_lstm(bench_model_config(), rng);
  edge::EngineConfig ec;
  ec.precision = precision;
  edge::EdgeEngine engine(std::move(model), ec);
  std::vector<Tensor> calib;
  for (std::uint64_t i = 0; i < 8; ++i)
    calib.push_back(random_tensor({123, 12}, 10 + i));
  std::vector<const Tensor*> calib_ptrs;
  for (const Tensor& t : calib) calib_ptrs.push_back(&t);
  engine.calibrate(calib_ptrs);
  const Tensor batch = random_tensor({1, 1, 123, 12}, 20);
  for (auto _ : state) {
    Tensor out = engine.forward(batch);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_EdgeInference)
    ->Arg(static_cast<int>(edge::Precision::kFp32))
    ->Arg(static_cast<int>(edge::Precision::kFp16))
    ->Arg(static_cast<int>(edge::Precision::kInt8));

void BM_FeatureExtraction(benchmark::State& state) {
  // One 10 s multi-modal window -> 123 features.
  Rng prof_rng(11);
  const wemac::VolunteerProfile profile = wemac::sample_profile(
      wemac::default_archetypes()[0], 0, 0, prof_rng);
  wemac::Stimulus stim;
  stim.emotion = wemac::Emotion::kFear;
  stim.duration_s = 10.0;
  Rng trial_rng(12);
  const wemac::TrialSignals trial =
      wemac::synthesize_trial(profile, stim, {}, trial_rng);
  const auto windows = wemac::slice_windows(trial, 10.0);
  for (auto _ : state) {
    auto f = features::extract_window_features(windows[0]);
    benchmark::DoNotOptimize(f.data());
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_TrialSynthesis(benchmark::State& state) {
  Rng prof_rng(13);
  const wemac::VolunteerProfile profile = wemac::sample_profile(
      wemac::default_archetypes()[1], 0, 1, prof_rng);
  wemac::Stimulus stim;
  stim.emotion = wemac::Emotion::kJoy;
  stim.duration_s = 120.0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    auto t = wemac::synthesize_trial(profile, stim, {}, rng);
    benchmark::DoNotOptimize(t.bvp.data());
  }
}
BENCHMARK(BM_TrialSynthesis);

void BM_Fp16RoundTrip(benchmark::State& state) {
  Tensor t = random_tensor({123, 12}, 14);
  for (auto _ : state) {
    Tensor copy = t;
    edge::fp16_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_Fp16RoundTrip);

void BM_FakeQuantize(benchmark::State& state) {
  Tensor t = random_tensor({123, 12}, 15);
  const edge::QuantParams p = edge::calibrate_max_abs(t.flat());
  for (auto _ : state) {
    Tensor copy = t;
    edge::fake_quantize_inplace(copy, p);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_FakeQuantize);

}  // namespace

BENCHMARK_MAIN();
