#include "edge/engine.hpp"

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "common/obs.hpp"
#include "nn/lstm.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/ops.hpp"

namespace clear::edge {

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kFp32: return "fp32";
    case Precision::kFp16: return "fp16";
    case Precision::kInt8: return "int8";
  }
  return "?";
}

EdgeEngine::EdgeEngine(std::unique_ptr<nn::Sequential> model,
                       EngineConfig config)
    : model_(std::move(model)), config_(config) {
  CLEAR_CHECK_MSG(model_ != nullptr, "null model");
  model_->set_training(false);
  apply_weight_transform();
}

void EdgeEngine::apply_weight_transform() {
  switch (config_.precision) {
    case Precision::kFp32:
      break;
    case Precision::kFp16:
      for (nn::Param* p : model_->parameters()) fp16_inplace(p->value);
      break;
    case Precision::kInt8:
      for (nn::Param* p : model_->parameters())
        fake_quantize_inplace(p->value, calibrate_max_abs(p->value.flat()));
      break;
  }
  // The recurrent state lives in the device's numeric format too: an
  // int8-only accelerator re-quantizes h/c between steps (dynamic per-step
  // scale), an fp16 device keeps them in half precision.
  for (std::size_t i = 0; i < model_->size(); ++i) {
    auto* lstm = dynamic_cast<nn::Lstm*>(&model_->layer(i));
    if (!lstm) continue;
    switch (config_.precision) {
      case Precision::kFp32:
        lstm->set_state_transform(nullptr);
        break;
      case Precision::kFp16:
        lstm->set_state_transform([](Tensor& t) { fp16_inplace(t); });
        break;
      case Precision::kInt8:
        lstm->set_state_transform([](Tensor& t) {
          fake_quantize_inplace(t, calibrate_max_abs(t.flat()));
        });
        break;
    }
  }
}

void EdgeEngine::requantize_weights() { apply_weight_transform(); }

std::size_t EdgeEngine::resident_bytes() {
  std::size_t bytes = 0;
  for (const nn::Param* p : model_->parameters())
    bytes += (p->value.numel() + p->grad.numel()) * sizeof(float);
  bytes += act_params_.size() * sizeof(QuantParams);
  return bytes;
}

void EdgeEngine::calibrate(const std::vector<const Tensor*>& maps) {
  if (config_.precision != Precision::kInt8) return;
  CLEAR_CHECK_MSG(!maps.empty(), "calibration needs at least one map");
  model_->set_training(false);
  // Collect per-stage activations over the calibration set.
  std::vector<std::vector<float>> stage_values(model_->size() + 1);
  std::vector<std::size_t> all(maps.size());
  for (std::size_t i = 0; i < maps.size(); ++i) all[i] = i;
  const Tensor batch = nn::stack_batch(maps, all);
  Tensor x = batch;
  auto collect = [&](std::size_t stage, const Tensor& t) {
    auto& dst = stage_values[stage];
    dst.insert(dst.end(), t.data(), t.data() + t.numel());
  };
  collect(0, x);
  for (std::size_t i = 0; i < model_->size(); ++i) {
    x = model_->layer(i).forward(x);
    collect(i + 1, x);
  }
  act_params_.clear();
  act_params_.reserve(stage_values.size());
  for (const auto& vals : stage_values) {
    act_params_.push_back(config_.act_percentile >= 100.0
                              ? calibrate_max_abs(vals)
                              : calibrate_percentile(vals,
                                                     config_.act_percentile));
  }
}

namespace {

/// "edge.forward.<precision>" span names, stable for the trace viewer.
[[maybe_unused]] const char* forward_span_name(Precision p) {
  switch (p) {
    case Precision::kFp32: return "edge.forward.fp32";
    case Precision::kFp16: return "edge.forward.fp16";
    case Precision::kInt8: return "edge.forward.int8";
  }
  return "edge.forward";
}

}  // namespace

Tensor EdgeEngine::forward(const Tensor& batch) {
  CLEAR_OBS_SPAN(forward_span_name(config_.precision));
  const std::uint64_t t0 = obs::enabled() ? obs::now_us() : 0;
  model_->set_training(false);
  Tensor x = batch;
  switch (config_.precision) {
    case Precision::kFp32: {
      x = model_->forward(x);
      break;
    }
    case Precision::kFp16: {
      fp16_inplace(x);
      for (std::size_t i = 0; i < model_->size(); ++i) {
        x = model_->layer(i).forward(x);
        fp16_inplace(x);
      }
      break;
    }
    case Precision::kInt8: {
      CLEAR_CHECK_MSG(calibrated(),
                      "int8 engine used before activation calibration");
      fake_quantize_inplace(x, act_params_[0]);
      for (std::size_t i = 0; i < model_->size(); ++i) {
        x = model_->layer(i).forward(x);
        // The final logits stay float (the accelerator's last dequantize).
        if (i + 1 < model_->size())
          fake_quantize_inplace(x, act_params_[i + 1]);
      }
      break;
    }
  }
  if (obs::enabled()) {
    const std::uint64_t dur = obs::now_us() - t0;
    obs::histogram(std::string("edge.forward_us.") +
                   precision_name(config_.precision))
        .record(static_cast<double>(dur));
    obs::counter("edge.batches").add(1);
    obs::counter("edge.rows").add(batch.extent(0));
    // Which SIMD kernel table served this forward (kernels::Isa enum value;
    // 0 = scalar, 1 = avx2, 2 = neon). A gauge, since it can change mid-run
    // only via an explicit set_isa() call.
    obs::gauge("edge.kernel_isa")
        .set(static_cast<int>(kernels::active_isa()));
  }
  return x;
}

std::vector<std::size_t> EdgeEngine::predict(const nn::MapDataset& data,
                                             std::size_t batch_size) {
  std::vector<std::size_t> preds;
  preds.reserve(data.size());
  // Index and batch buffers live outside the loop; stack_batch_into reuses
  // the batch tensor's storage whenever consecutive batches share a size.
  std::vector<std::size_t> idx;
  Tensor batch;
  for (std::size_t start = 0; start < data.size(); start += batch_size) {
    const std::size_t end = std::min(data.size(), start + batch_size);
    idx.resize(end - start);
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = start + i;
    nn::stack_batch_into(data.maps, idx, batch);
    const Tensor logits = forward(batch);
    const std::vector<std::size_t> p = ops::argmax_rows(logits);
    preds.insert(preds.end(), p.begin(), p.end());
  }
  return preds;
}

nn::BinaryMetrics EdgeEngine::evaluate(const nn::MapDataset& data,
                                       std::size_t batch_size) {
  return nn::binary_metrics(predict(data, batch_size), data.labels);
}

}  // namespace clear::edge
