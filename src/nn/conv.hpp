// 2-D convolution over NCHW batches, implemented as im2col + GEMM.
#pragma once

#include "nn/layer.hpp"

namespace clear::nn {

class Conv2d : public Layer {
 public:
  /// Square or rectangular kernel; He-uniform initialization.
  Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kh,
         std::size_t kw, std::size_t stride, std::size_t pad, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override;
  std::string name() const override { return "Conv2d"; }
  LayerPtr clone() const override { return std::make_unique<Conv2d>(*this); }

  std::size_t in_channels() const { return in_ch_; }
  std::size_t out_channels() const { return out_ch_; }

 private:
  std::size_t in_ch_, out_ch_, kh_, kw_, stride_, pad_;
  Param weight_;  ///< [out_ch, in_ch*kh*kw]
  Param bias_;    ///< [out_ch]
  // Cached per-sample im2col matrices and input geometry for backward.
  std::vector<Tensor> cached_cols_;
  std::vector<std::size_t> cached_in_shape_;
  // Inference-only scratch, reused across forward() calls so the hot predict
  // path performs no per-sample allocations. Batched inference clones the
  // model per worker thread, so these are effectively thread-local.
  Tensor ws_image_, ws_cols_, ws_prod_;
};

}  // namespace clear::nn
