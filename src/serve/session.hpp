// Per-user serving sessions (DESIGN.md §12).
//
// Each user connecting to the server walks the paper's cold-start protocol
// as a state machine:
//
//   COLD ── first request ──▶ ASSIGNING ── CA ready ──▶ ASSIGNED
//     ASSIGNED ── enough labelled maps ──▶ FINE_TUNING ──▶ PERSONALIZED
//
// COLD/ASSIGNING users are served by the population-general model while the
// session buffers unlabeled observations for Cluster Assignment; ASSIGNED
// users get their cluster's pre-trained model; PERSONALIZED users get their
// own fine-tuned engine (owned by the session).
//
// DEGRADED is a parallel failure state: `degrade_after` consecutive requests
// below the signal-quality floor park the session on the general model (a
// cluster/personal model fed garbage is worse than the population prior) and
// pause CA/FT buffering; `recover_after` consecutive good requests restore
// the exact pre-degradation state.
//
// Online adaptation (DESIGN.md §16) adds two states past the one-shot
// protocol: when the drift monitor fires for `drift_after` consecutive
// windows an ASSIGNED/PERSONALIZED session enters RE_ASSESSING (re-runs CA
// on a fresh window buffer) and, if the verdict names a different cluster,
// SHADOWING (keep serving the incumbent engine while the candidate cluster
// is scored on the same windows; a strict majority promotes it, anything
// less demotes back to the incumbent). Both states keep serving the
// incumbent route throughout — adaptation never degrades a live user — and
// both freeze/thaw under DEGRADED exactly like the other states.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/kmeans.hpp"
#include "edge/engine.hpp"
#include "serve/batcher.hpp"
#include "tensor/tensor.hpp"

namespace clear::serve {

enum class SessionState {
  kCold,          ///< No data seen yet.
  kAssigning,     ///< Buffering unlabeled observations for CA.
  kAssigned,      ///< Serving the assigned cluster's model.
  kFineTuning,    ///< Labelled buffer full; personalization in progress.
  kPersonalized,  ///< Serving the user's own fine-tuned engine.
  kDegraded,      ///< Sustained bad signal; parked on the general model.
  // New states append after kDegraded: the numeric values above are baked
  // into v1 journals/snapshots and must never shift.
  kReassessing,   ///< Drift confirmed; re-running CA on a fresh buffer.
  kShadowing,     ///< Candidate cluster under shadow evaluation.
};

const char* session_state_name(SessionState s);

struct SessionPolicy {
  std::size_t ca_windows = 6;   ///< Observations buffered before CA runs.
  std::size_t ft_maps = 4;      ///< Labelled maps buffered before fine-tune.
  bool enable_finetune = true;  ///< false: sessions stop at ASSIGNED.
  double min_quality = 0.7;     ///< Quality floor for a "good" request.
  std::size_t degrade_after = 3;  ///< Consecutive bad requests to degrade.
  std::size_t recover_after = 3;  ///< Consecutive good requests to recover.
  // -- Online adaptation (drift detection / re-assessment / shadowing) ------
  /// Consecutive drifting windows before RE_ASSESSING fires; 0 disables the
  /// drift monitor entirely (the default — adaptation is opt-in).
  std::size_t drift_after = 0;
  /// A window is "drifting" when the assigned cluster's CA score exceeds
  /// drift_ratio x the best other cluster's score (lower scores are better,
  /// so 1.0 fires as soon as any other cluster fits the window strictly
  /// better; higher values demand a wider margin).
  double drift_ratio = 1.25;
  std::size_t reassess_windows = 6;  ///< Fresh CA buffer size in RE_ASSESSING.
  std::size_t shadow_windows = 8;    ///< Verdict windows scored in SHADOWING.
};

/// One labelled (normalized) feature map buffered for fine-tuning.
struct LabelledMap {
  Tensor map;
  int label = 0;
};

/// Complete serializable session state: everything needed to rebuild the
/// session bit-identically except the personal engine itself, which the
/// recovery path re-attaches from the CRC-verified checkpoint store (the
/// image only records that one exists). Snapshots persist these; the
/// journal replays mutations on top of them.
struct SessionImage {
  std::uint64_t user_id = 0;
  SessionState state = SessionState::kCold;
  SessionState saved_state = SessionState::kCold;
  std::uint64_t bad_streak = 0;
  std::uint64_t good_streak = 0;
  std::uint64_t cluster = 0;
  std::vector<cluster::Point> observations;
  std::vector<LabelledMap> labelled;
  /// false after abort_finetune() disabled retries for this session.
  bool finetune_enabled = true;
  std::uint64_t requests = 0;
  std::uint64_t shed = 0;
  std::uint64_t predictions = 0;
  std::uint64_t first_arrival_us = 0;
  std::optional<std::uint64_t> first_prediction_us;
  /// True when a personal checkpoint backs this session on disk.
  bool has_personal = false;
  // -- Online adaptation (v2 snapshot fields; zero in v1 images) ------------
  std::uint64_t drift_streak = 0;  ///< Consecutive drifting windows seen.
  /// State the session re-enters if re-assessment turns out a false alarm
  /// or the shadow loses (ASSIGNED or PERSONALIZED).
  SessionState reassess_from = SessionState::kAssigned;
  std::uint64_t candidate_cluster = 0;  ///< Under SHADOWING.
  std::uint64_t shadow_wins = 0;        ///< Windows the candidate won.
  std::uint64_t shadow_seen = 0;        ///< Windows scored so far.
};

class Session {
 public:
  Session(std::uint64_t user_id, SessionPolicy policy,
          edge::Precision precision);

  std::uint64_t user_id() const { return user_id_; }
  edge::Precision precision() const { return precision_; }
  SessionState state() const { return state_; }
  /// The live state, looking through a DEGRADED freeze (the state the
  /// session resumes when its signal recovers).
  SessionState effective_state() const {
    return state_ == SessionState::kDegraded ? saved_state_ : state_;
  }
  bool degraded() const { return state_ == SessionState::kDegraded; }

  // -- Signal quality / degradation -----------------------------------------
  enum class QualityEvent { kNone, kDegraded, kRecovered };
  /// Track one request's quality; may flip into/out of DEGRADED.
  QualityEvent note_quality(double quality);

  // -- Cluster assignment ----------------------------------------------------
  /// Buffer one unlabeled observation (COLD/ASSIGNING only; COLD advances
  /// to ASSIGNING).
  void add_observation(cluster::Point observation);
  bool ca_ready() const;
  const std::vector<cluster::Point>& observations() const {
    return observations_;
  }
  /// Record the CA verdict and advance to ASSIGNED (drops the buffer).
  void set_assignment(std::size_t cluster);
  std::size_t cluster() const { return cluster_; }
  bool assigned() const;

  // -- Fine-tuning -----------------------------------------------------------
  /// Buffer one labelled map (ASSIGNED only; ignored when fine-tuning is
  /// disabled or the session has already personalized).
  void add_labelled(Tensor normalized_map, int label);
  bool ft_ready() const;
  const std::vector<LabelledMap>& labelled() const { return labelled_; }
  /// Enter FINE_TUNING (the server runs the training synchronously).
  void begin_finetune();
  /// Install the fine-tuned engine and advance to PERSONALIZED.
  void set_personal_engine(std::unique_ptr<edge::EdgeEngine> engine);
  edge::EdgeEngine* personal_engine() { return personal_engine_.get(); }
  bool has_personal_engine() const { return personal_engine_ != nullptr; }
  /// Hand the personal engine to the caller (the server parks it while a
  /// promotion displaces it with batches still pending on it).
  std::unique_ptr<edge::EdgeEngine> release_personal_engine() {
    return std::move(personal_engine_);
  }
  /// Roll back a failed fine-tune to ASSIGNED and stop retrying (e.g. the
  /// cluster checkpoint turned out to be unusable).
  void abort_finetune();

  // -- Online adaptation -----------------------------------------------------
  /// True in the states the drift monitor watches (ASSIGNED/PERSONALIZED).
  bool drift_monitorable() const {
    return state_ == SessionState::kAssigned ||
           state_ == SessionState::kPersonalized;
  }
  /// True while the session is mid-adaptation — live RE_ASSESSING/SHADOWING
  /// or frozen in one of them under DEGRADED.
  bool adapting() const;
  enum class DriftEvent { kNone, kTriggered };
  /// Record one monitored window's drift verdict. After `drift_after`
  /// consecutive drifting windows the session enters RE_ASSESSING with a
  /// fresh observation buffer and kTriggered is returned.
  DriftEvent drift_tick(bool drifting);
  std::size_t drift_streak() const { return drift_streak_; }
  /// Buffer one window for re-assessment (RE_ASSESSING only).
  void add_reassess_observation(cluster::Point observation);
  bool reassess_ready() const;
  /// Record the re-assessment CA verdict. The incumbent cluster again is a
  /// false alarm — the session returns to its pre-drift state and false is
  /// returned; a different cluster starts SHADOWING and returns true.
  bool reassess_verdict(std::size_t candidate);
  std::size_t candidate_cluster() const { return candidate_cluster_; }
  /// Score one shadow window (SHADOWING only): did the candidate cluster
  /// fit it strictly better than the incumbent?
  void shadow_tick(bool candidate_won);
  bool shadow_done() const;
  /// Strict majority of scored windows won by the candidate.
  bool shadow_promotes() const;
  std::size_t shadow_wins() const { return shadow_wins_; }
  std::size_t shadow_seen() const { return shadow_seen_; }
  /// Commit the shadow win: the candidate becomes the assigned cluster and
  /// the session re-enters ASSIGNED. Any personal engine (fine-tuned on the
  /// old cluster's model) and labelled buffer are dropped — the session may
  /// personalize afresh on the new cluster.
  void promote_to_candidate();
  /// Shadow lost: return to the exact pre-drift state (incumbent cluster
  /// and engine untouched).
  void demote_to_incumbent();

  // -- Durability ------------------------------------------------------------
  /// Freeze the full session state. Never called mid-fine-tune (the server
  /// fine-tunes synchronously), so FINE_TUNING never appears in an image.
  SessionImage image() const;
  /// Rebuild from an image. `engine` must be non-null exactly when
  /// `image.has_personal` — recovery demotes the image first when the
  /// backing checkpoint turned out to be unusable.
  void restore_image(const SessionImage& image,
                     std::unique_ptr<edge::EdgeEngine> engine);

  // -- Bookkeeping -----------------------------------------------------------
  std::size_t requests = 0;
  std::size_t shed = 0;
  std::size_t predictions = 0;
  std::uint64_t first_arrival_us = 0;
  /// Virtual time of the first completed prediction (time-to-first-
  /// prediction = this - first_arrival_us).
  std::optional<std::uint64_t> first_prediction_us;

 private:
  std::uint64_t user_id_;
  SessionPolicy policy_;
  edge::Precision precision_;
  SessionState state_ = SessionState::kCold;
  SessionState saved_state_ = SessionState::kCold;  ///< Restored on recovery.
  std::size_t bad_streak_ = 0;
  std::size_t good_streak_ = 0;
  std::size_t cluster_ = 0;
  std::vector<cluster::Point> observations_;
  std::vector<LabelledMap> labelled_;
  std::unique_ptr<edge::EdgeEngine> personal_engine_;
  // Online adaptation bookkeeping (journaled; restored bit-identically).
  std::size_t drift_streak_ = 0;
  SessionState reassess_from_ = SessionState::kAssigned;
  std::size_t candidate_cluster_ = 0;
  std::size_t shadow_wins_ = 0;
  std::size_t shadow_seen_ = 0;
};

class SessionManager {
 public:
  SessionManager(SessionPolicy policy,
                 std::vector<edge::Precision> precisions,
                 std::size_t max_sessions);

  /// The user's session, created on first contact. Returns nullptr when the
  /// session table is full and the user is new (admission control).
  Session* get_or_create(std::uint64_t user_id);
  Session* find(std::uint64_t user_id);
  /// Install a recovered session from its image (the user must not already
  /// have one; admission control applies as for get_or_create).
  Session* restore(const SessionImage& image,
                   std::unique_ptr<edge::EdgeEngine> engine);
  /// Drop one session (recovery quarantines corrupt ones this way; the
  /// user's next request starts a fresh COLD session).
  void erase(std::uint64_t user_id);
  /// The precision get_or_create would hand this user.
  edge::Precision precision_for(std::uint64_t user_id) const {
    return precisions_[user_id % precisions_.size()];
  }
  std::size_t size() const { return sessions_.size(); }

  /// Sessions in user-id order (deterministic reporting).
  std::vector<const Session*> sessions() const;

 private:
  SessionPolicy policy_;
  std::vector<edge::Precision> precisions_;
  std::size_t max_sessions_;
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
};

}  // namespace clear::serve
