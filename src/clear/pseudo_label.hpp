// Pseudo-label self-training — the paper's future-work direction of
// "further optimizing the personalisation process to reduce the need for
// labelled data" (§V), implemented as an optional extension.
//
// After cold-start assignment, the cluster model itself labels the new
// user's *unlabeled* maps; predictions above a confidence threshold become
// pseudo-labels, and the head is fine-tuned on them exactly like the
// supervised path. Repeating for a few rounds lets confidence grow as the
// model adapts. No ground-truth label of the new user is ever consumed —
// the optional `true_labels` argument is used purely to report pseudo-label
// precision for the ablation bench.
#pragma once

#include <optional>

#include "nn/trainer.hpp"

namespace clear::core {

struct PseudoLabelConfig {
  /// Minimum softmax confidence for a map to be adopted as pseudo-labelled.
  double confidence_threshold = 0.80;
  /// Self-training rounds (predict -> select -> adapt).
  std::size_t rounds = 2;
  /// Require both classes among the adopted maps; single-class adaptation
  /// sets are rejected (they would collapse the classifier).
  bool require_both_classes = true;
  nn::TrainConfig train;                 ///< Adaptation hyper-parameters.
  std::size_t freeze_boundary = 7;       ///< nn::fine_tune_boundary().
};

struct PseudoLabelResult {
  std::size_t rounds_run = 0;
  std::size_t adopted_last_round = 0;   ///< Maps used in the final round.
  std::size_t adopted_correct = 0;      ///< Of those, correctly labelled
                                        ///< (only when true labels given).
  bool adapted = false;                 ///< At least one round trained.
};

/// Adapt `model` on unlabeled maps via self-training. Maps must be
/// normalized with the pipeline's normalizer (same as inference inputs).
PseudoLabelResult pseudo_label_adapt(
    nn::Sequential& model, const std::vector<const Tensor*>& unlabeled_maps,
    const PseudoLabelConfig& config,
    const std::vector<std::size_t>* true_labels_for_diagnostics = nullptr);

}  // namespace clear::core
