// True int8 compute kernels with int32 accumulation — the arithmetic an
// Edge-TPU-class accelerator executes. The fake-quantization engine in
// engine.hpp produces bit-identical results to these kernels (tested), but
// these are the ones benchmarked for the int8-vs-fp32 kernel comparison.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "edge/quantize.hpp"

namespace clear::edge {

/// int8 GEMM: C[m,n] (int32) = A[m,k] (int8) * B[k,n] (int8).
void int8_gemm(std::span<const std::int8_t> a, std::span<const std::int8_t> b,
               std::size_t m, std::size_t k, std::size_t n,
               std::span<std::int32_t> c);

/// Dequantize an int32 accumulator to float: real = acc * scale_a * scale_b.
void dequantize_accum(std::span<const std::int32_t> acc, float scale_a,
                      float scale_b, std::span<float> out);

/// A quantized dense layer: y = dequant(int8_gemm(q(x), qW)) + bias.
class QuantizedDense {
 public:
  /// Quantize a float weight matrix [in, out] with max-abs calibration.
  QuantizedDense(const Tensor& weight, const Tensor& bias);

  /// x: [n, in] float; returns [n, out] float. Input is quantized with the
  /// given activation params (calibrated offline).
  Tensor forward(const Tensor& x, const QuantParams& act_params) const;

  const QuantParams& weight_params() const { return w_params_; }

 private:
  std::size_t in_ = 0;
  std::size_t out_ = 0;
  std::vector<std::int8_t> weight_q_;  ///< [in, out], row-major.
  std::vector<float> bias_;
  QuantParams w_params_;
};

/// A quantized 2-D convolution: im2col + int8 GEMM with int32 accumulation,
/// matching nn::Conv2d's [out_ch, in_ch*kh*kw] weight layout.
class QuantizedConv2d {
 public:
  /// Quantize conv weights ([out_ch, in_ch*kh*kw]) with max-abs calibration.
  QuantizedConv2d(const Tensor& weight, const Tensor& bias,
                  std::size_t in_channels, std::size_t kh, std::size_t kw,
                  std::size_t stride, std::size_t pad);

  /// x: [n, in_ch, h, w] float; returns [n, out_ch, oh, ow] float.
  Tensor forward(const Tensor& x, const QuantParams& act_params) const;

  const QuantParams& weight_params() const { return w_params_; }

 private:
  std::size_t in_ch_, out_ch_, kh_, kw_, stride_, pad_;
  std::vector<std::int8_t> weight_q_;  ///< [out_ch, in_ch*kh*kw].
  std::vector<float> bias_;
  QuantParams w_params_;
};

}  // namespace clear::edge
