#include "serve/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "tensor/serialize.hpp"

namespace clear::serve {

namespace fs = std::filesystem;

namespace {

// 8-byte file magics: a 6-byte prefix ("CLRWAL" for the log, "CLRSNP" for
// snapshots) plus two ASCII digits echoing the on-disk format version.
// v2 ("CLRWAL02"/"CLRSNP02") added the online-adaptation record kinds
// and session/counter fields; v1 files are still read (their drift fields
// default to zero), while a v1 reader refuses a v2 file wholesale at the
// header — which is exactly how pre-v2 binaries fail cleanly on the new
// record kinds.
constexpr char kJournalMagicPrefix[6] = {'C', 'L', 'R', 'W', 'A', 'L'};
constexpr char kSnapshotMagicPrefix[6] = {'C', 'L', 'R', 'S', 'N', 'P'};
constexpr std::uint64_t kFormatVersion = kJournalFormatVersion;
constexpr std::uint64_t kMinFormatVersion = kJournalMinFormatVersion;
/// Sanity cap on one record's payload: a labelled 17x6 map is ~500 bytes,
/// so anything near this is a corrupt length field, not a real record.
constexpr std::uint32_t kMaxRecordBytes = 16u << 20;

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void write_point(std::ostream& os, const cluster::Point& p) {
  io::write_u64(os, p.size());
  for (const double v : p) io::write_f64(os, v);
}

cluster::Point read_point(std::istream& is) {
  const std::uint64_t n = io::read_u64(is);
  CLEAR_CHECK_MSG(n < (1u << 20), "implausible point size in journal");
  cluster::Point p;
  p.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) p.push_back(io::read_f64(is));
  return p;
}

SessionState read_state(std::istream& is, std::uint64_t version) {
  const std::uint64_t raw = io::read_u64(is);
  // v1 predates the adaptation states, so 6/7 in a v1 file is corruption.
  const std::uint64_t bound = static_cast<std::uint64_t>(
      version >= 2 ? SessionState::kShadowing : SessionState::kDegraded);
  CLEAR_CHECK_MSG(raw <= bound, "invalid session state " << raw
                                                         << " in a v"
                                                         << version
                                                         << " file");
  return static_cast<SessionState>(raw);
}

std::string encode_record(const JournalRecord& r) {
  std::ostringstream os(std::ios::binary);
  io::write_u64(os, r.seq);
  io::write_u64(os, static_cast<std::uint64_t>(r.type));
  io::write_u64(os, r.user_id);
  switch (r.type) {
    case RecordType::kRequest:
      io::write_u64(os, r.time_us);
      io::write_f64(os, r.quality);
      break;
    case RecordType::kObservation:
      write_point(os, r.point);
      break;
    case RecordType::kAssign:
      io::write_u64(os, r.cluster);
      break;
    case RecordType::kLabelled:
      io::write_u64(os,
                    static_cast<std::uint64_t>(static_cast<std::int64_t>(
                        r.label)));
      io::write_tensor(os, r.map);
      break;
    case RecordType::kFinetune:
      io::write_u64(os, r.ckpt_bytes);
      io::write_u64(os, r.ckpt_crc);
      break;
    case RecordType::kFinetuneAbort:
      break;
    case RecordType::kShed:
      io::write_u64(os, (r.shed_charged ? 1u : 0u) |
                            (r.shed_unadmitted ? 2u : 0u));
      break;
    case RecordType::kPredict:
      io::write_u64(os, r.time_us);
      break;
    case RecordType::kDriftTick:
      io::write_u64(os, r.drifting ? 1u : 0u);
      break;
    case RecordType::kReassessObs:
      write_point(os, r.point);
      break;
    case RecordType::kReassign:
    case RecordType::kPromote:
      io::write_u64(os, r.cluster);
      break;
    case RecordType::kShadowTick:
      io::write_u64(os, r.shadow_won ? 1u : 0u);
      break;
    case RecordType::kDemote:
      break;
    case RecordType::kUnknown:
      CLEAR_CHECK_MSG(false, "kUnknown is a read-side sentinel, never written");
      break;
  }
  return os.str();
}

JournalRecord decode_record(const std::string& payload) {
  std::istringstream is(payload, std::ios::binary);
  JournalRecord r;
  r.seq = io::read_u64(is);
  const std::uint64_t type = io::read_u64(is);
  if (type < 1 || type > static_cast<std::uint64_t>(RecordType::kDemote)) {
    // A CRC-intact frame of a kind this reader does not know (written by a
    // newer format). The (seq, type, user_id) prefix is stable across
    // versions, so the session it names can be quarantined — keep reading
    // rather than distrusting every record after it.
    r.type = RecordType::kUnknown;
    r.raw_kind = type;
    r.user_id = io::read_u64(is);
    CLEAR_CHECK_MSG(is.good(), "truncated journal record payload");
    return r;
  }
  r.type = static_cast<RecordType>(type);
  r.user_id = io::read_u64(is);
  switch (r.type) {
    case RecordType::kRequest:
      r.time_us = io::read_u64(is);
      r.quality = io::read_f64(is);
      break;
    case RecordType::kObservation:
      r.point = read_point(is);
      break;
    case RecordType::kAssign:
      r.cluster = io::read_u64(is);
      break;
    case RecordType::kLabelled:
      r.label = static_cast<std::int32_t>(
          static_cast<std::int64_t>(io::read_u64(is)));
      r.map = io::read_tensor(is);
      break;
    case RecordType::kFinetune:
      r.ckpt_bytes = io::read_u64(is);
      r.ckpt_crc = static_cast<std::uint32_t>(io::read_u64(is));
      break;
    case RecordType::kFinetuneAbort:
      break;
    case RecordType::kShed: {
      const std::uint64_t flags = io::read_u64(is);
      r.shed_charged = (flags & 1) != 0;
      r.shed_unadmitted = (flags & 2) != 0;
      break;
    }
    case RecordType::kPredict:
      r.time_us = io::read_u64(is);
      break;
    case RecordType::kDriftTick:
      r.drifting = io::read_u64(is) != 0;
      break;
    case RecordType::kReassessObs:
      r.point = read_point(is);
      break;
    case RecordType::kReassign:
    case RecordType::kPromote:
      r.cluster = io::read_u64(is);
      break;
    case RecordType::kShadowTick:
      r.shadow_won = io::read_u64(is) != 0;
      break;
    case RecordType::kDemote:
      break;
    case RecordType::kUnknown:
      break;  // Handled above; unreachable.
  }
  CLEAR_CHECK_MSG(is.good(), "truncated journal record payload");
  return r;
}

void write_image(std::ostream& os, const SessionImage& img) {
  io::write_u64(os, img.user_id);
  io::write_u64(os, static_cast<std::uint64_t>(img.state));
  io::write_u64(os, static_cast<std::uint64_t>(img.saved_state));
  io::write_u64(os, img.bad_streak);
  io::write_u64(os, img.good_streak);
  io::write_u64(os, img.cluster);
  io::write_u64(os, img.observations.size());
  for (const cluster::Point& p : img.observations) write_point(os, p);
  io::write_u64(os, img.labelled.size());
  for (const LabelledMap& m : img.labelled) {
    io::write_u64(os, static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(m.label)));
    io::write_tensor(os, m.map);
  }
  io::write_u64(os, img.finetune_enabled ? 1 : 0);
  io::write_u64(os, img.requests);
  io::write_u64(os, img.shed);
  io::write_u64(os, img.predictions);
  io::write_u64(os, img.first_arrival_us);
  io::write_u64(os, img.first_prediction_us.has_value() ? 1 : 0);
  io::write_u64(os, img.first_prediction_us.value_or(0));
  io::write_u64(os, img.has_personal ? 1 : 0);
  // v2: online-adaptation bookkeeping.
  io::write_u64(os, img.drift_streak);
  io::write_u64(os, static_cast<std::uint64_t>(img.reassess_from));
  io::write_u64(os, img.candidate_cluster);
  io::write_u64(os, img.shadow_wins);
  io::write_u64(os, img.shadow_seen);
}

SessionImage read_image(std::istream& is, std::uint64_t version) {
  SessionImage img;
  img.user_id = io::read_u64(is);
  img.state = read_state(is, version);
  img.saved_state = read_state(is, version);
  img.bad_streak = io::read_u64(is);
  img.good_streak = io::read_u64(is);
  img.cluster = io::read_u64(is);
  const std::uint64_t n_obs = io::read_u64(is);
  CLEAR_CHECK_MSG(n_obs < (1u << 20), "implausible observation count");
  img.observations.reserve(n_obs);
  for (std::uint64_t i = 0; i < n_obs; ++i)
    img.observations.push_back(read_point(is));
  const std::uint64_t n_lab = io::read_u64(is);
  CLEAR_CHECK_MSG(n_lab < (1u << 20), "implausible labelled-map count");
  img.labelled.reserve(n_lab);
  for (std::uint64_t i = 0; i < n_lab; ++i) {
    LabelledMap m;
    m.label = static_cast<int>(static_cast<std::int64_t>(io::read_u64(is)));
    m.map = io::read_tensor(is);
    img.labelled.push_back(std::move(m));
  }
  img.finetune_enabled = io::read_u64(is) != 0;
  img.requests = io::read_u64(is);
  img.shed = io::read_u64(is);
  img.predictions = io::read_u64(is);
  img.first_arrival_us = io::read_u64(is);
  const bool has_first_pred = io::read_u64(is) != 0;
  const std::uint64_t first_pred = io::read_u64(is);
  if (has_first_pred) img.first_prediction_us = first_pred;
  img.has_personal = io::read_u64(is) != 0;
  if (version >= 2) {
    img.drift_streak = io::read_u64(is);
    img.reassess_from = read_state(is, version);
    img.candidate_cluster = io::read_u64(is);
    img.shadow_wins = io::read_u64(is);
    img.shadow_seen = io::read_u64(is);
  }
  return img;
}

std::string encode_snapshot(const SnapshotData& data) {
  std::ostringstream os(std::ios::binary);
  io::write_u64(os, data.last_seq);
  io::write_u64(os, data.last_arrival_us);
  io::write_u64(os, data.counters.requests);
  io::write_u64(os, data.counters.ok);
  io::write_u64(os, data.counters.shed);
  io::write_u64(os, data.counters.assignments);
  io::write_u64(os, data.counters.finetunes);
  io::write_u64(os, data.counters.finetune_failures);
  io::write_u64(os, data.counters.sanitized);
  io::write_u64(os, data.counters.degraded);
  io::write_u64(os, data.counters.recovered);
  // v2: online-adaptation counters.
  io::write_u64(os, data.counters.drift_ticks);
  io::write_u64(os, data.counters.drift_detected);
  io::write_u64(os, data.counters.reassessments);
  io::write_u64(os, data.counters.drift_false_alarms);
  io::write_u64(os, data.counters.shadow_ticks);
  io::write_u64(os, data.counters.promotions);
  io::write_u64(os, data.counters.demotions);
  io::write_u64(os, data.sessions.size());
  for (const SessionImage& img : data.sessions) write_image(os, img);
  return os.str();
}

SnapshotData decode_snapshot(const std::string& payload,
                             std::uint64_t version) {
  std::istringstream is(payload, std::ios::binary);
  SnapshotData data;
  data.last_seq = io::read_u64(is);
  data.last_arrival_us = io::read_u64(is);
  data.counters.requests = io::read_u64(is);
  data.counters.ok = io::read_u64(is);
  data.counters.shed = io::read_u64(is);
  data.counters.assignments = io::read_u64(is);
  data.counters.finetunes = io::read_u64(is);
  data.counters.finetune_failures = io::read_u64(is);
  data.counters.sanitized = io::read_u64(is);
  data.counters.degraded = io::read_u64(is);
  data.counters.recovered = io::read_u64(is);
  if (version >= 2) {
    data.counters.drift_ticks = io::read_u64(is);
    data.counters.drift_detected = io::read_u64(is);
    data.counters.reassessments = io::read_u64(is);
    data.counters.drift_false_alarms = io::read_u64(is);
    data.counters.shadow_ticks = io::read_u64(is);
    data.counters.promotions = io::read_u64(is);
    data.counters.demotions = io::read_u64(is);
  }
  const std::uint64_t n = io::read_u64(is);
  CLEAR_CHECK_MSG(n < (1u << 24), "implausible snapshot session count");
  data.sessions.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    data.sessions.push_back(read_image(is, version));
  CLEAR_CHECK_MSG(is.good(), "truncated snapshot payload");
  return data;
}

/// Write every byte or throw (retrying EINTR); one call site per frame so a
/// record hits the kernel in a single write() whenever the OS allows.
void write_all(int fd, const char* data, std::size_t n, const char* what) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      CLEAR_CHECK_MSG(false, what << " failed: " << std::strerror(errno));
    }
    off += static_cast<std::size_t>(w);
  }
}

/// fsync a path by reopening it (the snapshot/checkpoint writers use
/// fstreams, which expose no fd).
void fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  CLEAR_CHECK_MSG(fd >= 0,
                  "cannot open " << path << " for fsync: "
                                 << std::strerror(errno));
  const int rc = ::fsync(fd);
  ::close(fd);
  CLEAR_CHECK_MSG(rc == 0, "fsync " << path << ": " << std::strerror(errno));
}

/// Temp-then-rename atomic write shared by the snapshot and user-checkpoint
/// stores; the rename is the commit point, exactly like the artifact writer.
void atomic_write_file(const std::string& path, const std::string& bytes,
                       bool do_fsync, const char* what) {
  const std::string tmp = path + ".tmp";
  fault::maybe_fail_io("snapshot write");
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    CLEAR_CHECK_MSG(os.good(), "cannot write " << tmp << " (" << what << ")");
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    CLEAR_CHECK_MSG(os.good(), "IO error writing " << tmp);
  }
  if (do_fsync) {
    fault::maybe_fail_io("snapshot fsync");
    fsync_path(tmp);
  }
  fault::maybe_fail_io("snapshot rename");
  std::error_code ec;
  fs::rename(tmp, path, ec);
  CLEAR_CHECK_MSG(!ec, "cannot commit " << path << ": " << ec.message());
  if (do_fsync) {
    // The rename only becomes durable against machine crashes once the
    // directory entry itself is on disk.
    const std::string parent = fs::path(path).parent_path().string();
    fsync_path(parent.empty() ? "." : parent);
  }
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return {};
  return std::string((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
}

/// The 8-byte magic for a format version: 6-byte prefix + 2 ASCII digits.
std::string magic_bytes(const char (&prefix)[6], std::uint64_t version) {
  std::string m(prefix, sizeof(prefix));
  m.push_back(static_cast<char>('0' + (version / 10) % 10));
  m.push_back(static_cast<char>('0' + version % 10));
  return m;
}

std::string header_bytes(std::uint64_t version) {
  std::string h = magic_bytes(kJournalMagicPrefix, version);
  put_u32(h, static_cast<std::uint32_t>(version));
  put_u32(h, 0);  // Reserved; keeps the header at 16 bytes.
  return h;
}

}  // namespace

const char* record_type_name(RecordType t) {
  switch (t) {
    case RecordType::kUnknown: return "unknown";
    case RecordType::kRequest: return "request";
    case RecordType::kObservation: return "observation";
    case RecordType::kAssign: return "assign";
    case RecordType::kLabelled: return "labelled";
    case RecordType::kFinetune: return "finetune";
    case RecordType::kFinetuneAbort: return "finetune_abort";
    case RecordType::kShed: return "shed";
    case RecordType::kPredict: return "predict";
    case RecordType::kDriftTick: return "drift_tick";
    case RecordType::kReassessObs: return "reassess_obs";
    case RecordType::kReassign: return "reassign";
    case RecordType::kShadowTick: return "shadow_tick";
    case RecordType::kPromote: return "promote";
    case RecordType::kDemote: return "demote";
  }
  return "?";
}

std::string journal_log_path(const std::string& directory) {
  return (fs::path(directory) / "journal.log").string();
}

std::string snapshot_path(const std::string& directory) {
  return (fs::path(directory) / "snapshot.snap").string();
}

std::string user_checkpoint_path(const std::string& directory,
                                 std::uint64_t user_id) {
  return (fs::path(directory) / ("user_" + std::to_string(user_id) + ".ckpt"))
      .string();
}

bool journal_state_exists(const std::string& directory) {
  std::error_code ec;
  return fs::exists(journal_log_path(directory), ec) ||
         fs::exists(snapshot_path(directory), ec);
}

Journal::Journal(JournalConfig config, std::uint64_t first_seq)
    : config_(std::move(config)), next_seq_(first_seq) {
  CLEAR_CHECK_MSG(!config_.directory.empty(), "journal directory is empty");
  CLEAR_CHECK_MSG(first_seq >= 1, "journal sequence numbers start at 1");
  std::error_code ec;
  fs::create_directories(config_.directory, ec);
  CLEAR_CHECK_MSG(!ec, "cannot create journal directory "
                           << config_.directory << ": " << ec.message());
  open_truncated();
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

void Journal::open_truncated() {
  fault::maybe_fail_journal_io("journal open");
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(journal_log_path(config_.directory).c_str(),
               O_WRONLY | O_CREAT | O_TRUNC, 0644);
  CLEAR_CHECK_MSG(fd_ >= 0, "cannot open " << journal_log_path(
                                                  config_.directory)
                                           << ": " << std::strerror(errno));
  const std::string header = header_bytes(kFormatVersion);
  write_all(fd_, header.data(), header.size(), "journal header write");
  since_snapshot_ = 0;
}

std::size_t Journal::append(JournalRecord record) {
  CLEAR_CHECK_MSG(fd_ >= 0, "journal is not open");
  fault::maybe_fail_journal_io("journal append");
  record.seq = next_seq_;
  const std::string payload = encode_record(record);
  CLEAR_CHECK_MSG(payload.size() < kMaxRecordBytes, "journal record too big");
  std::string frame;
  frame.reserve(8 + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32(payload));
  frame += payload;

  const std::size_t cap = fault::journal_torn_write_cap();
  if (cap < frame.size()) {
    // Injected torn write: persist a prefix, then fail — indistinguishable
    // on disk from a crash mid-append.
    write_all(fd_, frame.data(), cap, "journal append");
    CLEAR_CHECK_MSG(false, "injected torn journal write (kept " << cap
                                                                << " bytes)");
  }
  write_all(fd_, frame.data(), frame.size(), "journal append");
  if (config_.fsync) {
    CLEAR_CHECK_MSG(::fsync(fd_) == 0,
                    "journal fsync: " << std::strerror(errno));
  }
  ++next_seq_;
  ++records_;
  ++since_snapshot_;
  bytes_ += frame.size();
  return frame.size();
}

void Journal::write_snapshot(const SnapshotData& data) {
  write_snapshot_file(config_.directory, data, config_.fsync);
  // The snapshot is committed; dropping the journal prefix is now safe. A
  // crash before this truncate leaves stale records that replay skips by
  // sequence number.
  open_truncated();
}

bool Journal::due_for_snapshot() const {
  return config_.snapshot_every > 0 &&
         since_snapshot_ >= config_.snapshot_every;
}

void write_snapshot_file(const std::string& directory,
                         const SnapshotData& data, bool do_fsync) {
  const std::string payload = encode_snapshot(data);
  std::string bytes = magic_bytes(kSnapshotMagicPrefix, kFormatVersion);
  put_u32(bytes, static_cast<std::uint32_t>(kFormatVersion));
  put_u32(bytes, static_cast<std::uint32_t>(payload.size()));
  put_u32(bytes, crc32(payload));
  bytes += payload;
  atomic_write_file(snapshot_path(directory), bytes, do_fsync, "snapshot");
}

std::optional<SnapshotData> read_snapshot(const std::string& directory) {
  const std::string path = snapshot_path(directory);
  std::error_code ec;
  if (!fs::exists(path, ec)) return std::nullopt;
  const std::string bytes = read_file_bytes(path);
  constexpr std::size_t kMagicLen = 8;
  CLEAR_CHECK_MSG(bytes.size() >= kMagicLen + 12,
                  "snapshot " << path << " is truncated");
  CLEAR_CHECK_MSG(std::memcmp(bytes.data(), kSnapshotMagicPrefix,
                              sizeof(kSnapshotMagicPrefix)) == 0,
                  "snapshot " << path << " has a bad magic");
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(bytes.data()) + kMagicLen;
  const std::uint32_t version = get_u32(p);
  CLEAR_CHECK_MSG(version >= kMinFormatVersion && version <= kFormatVersion,
                  "snapshot " << path << " has unsupported format version "
                              << version << " (this reader supports v"
                              << kMinFormatVersion << "-v" << kFormatVersion
                              << ")");
  CLEAR_CHECK_MSG(
      bytes.compare(0, kMagicLen,
                    magic_bytes(kSnapshotMagicPrefix, version)) == 0,
      "snapshot " << path << " has a bad magic");
  const std::uint32_t len = get_u32(p + 4);
  const std::uint32_t crc = get_u32(p + 8);
  CLEAR_CHECK_MSG(bytes.size() == kMagicLen + 12 + len,
                  "snapshot " << path << " length mismatch");
  const std::string payload = bytes.substr(kMagicLen + 12);
  CLEAR_CHECK_MSG(crc32(payload) == crc,
                  "snapshot " << path << " failed its CRC check");
  return decode_snapshot(payload, version);
}

JournalReadResult read_journal(const std::string& directory) {
  JournalReadResult result;
  const std::string path = journal_log_path(directory);
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    result.missing = true;
    return result;
  }
  const std::string bytes = read_file_bytes(path);
  const auto* raw = reinterpret_cast<const unsigned char*>(bytes.data());
  constexpr std::size_t kHeaderLen = 16;
  if (bytes.size() < kHeaderLen ||
      std::memcmp(bytes.data(), kJournalMagicPrefix,
                  sizeof(kJournalMagicPrefix)) != 0) {
    // A bad header means nothing in the file can be trusted.
    result.tail_bytes_dropped = bytes.size();
    return result;
  }
  const std::uint32_t version = get_u32(raw + 8);
  if (version < kMinFormatVersion || version > kFormatVersion) {
    // A future format: the framing itself may have changed, so the whole
    // file is untrusted — the versioned refusal a v1 reader gives v2 logs.
    std::ostringstream os;
    os << "journal.log has unsupported format version " << version
       << " (this reader supports v" << kMinFormatVersion << "-v"
       << kFormatVersion << "); refusing the whole file";
    result.header_error = os.str();
    result.tail_bytes_dropped = bytes.size();
    return result;
  }
  if (bytes.compare(0, 16, header_bytes(version)) != 0) {
    result.tail_bytes_dropped = bytes.size();  // Magic/version echo mismatch.
    return result;
  }
  std::size_t off = kHeaderLen;
  while (off < bytes.size()) {
    if (bytes.size() - off < 8) break;  // Torn frame header.
    const std::uint32_t len = get_u32(raw + off);
    const std::uint32_t crc = get_u32(raw + off + 4);
    if (len >= kMaxRecordBytes || bytes.size() - off - 8 < len) break;
    const std::string payload = bytes.substr(off + 8, len);
    if (crc32(payload) != crc) break;
    try {
      JournalRecord rec = decode_record(payload);
      rec.file_offset = off;
      result.records.push_back(std::move(rec));
    } catch (const Error&) {
      break;  // Intact CRC but undecodable: treat like any corrupt tail.
    }
    off += 8 + len;
  }
  result.tail_bytes_dropped = bytes.size() - off;
  return result;
}

void write_user_checkpoint(const std::string& directory,
                           std::uint64_t user_id, const std::string& blob,
                           bool do_fsync) {
  fault::maybe_fail_journal_io("checkpoint store write");
  atomic_write_file(user_checkpoint_path(directory, user_id), blob, do_fsync,
                    "user checkpoint");
}

std::string read_user_checkpoint(const std::string& directory,
                                 std::uint64_t user_id) {
  return read_file_bytes(user_checkpoint_path(directory, user_id));
}

std::string encode_session_image(const SessionImage& image) {
  std::ostringstream os(std::ios::binary);
  write_image(os, image);
  return os.str();
}

SessionImage decode_session_image(const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  SessionImage img = read_image(is, kFormatVersion);
  CLEAR_CHECK_MSG(is.good(), "truncated session image");
  is.peek();
  CLEAR_CHECK_MSG(is.eof(), "trailing bytes after session image");
  return img;
}

}  // namespace clear::serve
